"""Setup shim.

PEP 517 editable installs require the ``wheel`` package; this shim keeps
``pip install -e .`` working through the legacy ``setup.py develop`` path
on minimal/offline environments (project metadata lives in
``pyproject.toml``)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Aurochs: An Architecture for Dataflow Threads "
                 "(ISCA 2021) — full Python reproduction"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
