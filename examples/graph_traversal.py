"""Beyond SQL: irregular graph traversal as dataflow threads.

The paper closes by arguing Aurochs accelerates "an entire class of
algorithms with irregular parallelism", not just database kernels.  This
example builds a parallel BFS from nothing but the paper's primitives:

* per-thread state = a (node, depth) record;
* a *visited* bitmap in a scratchpad, claimed with CAS — the only
  cross-thread communication, so threads may run in any order;
* a fork tile expands each newly-visited node's adjacency list (gathered
  from DRAM) into child threads;
* losers of the CAS race are simply killed, and their lanes refill.

Run:  python examples/graph_traversal.py
"""

import random

from repro.dataflow import (
    CopyTile,
    FilterTile,
    ForkTile,
    Graph,
    MapTile,
    MergeTile,
    SinkTile,
    SourceTile,
    run_graph,
)
from repro.memory import (
    DramMemory,
    DramTile,
    PortConfig,
    ScratchpadMemory,
    ScratchpadTile,
)


def random_graph(n_nodes, degree, seed=11):
    rng = random.Random(seed)
    return [
        sorted({rng.randrange(n_nodes) for __ in range(degree)})
        for __ in range(n_nodes)
    ]


def bfs_graph(adjacency, roots):
    """Lower BFS onto the tile fabric; returns (graph, visited_sink)."""
    n = len(adjacency)

    spad = ScratchpadMemory("visited")
    visited = spad.region("visited", n, 1, fill=0)
    dram = DramMemory("adj")
    adj = dram.region("adjacency", n, 8, fill=None)
    for node, neighbors in enumerate(adjacency):
        adj[node] = tuple(neighbors)

    def claim(old, record):
        # Atomic test-and-set on the visited bit; the old value tells the
        # thread whether it won the race to expand this node.
        return 1, old

    g = Graph("bfs")
    src = g.add(SourceTile("src", [(r, 0) for r in roots]))
    entry = g.add(MergeTile("entry"))
    mark = g.add(ScratchpadTile("mark", spad, [PortConfig(
        mode="rmw", region=visited, addr=lambda r: r[0],
        rmw=claim, combine=lambda r, old: (r[0], r[1], old))]))
    fresh = g.add(FilterTile("fresh", lambda r: r[2] == 0))
    gather = g.add(DramTile("gather", dram, [PortConfig(
        mode="read", region=adj, addr=lambda r: r[0],
        combine=lambda r, neighbors: (r[0], r[1], neighbors))]))
    dup = g.add(CopyTile("dup"))
    emit = g.add(MapTile("emit", lambda r: (r[0], r[1])))
    expand = g.add(ForkTile(
        "expand", lambda r: [(nb, r[1] + 1) for nb in r[2]]))
    out = g.add(SinkTile("visited"))

    g.connect(src, entry)
    g.connect(entry, mark)
    g.connect(mark, fresh)
    g.connect(fresh, gather, producer_port=0)   # first visit: expand
    fresh.drop_output(1)                        # raced: kill the thread
    g.connect(gather, dup)
    g.connect(dup, emit, producer_port=0)       # record (node, depth)
    g.connect(emit, out)
    g.connect(dup, expand, producer_port=1)     # fork children (fig. 6b)
    g.connect(expand, entry, priority=True)
    return g, out


def reference_bfs(adjacency, roots):
    depth = {}
    frontier = [(r, 0) for r in roots]
    while frontier:
        nxt = []
        for node, d in frontier:
            if node in depth:
                continue
            depth[node] = d
            nxt.extend((nb, d + 1) for nb in adjacency[node])
        frontier = nxt
    return depth


def main():
    n = 2000
    adjacency = random_graph(n, degree=4)
    roots = [0]

    g, out = bfs_graph(adjacency, roots)
    stats = run_graph(g)
    visited = {node: depth for node, depth in out.records}

    ref = reference_bfs(adjacency, roots)
    assert set(visited) == set(ref), "coverage mismatch"
    print(f"BFS over {n} nodes: visited {len(visited)} reachable nodes "
          f"in {stats.cycles} cycles")
    # Depths can exceed the BFS-optimal level because threads race, but
    # coverage is exact and no node is expanded twice (CAS guarantees it).
    expanded = stats.tiles["gather"].records_out
    print(f"adjacency gathers: {expanded} (== visited nodes: "
          f"{expanded == len(visited)})")
    print(f"visited-bitmap scratchpad conflicts: "
          f"{stats.scratchpads['mark'].bank_conflicts}")
    occ = stats.tiles["mark"].lane_occupancy
    print(f"mark-tile lane occupancy: {occ:.2f}")


if __name__ == "__main__":
    main()
