"""Quickstart: dataflow threads in five minutes.

Builds the paper's canonical pipeline — a parallel hash-table probe
(fig. 6a) — two ways:

1. on the cycle-level tile fabric, watching threads recirculate through a
   cyclic pipeline, diverge at filters, and refill lanes; and
2. with the functional API that the relational operators use.

Run:  python examples/quickstart.py
"""

import random

from repro.dataflow import run_graph
from repro.structures import ChainedHashTable, HashTableDataflow


def cycle_level_probe():
    print("=== cycle-level probe pipeline (fig. 6a) ===")
    rng = random.Random(42)

    # A hash table owning two scratchpad regions (bucket heads + nodes)
    # and a DRAM overflow buffer for nodes past on-chip capacity.
    table = HashTableDataflow(n_buckets=256, spad_node_capacity=512)

    # Build it with the lock-free CAS pipeline of fig. 6c, cycle-simulated.
    pairs = [(rng.randrange(300), f"payload-{i}") for i in range(400)]
    build_stats = run_graph(table.build_graph(pairs))
    print(f"built {len(pairs)} records in {build_stats.cycles} cycles "
          f"(CAS retries recirculated, lanes refilled)")

    # Probe with 500 threads: each walks its bucket's chain, exits on
    # match or list end, and its lane is refilled from upstream.
    queries = [(qid, rng.randrange(400)) for qid in range(500)]
    graph = table.probe_graph(queries, emit_all=True)
    probe_stats = run_graph(graph)
    hits = graph.tile("hits").records
    print(f"probed {len(queries)} keys in {probe_stats.cycles} cycles "
          f"-> {len(hits)} matches")
    spad = probe_stats.scratchpads["node_rd"]
    print(f"node scratchpad: {spad.grants} grants, "
          f"conflict rate {spad.conflict_rate:.2f} "
          f"(the reordering pipeline of fig. 2b at work)")
    occupancy = probe_stats.tiles["node_rd"].lane_occupancy
    print(f"probe-loop lane occupancy: {occupancy:.2f} "
          f"(thread compaction keeps lanes full under divergence)\n")


def functional_probe():
    print("=== functional hash table (the operators' workhorse) ===")
    table = ChainedHashTable(n_buckets=1024, spad_node_capacity=2048)
    table.build((k, k * k) for k in range(3000))
    print(f"{len(table)} nodes, {table.overflow_nodes} spilled to DRAM")
    print(f"probe(17) -> {table.probe(17)}")
    print(f"hardware events accrued: {table.events.asdict()}")


if __name__ == "__main__":
    cycle_level_probe()
    functional_probe()
