"""Low-latency stream processing (§II-A, §IV-A, §IV-B).

Demonstrates the streaming machinery the paper motivates with sensor
networks and real-time rideshare analytics:

* a *symmetric hash join* — two streams build hash tables with each
  other's records and probe them simultaneously, emitting matches the
  moment both sides have arrived (lock-free tables + dual-ported
  scratchpads make concurrent build/probe free on Aurochs);
* a *sliding-window join* correlating two time-ordered streams;
* continuous LSM-tree ingest with concurrent readers over immutable
  snapshots.

Run:  python examples/streaming_join.py
"""

import random

from repro.db import ExecutionContext, Table
from repro.db.operators import sliding_window_join, symmetric_hash_join
from repro.structures import LsmTree


def stream_stream_join():
    print("=== symmetric hash join: requests x driver beacons ===")
    rng = random.Random(7)
    n = 2000
    requests = Table.from_columns(
        "rideReq",
        zone=[rng.randrange(64) for __ in range(n)],
        reqId=list(range(n)))
    beacons = Table.from_columns(
        "driverStatus",
        zone=[rng.randrange(64) for __ in range(n)],
        driverId=[rng.randrange(500) for __ in range(n)])
    ctx = ExecutionContext()
    matches = symmetric_hash_join(requests, beacons, "zone", "zone", ctx)
    print(f"{n} + {n} stream records -> {len(matches)} zone matches")
    print(f"first match surfaced after both sides arrived: "
          f"{matches.schema.asdict(matches.rows[0])}")
    print(f"hash events: {ctx.traces[-1].events.rmw_ops} lock-free inserts, "
          f"{ctx.traces[-1].events.spad_reads} scratchpad reads\n")


def windowed_correlation():
    print("=== sliding-window join: correlate within 30 s ===")
    rng = random.Random(8)
    n = 1500
    lt = sorted(rng.randrange(3600) for __ in range(n))
    rt = sorted(rng.randrange(3600) for __ in range(n))
    sensor_a = Table.from_columns(
        "a", sensor=[rng.randrange(20) for __ in range(n)], t=lt)
    sensor_b = Table.from_columns(
        "b", sensor=[rng.randrange(20) for __ in range(n)], t=rt)
    out = sliding_window_join(sensor_a, sensor_b, "sensor", "sensor",
                              "t", "t", window=30)
    print(f"{len(out)} correlated readings within the 30 s window\n")


def continuous_ingest():
    print("=== LSM ingest with concurrent readers (§IV-B) ===")
    lsm = LsmTree(batch_size=512, fanout=16)
    for t in range(10_000):
        lsm.insert(t, f"event-{t}")
        if t == 5_000:
            # A reader takes a snapshot mid-ingest: immutable trees mean
            # no locks, and the snapshot stays consistent under writes.
            snapshot = lsm.snapshot()
            snap_n = sum(len(tree) for tree in snapshot)
    lsm.flush()
    print(f"ingested {len(lsm)} events into tiers {lsm.tree_sizes()}")
    print(f"mid-ingest snapshot saw {snap_n} events and stayed "
          f"{sum(len(t) for t in snapshot)} after ingest finished")
    print(f"write amplification {lsm.write_amplification():.2f} "
          f"({lsm.merges} tier merges)")
    recent = lsm.range_query(9_990, 10_000)
    print(f"last-10-events query -> {len(recent)} rows "
          "(tier list prunes old trees by time)")


if __name__ == "__main__":
    stream_stream_join()
    windowed_correlation()
    continuous_ingest()
