"""Geospatial indexing on dataflow threads (§IV-C, fig. 9).

Builds a Z-order packed R-tree over driver positions, runs window queries
(including on the cycle-level fabric, where search threads *fork* down
overlapping subtrees), finds the nearest drivers for a rider, and joins
riders x drivers with a distance predicate — the core of rideshare
matching (Q1/Q9).

Run:  python examples/spatial_index.py
"""

import random

from repro.dataflow import run_graph
from repro.structures import (
    PackedRTree,
    RTreeDataflow,
    euclidean,
    point_rect,
    rect,
    spatial_join,
    z_encode,
)


def main():
    rng = random.Random(9)
    n_drivers = 5_000

    drivers = [(point_rect(rng.randrange(4096), rng.randrange(4096)), did)
               for did in range(n_drivers)]

    print("=== Z-order bulk load ===")
    tree = PackedRTree.bulk_load(drivers, fanout=16)
    print(f"{len(tree)} drivers packed into an R-tree of height "
          f"{tree.height} (sorted by Morton code, e.g. "
          f"z(100, 200) = {z_encode(100, 200)})")

    print("\n=== window query: who is in the downtown cell? ===")
    downtown = rect(1800, 1800, 2200, 2200)
    inside = tree.window_query(downtown)
    print(f"{len(inside)} drivers inside {downtown}")

    print("\n=== the same query on the cycle-level fabric ===")
    dataflow = RTreeDataflow(tree)
    graph = dataflow.window_graph([(0, downtown)])
    stats = run_graph(graph)
    sim_hits = len(graph.tile("hits").records)
    forked = graph.tile("descend").stats.records_out
    print(f"{sim_hits} hits in {stats.cycles} cycles; one query thread "
          f"forked into {forked} traversal threads (fig. 6b)")
    assert sim_hits == len(inside)

    print("\n=== nearest drivers for a rider (Q9's core) ===")
    rider = point_rect(2000, 2000)
    nearby = sorted(tree.within_distance(rider, 100), key=lambda e: e[2])
    for r, did, dist in nearby[:5]:
        print(f"  driver {did:>5} at distance {dist:6.1f}")
    print(f"  ({len(nearby)} drivers within 1 km)")

    print("\n=== spatial join: riders x drivers within 1 km (Q1's core) ===")
    riders = [(point_rect(rng.randrange(4096), rng.randrange(4096)), rid)
              for rid in range(1_000)]
    rider_tree = PackedRTree.bulk_load(riders, fanout=16)
    pairs = spatial_join(rider_tree, tree, within=100,
                         exact=lambda a, b: euclidean(a, b) <= 100)
    print(f"{len(pairs)} rider-driver pairs within 1 km "
          f"(dual-tree descent, no all-pairs scan: "
          f"{len(riders)} x {n_drivers} = "
          f"{len(riders) * n_drivers:,} candidate pairs avoided)")


if __name__ == "__main__":
    main()
