"""The paper's headline evaluation, end to end (fig. 13/14, Table 2).

Generates the synthetic ridesharing database, runs all nine benchmark
queries, and prices every query on Aurochs, the CPU, and the GPU — the
fig. 14 comparison — including energy.

Run:  python examples/rideshare_analytics.py
"""

import statistics

from repro.baselines import CpuModel, GpuModel
from repro.db import ExecutionContext
from repro.perf import CostModel
from repro.perf.energy import energy_joules, platform_power
from repro.workloads import QUERIES, RideshareConfig, generate, run_query


def main():
    config = RideshareConfig(
        n_drivers=1_000, n_riders=5_000, n_locations=256,
        n_rides=50_000, n_ride_reqs=5_000, n_driver_status=5_000)
    print("generating rideshare database...")
    data = generate(config)
    for name, n in data.sizes().items():
        print(f"  {name:<14} {n:>8} rows")

    aurochs = CostModel(parallel_streams=16)
    cpu, gpu = CpuModel(), GpuModel()

    print(f"\n{'query':>6} {'rows':>7} {'Aurochs':>11} {'CPU':>11} "
          f"{'GPU':>11} {'vs CPU':>8} {'vs GPU':>8}  description")
    speed_cpu, speed_gpu = [], []
    for name, qd in QUERIES.items():
        ctx = ExecutionContext()
        result = run_query(name, data, ctx)
        ta = aurochs.query_runtime(ctx)
        tc = cpu.query_runtime(ctx)
        tg = gpu.query_runtime(ctx)
        speed_cpu.append(tc / ta)
        speed_gpu.append(tg / ta)
        print(f"{name:>6} {len(result):>7} {ta * 1e3:>9.3f}ms "
              f"{tc * 1e3:>9.2f}ms {tg * 1e3:>9.2f}ms "
              f"{tc / ta:>7.0f}x {tg / ta:>7.1f}x  {qd.description}")

    print(f"\ngeomean speedup: {statistics.geometric_mean(speed_cpu):.0f}x "
          f"vs CPU, {statistics.geometric_mean(speed_gpu):.1f}x vs GPU "
          "(paper: ~160x / ~8x)")

    # Peek into one query's operator trace and energy.
    ctx = ExecutionContext()
    run_query("q6", data, ctx)
    print("\nq6 (surge pricing) operator trace:")
    print(ctx.summary())
    ta = aurochs.query_runtime(ctx)
    tg = gpu.query_runtime(ctx)
    ea = energy_joules(ta, platform_power("aurochs"))
    eg = energy_joules(tg, platform_power("gpu"))
    print(f"q6 energy: Aurochs {ea * 1e3:.3f} mJ vs GPU {eg * 1e3:.3f} mJ "
          f"({eg / ea:.0f}x)")


if __name__ == "__main__":
    main()
