"""Authoring custom dataflow-thread kernels with the builder DSL.

The paper's kernels are hand-mapped to tiles (§III-A); the
:class:`~repro.dataflow.builder.PipelineBuilder` makes that mapping safe
for new kernels by threading a named-field schema through every stage.
This example writes the Collatz trajectory kernel — an irregular,
data-dependent while loop nobody would vectorize on SIMD — and runs it
on the cycle engine.

Run:  python examples/pipeline_builder.py
"""

from repro.dataflow import run_graph
from repro.dataflow.builder import PipelineBuilder


def collatz_kernel(seeds):
    """Threads iterate n -> n/2 | 3n+1 until 1, counting steps."""
    b = PipelineBuilder("collatz")
    pipe = b.source("seeds", ["seed", "n", "steps"],
                    [(s, s, 0) for s in seeds])
    loop = pipe.loop("entry")

    done, working = loop.body.where("is_one", lambda r: r["n"] <= 1)
    done.select("result", "seed", "steps").sink("out")

    even, odd = working.where("parity", lambda r: r["n"] % 2 == 0)
    halved = even.map("halve", lambda r: {"seed": r["seed"],
                                          "n": r["n"] // 2,
                                          "steps": r["steps"] + 1})
    tripled = odd.map("triple", lambda r: {"seed": r["seed"],
                                           "n": 3 * r["n"] + 1,
                                           "steps": r["steps"] + 1})
    # Both divergent paths recirculate into the loop: divergence is just
    # stream filtering, and the merge's priority keeps the loop live.
    loop.continue_with(halved)
    loop.continue_with(tripled)
    return b


def reference_collatz(n):
    steps = 0
    while n > 1:
        n = n // 2 if n % 2 == 0 else 3 * n + 1
        steps += 1
    return steps


def main():
    seeds = list(range(1, 257))
    builder = collatz_kernel(seeds)
    stats = run_graph(builder.graph)
    results = {seed: steps for seed, steps in builder.results("out")}

    assert all(results[s] == reference_collatz(s) for s in seeds)
    longest = max(results, key=results.get)
    print(f"{len(seeds)} Collatz threads retired in {stats.cycles} cycles")
    print(f"longest trajectory: seed {longest} at {results[longest]} steps")
    total_steps = sum(results.values())
    print(f"total loop iterations across threads: {total_steps} "
          f"({total_steps / stats.cycles:.1f} per cycle — threads with "
          "short trajectories exit early and their lanes refill)")


if __name__ == "__main__":
    main()
