"""Gorgon's tiled merge sort (§II-B, §IV-B).

Sorting is the kernel Gorgon already accelerates and Aurochs inherits:
LSM trees "require only merge sort to implement", and the sort-based
baselines of fig. 11 are priced by its pass structure.  The
implementation here mirrors the hardware algorithm:

1. **run formation** — scratchpad-sized chunks are sorted entirely
   on-chip (no DRAM traffic beyond streaming the chunk in and out);
2. **high-radix merge passes** — up to ``MERGE_RADIX`` runs merge per
   pass, each pass streaming the whole dataset through DRAM once.

:class:`TiledMergeSort` counts events with the same accounting as
``db.operators.sortutil.charge_sort``; tests assert the two agree, which
is what licenses pricing sort-based operators analytically.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Sequence

from repro.structures.common import StructureEvents

#: Rows a 256 KiB scratchpad can sort on-chip (8-byte rows, double-buffered).
ONCHIP_SORT_ROWS = 16 * 1024

#: Runs merged per DRAM pass (high-radix merge, §IV-B).
MERGE_RADIX = 16


def sort_passes(n_rows: int) -> int:
    """DRAM streaming passes needed to fully sort ``n_rows``."""
    if n_rows <= ONCHIP_SORT_ROWS:
        return 1
    runs = math.ceil(n_rows / ONCHIP_SORT_ROWS)
    return 1 + math.ceil(math.log(runs, MERGE_RADIX))


def charge_sort(events: StructureEvents, n_rows: int, row_bytes: int) -> None:
    """Account the DRAM traffic of sorting ``n_rows`` of ``row_bytes`` each."""
    passes = sort_passes(n_rows)
    nbytes = n_rows * row_bytes * passes
    events.dram_read_bytes += nbytes
    events.dram_write_bytes += nbytes
    events.dram_dense_accesses += max(1, (2 * nbytes) // 64)
    events.records_processed += n_rows * passes


class TiledMergeSort:
    """Scratchpad-tiled, high-radix external merge sort."""

    def __init__(self, onchip_rows: int = ONCHIP_SORT_ROWS,
                 radix: int = MERGE_RADIX,
                 events: Optional[StructureEvents] = None):
        if onchip_rows < 1 or radix < 2:
            raise ValueError("onchip_rows >= 1 and radix >= 2 required")
        self.onchip_rows = onchip_rows
        self.radix = radix
        self.events = events if events is not None else StructureEvents()
        self.passes_executed = 0

    def sort(self, rows: Sequence, key: Callable = None,
             row_bytes: int = 8) -> List:
        """Sort ``rows``; charges one DRAM pass per merge level."""
        key = key or (lambda r: r)
        n = len(rows)
        if n == 0:
            return []
        # Pass 1: on-chip run formation.
        runs: List[List] = [
            sorted(rows[s:s + self.onchip_rows], key=key)
            for s in range(0, n, self.onchip_rows)
        ]
        self._charge_pass(n, row_bytes)
        # High-radix merge passes until one run remains.
        while len(runs) > 1:
            runs = [
                self._merge(runs[s:s + self.radix], key)
                for s in range(0, len(runs), self.radix)
            ]
            self._charge_pass(n, row_bytes)
        return runs[0]

    def _merge(self, runs: List[List], key: Callable) -> List:
        """R-way merge of sorted runs (the hardware merge network)."""
        if len(runs) == 1:
            return runs[0]
        return list(heapq.merge(*runs, key=key))

    def _charge_pass(self, n_rows: int, row_bytes: int) -> None:
        self.passes_executed += 1
        nbytes = n_rows * row_bytes
        self.events.dram_read_bytes += nbytes
        self.events.dram_write_bytes += nbytes
        self.events.dram_dense_accesses += max(1, (2 * nbytes) // 64)
        self.events.records_processed += n_rows


def external_sort(rows: Sequence, key: Callable = None,
                  onchip_rows: int = ONCHIP_SORT_ROWS,
                  radix: int = MERGE_RADIX,
                  events: Optional[StructureEvents] = None) -> List:
    """One-shot convenience wrapper around :class:`TiledMergeSort`."""
    return TiledMergeSort(onchip_rows, radix, events).sort(rows, key)
