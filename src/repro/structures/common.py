"""Shared conventions for Aurochs' persistent data structures (§IV).

All structures are append-only ("persistent") to avoid fine-grained
deallocation and locking: hash buckets are lock-free prepend lists, trees
are immutable and bulk-loaded, and the LSM swaps whole trees with one
pointer update.  Node pointers are 32-bit indices into a scratchpad or a
DRAM overflow buffer, with :data:`NULL` as the end-of-list sentinel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: End-of-chain sentinel pointer.
NULL = -1


@dataclass
class StructureEvents:
    """Hardware-event counters for the analytical model.

    Functional implementations count the same events the cycle simulator
    would produce so the cost model (``repro.perf.cost_model``) can price
    them: on-chip SRAM accesses, RMW atomics (including retry traffic), and
    DRAM bytes split dense/sparse.
    """

    spad_reads: int = 0
    spad_writes: int = 0
    rmw_ops: int = 0
    rmw_retries: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    dram_sparse_accesses: int = 0
    dram_dense_accesses: int = 0
    records_processed: int = 0

    def merge(self, other: "StructureEvents") -> None:
        """Accumulate another counter set into this one."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def asdict(self) -> Dict[str, int]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}
