"""Z-order (Morton) space-filling curve (§IV-C).

Aurochs' R-tree imposes a linear ordering on two-dimensional keys by
interleaving coordinate bits, so spatial bulk-loading reduces to the sort +
streaming-reduction kernels the fabric already has.  Coordinates are
unsigned 16-bit grid positions (fixed-point-quantized geography); the
Z-value is their 32-bit bit interleave.
"""

from __future__ import annotations

from typing import Tuple

#: Coordinate resolution: 16 bits per axis -> 32-bit Z-values.
COORD_BITS = 16
COORD_MAX = (1 << COORD_BITS) - 1


def _spread(v: int) -> int:
    """Spread 16 bits to even bit positions (magic-number interleave)."""
    v &= 0xFFFF
    v = (v | (v << 8)) & 0x00FF00FF
    v = (v | (v << 4)) & 0x0F0F0F0F
    v = (v | (v << 2)) & 0x33333333
    v = (v | (v << 1)) & 0x55555555
    return v


def _compact(v: int) -> int:
    """Inverse of :func:`_spread`: gather even bit positions into 16 bits."""
    v &= 0x55555555
    v = (v | (v >> 1)) & 0x33333333
    v = (v | (v >> 2)) & 0x0F0F0F0F
    v = (v | (v >> 4)) & 0x00FF00FF
    v = (v | (v >> 8)) & 0x0000FFFF
    return v


def z_encode(x: int, y: int) -> int:
    """Interleave ``(x, y)`` into a Z-order value (x in even bits)."""
    if not (0 <= x <= COORD_MAX and 0 <= y <= COORD_MAX):
        raise ValueError(f"coordinates out of {COORD_BITS}-bit range: {(x, y)}")
    return _spread(x) | (_spread(y) << 1)

def z_decode(z: int) -> Tuple[int, int]:
    """Recover ``(x, y)`` from a Z-order value."""
    return _compact(z), _compact(z >> 1)
