"""The paper's §IV data-structure formulations: hash tables, radix
partitioning, immutable B-trees, LSM trees, and Z-order packed R-trees —
each in a functional form (with hardware-event accounting) and, where the
paper gives a dataflow mapping, a cycle-simulated tile-graph form."""

from repro.structures.common import NULL, StructureEvents
from repro.structures.hashing import bucket_of, hash32, is_power_of_two, radix_of
from repro.structures.hashtable import (
    NODE_WORDS,
    ChainedHashTable,
    HashTableDataflow,
)
from repro.structures.partition import (
    DEFAULT_BLOCK_SIZE,
    PartitionerDataflow,
    RadixPartitioner,
)
from repro.structures.btree import (
    DEFAULT_FANOUT,
    BTreeDataflow,
    ImmutableBTree,
)
from repro.structures.lsm import LsmSnapshot, LsmTree, MergeRecord, merge_trees
from repro.structures.spill import SpillTile, split_window
from repro.structures.sort import TiledMergeSort, external_sort
from repro.structures.zorder import COORD_BITS, COORD_MAX, z_decode, z_encode
from repro.structures.rtree import (
    PackedRTree,
    Rect,
    RTreeDataflow,
    center,
    contains,
    euclidean,
    expand,
    intersects,
    point_rect,
    rect,
    spatial_join,
    union,
)

__all__ = [
    "NULL", "StructureEvents",
    "bucket_of", "hash32", "is_power_of_two", "radix_of",
    "NODE_WORDS", "ChainedHashTable", "HashTableDataflow",
    "DEFAULT_BLOCK_SIZE", "PartitionerDataflow", "RadixPartitioner",
    "DEFAULT_FANOUT", "BTreeDataflow", "ImmutableBTree",
    "LsmSnapshot",
    "LsmTree",
    "MergeRecord",
    "merge_trees",
    "SpillTile", "split_window",
    "TiledMergeSort", "external_sort",
    "COORD_BITS", "COORD_MAX", "z_decode", "z_encode",
    "PackedRTree", "Rect", "RTreeDataflow", "center", "contains",
    "euclidean", "expand", "intersects", "point_rect", "rect",
    "spatial_join", "union",
]
