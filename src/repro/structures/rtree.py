"""Packed R-trees via Z-order bulk loading (§IV-C, fig. 9).

Each R-tree node encloses a bounding rectangle containing all its children.
Aurochs bulk-loads the tree by sorting entries on the Z-order transform of
their centers (locality-preserving linearization) and building each internal
level with a streaming reduction that accumulates children's bounds — both
kernels the fabric already has (sort + reduce).

Window queries find all leaves intersecting a search rectangle; because
R-tree siblings may overlap, search paths diverge and a thread may fork
down several children — the workload fig. 6b's fork primitive exists for.
Spatial joins (fig. 9b) descend two indices simultaneously, expanding only
child pairs whose rectangles (optionally dilated by a distance radius)
overlap.

Rectangles are ``(x0, y0, x1, y1)`` int tuples on the 16-bit Z-order grid;
points are degenerate rectangles.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.dataflow import (
    FilterTile,
    ForkTile,
    Graph,
    MergeTile,
    SinkTile,
    SourceTile,
)
from repro.memory import DramMemory, DramTile, PortConfig
from repro.structures.common import StructureEvents
from repro.structures.zorder import z_encode

Rect = Tuple[int, int, int, int]

#: Default node fanout (children per R-tree node).
DEFAULT_FANOUT = 16

#: Words per child entry: 4 rect coordinates + child pointer.
CHILD_WORDS = 5


# -- rectangle helpers ---------------------------------------------------------

def rect(x0: int, y0: int, x1: int, y1: int) -> Rect:
    """Normalized rectangle constructor."""
    return (min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))


def point_rect(x: int, y: int) -> Rect:
    """A point as a degenerate rectangle."""
    return (x, y, x, y)


def intersects(a: Rect, b: Rect) -> bool:
    return a[0] <= b[2] and a[2] >= b[0] and a[1] <= b[3] and a[3] >= b[1]


def contains(outer: Rect, inner: Rect) -> bool:
    return (outer[0] <= inner[0] and outer[1] <= inner[1]
            and outer[2] >= inner[2] and outer[3] >= inner[3])


def union(a: Rect, b: Rect) -> Rect:
    return (min(a[0], b[0]), min(a[1], b[1]),
            max(a[2], b[2]), max(a[3], b[3]))


def expand(r: Rect, radius: int) -> Rect:
    """Dilate a rectangle by ``radius`` on all sides (distance pre-filter)."""
    return (r[0] - radius, r[1] - radius, r[2] + radius, r[3] + radius)


def center(r: Rect) -> Tuple[int, int]:
    return ((r[0] + r[2]) // 2, (r[1] + r[3]) // 2)


def euclidean(p: Rect, q: Rect) -> float:
    """Center-to-center Euclidean distance (for point rects: point distance)."""
    (px, py), (qx, qy) = center(p), center(q)
    return math.hypot(px - qx, py - qy)


def _clamp16(v: int) -> int:
    return max(0, min(v, (1 << 16) - 1))


# -- the packed tree ------------------------------------------------------------

class PackedRTree:
    """Immutable R-tree stored as a flat node array.

    ``_nodes[i] = (bbox, kind, content)`` where ``kind`` is ``'L'`` (content
    is the leaf block: a list of ``(rect, value)``) or ``'I'`` (content is a
    list of child node indices).
    """

    def __init__(self, nodes: List, root_idx: int, fanout: int,
                 size: int, events: Optional[StructureEvents] = None):
        self._nodes = nodes
        self.root_idx = root_idx
        self.fanout = fanout
        self._size = size
        self.events = events if events is not None else StructureEvents()

    @classmethod
    def bulk_load(cls, entries: Sequence[Tuple[Rect, object]],
                  fanout: int = DEFAULT_FANOUT,
                  events: Optional[StructureEvents] = None) -> "PackedRTree":
        """Sort by Z-order of centers, then reduce levels bottom-up."""
        ev = events if events is not None else StructureEvents()
        items = sorted(
            entries,
            key=lambda e: z_encode(_clamp16(center(e[0])[0]),
                                   _clamp16(center(e[0])[1])),
        )
        ev.records_processed += len(items)
        nodes: List = []
        if not items:
            nodes.append(((0, 0, 0, 0), "L", []))
            return cls(nodes, 0, fanout, 0, ev)
        current: List[int] = []
        for s in range(0, len(items), fanout):
            block = items[s:s + fanout]
            bbox = block[0][0]
            for r, __ in block[1:]:
                bbox = union(bbox, r)
            nodes.append((bbox, "L", block))
            current.append(len(nodes) - 1)
        ev.dram_write_bytes += len(items) * CHILD_WORDS * 4
        while len(current) > 1:
            above: List[int] = []
            for s in range(0, len(current), fanout):
                children = current[s:s + fanout]
                bbox = nodes[children[0]][0]
                for c in children[1:]:
                    bbox = union(bbox, nodes[c][0])
                nodes.append((bbox, "I", children))
                above.append(len(nodes) - 1)
            ev.dram_write_bytes += len(above) * fanout * CHILD_WORDS * 4
            current = above
        return cls(nodes, current[0], fanout, len(items), ev)

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaf blocks inclusive."""
        h, idx = 1, self.root_idx
        while self._nodes[idx][1] == "I":
            idx = self._nodes[idx][2][0]
            h += 1
        return h

    def bbox(self) -> Rect:
        return self._nodes[self.root_idx][0]

    def window_query(self, query: Rect) -> List[Tuple[Rect, object]]:
        """All entries whose rectangle intersects ``query``."""
        out: List[Tuple[Rect, object]] = []
        stack = [self.root_idx]
        while stack:
            bbox, kind, content = self._nodes[stack.pop()]
            self.events.dram_read_bytes += self.fanout * CHILD_WORDS * 4
            self.events.dram_sparse_accesses += 1
            if not intersects(bbox, query):
                continue
            if kind == "L":
                out.extend((r, v) for r, v in content if intersects(r, query))
            else:
                stack.extend(c for c in content
                             if intersects(self._nodes[c][0], query))
        self.events.records_processed += 1
        return out

    def within_distance(self, p: Rect, radius: int
                        ) -> List[Tuple[Rect, object, float]]:
        """Entries whose center lies within Euclidean ``radius`` of ``p``'s
        center: dilated window query pre-filter + exact distance check."""
        candidates = self.window_query(expand(p, radius))
        out = []
        for r, v in candidates:
            d = euclidean(p, r)
            if d <= radius:
                out.append((r, v, d))
        return out

    def all_entries(self) -> List[Tuple[Rect, object]]:
        out = []
        stack = [self.root_idx]
        while stack:
            __, kind, content = self._nodes[stack.pop()]
            if kind == "L":
                out.extend(content)
            else:
                stack.extend(content)
        return out


def spatial_join(a: PackedRTree, b: PackedRTree, within: int = 0,
                 exact: Optional[Callable[[Rect, Rect], bool]] = None,
                 events: Optional[StructureEvents] = None
                 ) -> List[Tuple[Rect, object, Rect, object]]:
    """Dual-index nested loop join (fig. 9b).

    Yields ``(rect_a, value_a, rect_b, value_b)`` for every entry pair whose
    rectangles overlap after dilating A's side by ``within`` (the distance
    pre-filter); ``exact`` optionally refines each candidate pair (e.g. a
    Euclidean distance test for point data).
    """
    ev = events if events is not None else StructureEvents()
    out: List[Tuple[Rect, object, Rect, object]] = []
    if len(a) == 0 or len(b) == 0:
        return out
    stack = [(a.root_idx, b.root_idx)]
    while stack:
        ia, ib = stack.pop()
        ra, ka, ca = a._nodes[ia]
        rb, kb, cb = b._nodes[ib]
        ev.dram_read_bytes += 2 * a.fanout * CHILD_WORDS * 4
        ev.dram_sparse_accesses += 2
        if not intersects(expand(ra, within), rb):
            continue
        if ka == "L" and kb == "L":
            for ea, va in ca:
                dilated = expand(ea, within)
                for eb, vb in cb:
                    if intersects(dilated, eb):
                        if exact is None or exact(ea, eb):
                            out.append((ea, va, eb, vb))
        elif ka == "I" and kb == "I":
            for childa in ca:
                for childb in cb:
                    if intersects(expand(a._nodes[childa][0], within),
                                  b._nodes[childb][0]):
                        stack.append((childa, childb))
        elif ka == "I":
            for childa in ca:
                stack.append((childa, ib))
        else:
            for childb in cb:
                stack.append((ia, childb))
    if events is None:
        a.events.merge(ev)
    return out


class RTreeDataflow:
    """Window queries on the cycle-simulated fabric.

    Node blocks live in DRAM; a search thread ``(qid, x0, y0, x1, y1,
    node_idx)`` gathers its node, forks intersecting children, and leaf
    threads emit ``(qid, rect, value)``.  The fork tile's pending buffer
    stands in for the paper's DRAM spill queue for diverged search threads.
    """

    def __init__(self, tree: PackedRTree, name: str = "rtree"):
        self.tree = tree
        self.dram = DramMemory(f"{name}.dram")
        self.nodes = self.dram.region("nodes", len(tree._nodes),
                                      tree.fanout * CHILD_WORDS, fill=None)
        for i, node in enumerate(tree._nodes):
            self.nodes[i] = node

    def window_graph(self, queries: Sequence[Tuple[int, Rect]],
                     spill: bool = False,
                     on_chip_capacity: int = 64) -> Graph:
        """``queries`` is ``(qid, rect)``; hits are ``(qid, rect, value)``.

        With ``spill=True`` the forked traversal threads pass through a
        :class:`~repro.structures.spill.SpillTile` before recirculating —
        the §IV-C DRAM queue that bounds on-chip thread storage during
        divergent searches.
        """
        from repro.structures.spill import SpillTile
        tree = self.tree

        def fork_children(record):
            qid, x0, y0, x1, y1, __, content = record
            q = (x0, y0, x1, y1)
            return [(qid, x0, y0, x1, y1, c) for c in content
                    if intersects(tree._nodes[c][0], q)]

        def fork_leaves(record):
            qid, x0, y0, x1, y1, __, content = record
            q = (x0, y0, x1, y1)
            return [(qid, r, v) for r, v in content if intersects(r, q)]

        g = Graph("rtree_window")
        src = g.add(SourceTile("src", [
            (qid, r[0], r[1], r[2], r[3], tree.root_idx)
            for qid, r in queries
        ]))
        entry = g.add(MergeTile("entry"))
        gather = g.add(DramTile("gather", self.dram, [PortConfig(
            mode="read", region=self.nodes, addr=lambda r: r[5],
            combine=lambda r, node: r[:5] + (node[1], node[2]))]))
        is_leaf = g.add(FilterTile("is_leaf", lambda r: r[5] == "L"))
        emit = g.add(ForkTile("emit", fork_leaves))
        descend = g.add(ForkTile("descend", fork_children))
        hits = g.add(SinkTile("hits"))

        g.connect(src, entry)
        g.connect(entry, gather)
        g.connect(gather, is_leaf)
        g.connect(is_leaf, emit, producer_port=0)
        g.connect(emit, hits)
        g.connect(is_leaf, descend, producer_port=1)
        if spill:
            queue = g.add(SpillTile("spill",
                                    on_chip_capacity=on_chip_capacity,
                                    record_words=6))
            g.connect(descend, queue)
            g.connect(queue, entry, priority=True)
        else:
            g.connect(descend, entry, priority=True)
        return g
