"""32-bit hash functions for keys and radix partitioning.

Hash functions scramble keys to take skewed distributions to a uniform
distribution (§II-A) — this is what lets radix partitioning *on the hash*
load-balance parallel pipelines regardless of key skew (§IV-A).  We use the
MurmurHash3 finalizer, a well-mixed 32-bit avalanche function that is cheap
enough for one map-tile pipeline stage per multiply/shift.
"""

from __future__ import annotations

_M = 0xFFFFFFFF


def hash32(key) -> int:
    """MurmurHash3 32-bit finalizer (full avalanche).

    Non-integer keys (e.g. multi-field join keys as tuples) are first
    reduced to 32 bits with Python's hash — standing in for the multi-word
    key hashing Gorgon pipelines across record fields.
    """
    x = (key if isinstance(key, int) else hash(key)) & _M
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & _M
    x ^= x >> 13
    x = (x * 0xC2B2AE35) & _M
    x ^= x >> 16
    return x


def bucket_of(key: int, n_buckets: int) -> int:
    """Map ``key`` to a hash bucket index.

    The finalizer is inlined rather than delegated to :func:`hash32`: this
    runs once per record on scratchpad address paths (hash-table heads),
    where the extra call frame is measurable.
    """
    x = (key if isinstance(key, int) else hash(key)) & _M
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & _M
    x ^= x >> 13
    x = (x * 0xC2B2AE35) & _M
    x ^= x >> 16
    return x % n_buckets


def radix_of(key: int, n_partitions: int) -> int:
    """Partition index from the low-radix bits of the key's hash (§IV-A)."""
    return hash32(key) & (n_partitions - 1)


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0
