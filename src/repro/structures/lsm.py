"""Log-structured merge-trees over immutable B-trees (§IV-B, fig. 8).

Streaming ingest rebuilds indices continuously; balanced-tree insertion
would need rebalancing and locking.  Aurochs instead batches inserts: each
batch is sorted and bulk-loaded into a fresh immutable B-tree, and the LSM
maintains a list of exponentially growing trees, merging neighbours (a
linear leaf merge + linear internal rebuild — just the merge-sort kernel
Gorgon already has) whenever the newest tree has grown to its neighbour's
size.  A single lock-free update of the head list pointer publishes each
merge, giving readers and writers natural concurrency; queries search all
internal trees, and the tree list doubles as a coarse secondary index on
insertion time.

Publication is versioned: every head-pointer update (a flush installing a
fresh tree, or a merge swapping two neighbours for one) bumps
:attr:`LsmTree.version` and readers capture an :class:`LsmSnapshot` — an
immutable handle over the tree list as of one version.  All queries go
through a snapshot, so a flush or merge landing between two tree visits
can never yield a torn read.  The merge work itself is exposed
functionally (:func:`merge_trees` builds the merged tree off to the side,
:meth:`LsmTree.publish_merge` installs it only if both inputs are still
adjacent in the list) so compaction can run as a background job and be
abandoned without ever publishing a torn version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.structures.btree import DEFAULT_FANOUT, LEAF_WORDS, ImmutableBTree
from repro.structures.common import StructureEvents


@dataclass(frozen=True)
class LsmSnapshot:
    """An immutable read handle over one published LSM version.

    ``trees`` is the tree list (newest first) and ``buffer`` the unflushed
    tail captured at the same instant; queries see exactly this state no
    matter what flushes or merges publish afterwards.  Iterating a
    snapshot yields its trees (the pre-versioning ``snapshot()`` contract).
    """

    version: int
    trees: Tuple[ImmutableBTree, ...]
    buffer: Tuple[Tuple[int, object], ...] = ()

    def __iter__(self) -> Iterator[ImmutableBTree]:
        return iter(self.trees)

    def __len__(self) -> int:
        return sum(len(t) for t in self.trees) + len(self.buffer)

    def search(self, key: int) -> List:
        """All values under ``key`` across every tree + captured buffer."""
        out: List = []
        for tree in self.trees:
            out.extend(tree.search(key))
        out.extend(v for k, v in self.buffer if k == key)
        return out

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """All ``(key, value)`` with ``lo <= key <= hi``, across all trees.

        Trees whose ``[min, max]`` key range misses the query are pruned —
        for time keys this is the "tree list as a secondary index on time"
        effect.
        """
        out: List[Tuple[int, object]] = []
        for tree in self.trees:
            mn, mx = tree.min_key(), tree.max_key()
            if mn is None or mn > hi or mx < lo:
                continue
            out.extend(tree.range_query(lo, hi))
        out.extend((k, v) for k, v in self.buffer if lo <= k <= hi)
        out.sort(key=lambda kv: kv[0])
        return out

    def tree_sizes(self) -> List[int]:
        return [len(t) for t in self.trees]


@dataclass
class MergeRecord:
    """One published merge level, with its isolated event counters.

    ``events`` holds only this merge's hardware events (also accumulated
    into the owning tree's shared counters), so stall attribution can see
    compaction cost level by level instead of one undifferentiated blob.
    """

    version: int
    level: int
    records: int
    events: StructureEvents = field(default_factory=StructureEvents)


def merge_trees(a: ImmutableBTree, b: ImmutableBTree,
                fanout: int = DEFAULT_FANOUT
                ) -> Tuple[ImmutableBTree, StructureEvents]:
    """Linear merge of two sorted leaf arrays + internal rebuild.

    Purely functional: neither input is touched and all hardware events
    land in the returned delta, so a background compaction job can do this
    work off to the side and only :meth:`LsmTree.publish_merge` (or
    abandonment) decides whether it becomes visible.
    """
    delta = StructureEvents()
    la, lb = a.leaves(), b.leaves()
    out: List[Tuple[int, object]] = []
    i = j = 0
    while i < len(la) and j < len(lb):
        if la[i][0] <= lb[j][0]:
            out.append(la[i]); i += 1
        else:
            out.append(lb[j]); j += 1
    out.extend(la[i:])
    out.extend(lb[j:])
    n_bytes = len(out) * LEAF_WORDS * 4
    delta.dram_read_bytes += n_bytes      # stream both inputs
    delta.dram_write_bytes += n_bytes     # stream merged output
    delta.dram_dense_accesses += max(1, n_bytes // 64)
    merged = ImmutableBTree.bulk_load(out, fanout, presorted=True,
                                      events=delta)
    return merged, delta


class LsmTree:
    """An append-only ordered index: a list of immutable B-trees.

    ``batch_size`` trades index-update latency for work amortization
    (§IV-B); ``benchmarks/bench_lsm_batch.py`` sweeps it.
    """

    def __init__(self, batch_size: int = 1024, fanout: int = DEFAULT_FANOUT,
                 events: Optional[StructureEvents] = None):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        self.fanout = fanout
        self.events = events if events is not None else StructureEvents()
        self._trees: List[ImmutableBTree] = []   # newest first
        self._buffer: List[Tuple[int, object]] = []
        self.version = 0
        self.merges = 0
        self.merged_records = 0
        self.merge_log: List[MergeRecord] = []

    # -- ingest -----------------------------------------------------------------

    def insert(self, key: int, value) -> None:
        """Buffer one record; flushes automatically at ``batch_size``."""
        self._buffer.append((key, value))
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def insert_many(self, pairs: Iterable[Tuple[int, object]]) -> None:
        for key, value in pairs:
            self.insert(key, value)

    def append(self, key: int, value) -> None:
        """Buffer one record *without* the automatic flush.

        The live-ingestion path flushes explicitly (a background fabric
        job claims the buffer), so the memtable may legitimately exceed
        ``batch_size`` while compaction is being starved — the chaos
        harness measures and bounds exactly that.
        """
        self._buffer.append((key, value))

    def claim_buffer(self) -> List[Tuple[int, object]]:
        """Detach and return the buffered batch (for a background flush).

        The caller owns the rows: bulk-load them with
        :func:`build_batch_tree` and install via :meth:`publish_tree`.
        """
        batch = self._buffer
        self._buffer = []
        return batch

    def flush(self) -> None:
        """Bulk-load the buffered batch and restore the size invariant."""
        if not self._buffer:
            return
        batch = self.claim_buffer()
        # Sorting the batch is O(b log b) — charge merge-network traffic.
        self.events.records_processed += len(batch)
        self.events.dram_write_bytes += len(batch) * LEAF_WORDS * 4
        tree = ImmutableBTree.bulk_load(batch, self.fanout,
                                        events=self.events)
        self.publish_tree(tree)
        self.compact()

    def build_batch_tree(self, batch: List[Tuple[int, object]]
                         ) -> Tuple[ImmutableBTree, StructureEvents]:
        """Bulk-load a claimed batch off to the side (background flush)."""
        delta = StructureEvents()
        delta.records_processed += len(batch)
        delta.dram_write_bytes += len(batch) * LEAF_WORDS * 4
        tree = ImmutableBTree.bulk_load(batch, self.fanout, events=delta)
        return tree, delta

    def publish_tree(self, tree: ImmutableBTree,
                     events: Optional[StructureEvents] = None) -> int:
        """One lock-free head-pointer update installs a fresh tree.

        Returns the new version.  ``events`` is the builder's isolated
        delta when the tree was bulk-loaded off to the side.
        """
        if events is not None:
            self.events.merge(events)
        tree.events = self.events   # future reads charge the shared counters
        self._trees.insert(0, tree)
        self.version += 1
        return self.version

    def pending_merge(self) -> Optional[Tuple[ImmutableBTree, ImmutableBTree]]:
        """The first adjacent pair violating the exponential size ladder.

        Returns ``(newer, older)`` or ``None`` when the ladder holds.
        This is the unit of background compaction work: merge the pair
        with :func:`merge_trees`, then :meth:`publish_merge` the result.
        """
        for i in range(len(self._trees) - 1):
            if len(self._trees[i]) >= len(self._trees[i + 1]):
                return self._trees[i], self._trees[i + 1]
        return None

    def publish_merge(self, a: ImmutableBTree, b: ImmutableBTree,
                      merged: ImmutableBTree,
                      events: Optional[StructureEvents] = None) -> bool:
        """Swap adjacent trees ``(a, b)`` for ``merged`` — or refuse.

        The compare-and-swap of the lock-free story: the swap happens only
        if ``a`` and ``b`` are still adjacent in the current list (matched
        by identity).  A stale merge — its inputs already merged away by a
        competing publication — returns ``False`` and changes nothing, so
        an abandoned or lost compaction can never publish a torn version.
        """
        for i in range(len(self._trees) - 1):
            if self._trees[i] is a and self._trees[i + 1] is b:
                delta = events if events is not None else StructureEvents()
                self.events.merge(delta)
                merged.events = self.events
                self._trees[i:i + 2] = [merged]
                self.version += 1
                self.merges += 1
                self.merged_records += len(merged)
                self.merge_log.append(MergeRecord(
                    version=self.version, level=i, records=len(merged),
                    events=delta))
                return True
        return False

    def compact(self) -> int:
        """Eagerly restore the size ladder; one published merge per level.

        Each level emits its own :class:`MergeRecord` (with isolated
        ``StructureEvents``) so attribution sees the cascade's cost per
        merge rather than only the insert path's.  Returns the number of
        merges published.
        """
        published = 0
        pair = self.pending_merge()
        while pair is not None:
            a, b = pair
            merged, delta = merge_trees(a, b, self.fanout)
            if not self.publish_merge(a, b, merged, delta):   # pragma: no cover
                break
            published += 1
            pair = self.pending_merge()
        return published

    # -- queries ------------------------------------------------------------------

    def snapshot(self) -> LsmSnapshot:
        """An immutable handle on the current version — readers traverse
        this while writers publish flushes and merges, the paper's
        lock-free reader/writer story."""
        return LsmSnapshot(version=self.version, trees=tuple(self._trees),
                           buffer=tuple(self._buffer))

    def published_snapshot(self) -> LsmSnapshot:
        """The current version *excluding* the unflushed buffer.

        This is what the serving tier pins: appends become visible only
        when a flush publishes them, so a version's content is a pure
        function of the flushed row prefix.
        """
        return LsmSnapshot(version=self.version, trees=tuple(self._trees))

    def search(self, key: int) -> List:
        """All values under ``key`` across every internal tree + buffer."""
        return self.snapshot().search(key)

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """All ``(key, value)`` with ``lo <= key <= hi``, across all trees."""
        return self.snapshot().range_query(lo, hi)

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(t) for t in self._trees) + len(self._buffer)

    def buffered(self) -> int:
        """Unflushed memtable rows (the starvation signal)."""
        return len(self._buffer)

    def tree_sizes(self) -> List[int]:
        return [len(t) for t in self._trees]

    def write_amplification(self) -> float:
        """Merged records re-written per ingested record."""
        n = len(self)
        return self.merged_records / n if n else 0.0
