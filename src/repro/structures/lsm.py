"""Log-structured merge-trees over immutable B-trees (§IV-B, fig. 8).

Streaming ingest rebuilds indices continuously; balanced-tree insertion
would need rebalancing and locking.  Aurochs instead batches inserts: each
batch is sorted and bulk-loaded into a fresh immutable B-tree, and the LSM
maintains a list of exponentially growing trees, merging neighbours (a
linear leaf merge + linear internal rebuild — just the merge-sort kernel
Gorgon already has) whenever the newest tree has grown to its neighbour's
size.  A single lock-free update of the head list pointer publishes each
merge, giving readers and writers natural concurrency; queries search all
internal trees, and the tree list doubles as a coarse secondary index on
insertion time.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from repro.structures.btree import DEFAULT_FANOUT, LEAF_WORDS, ImmutableBTree
from repro.structures.common import StructureEvents


class LsmTree:
    """An append-only ordered index: a list of immutable B-trees.

    ``batch_size`` trades index-update latency for work amortization
    (§IV-B); ``benchmarks/bench_lsm_batch.py`` sweeps it.
    """

    def __init__(self, batch_size: int = 1024, fanout: int = DEFAULT_FANOUT,
                 events: Optional[StructureEvents] = None):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        self.fanout = fanout
        self.events = events if events is not None else StructureEvents()
        self._trees: List[ImmutableBTree] = []   # newest first
        self._buffer: List[Tuple[int, object]] = []
        self.merges = 0
        self.merged_records = 0

    # -- ingest -----------------------------------------------------------------

    def insert(self, key: int, value) -> None:
        """Buffer one record; flushes automatically at ``batch_size``."""
        self._buffer.append((key, value))
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def insert_many(self, pairs: Iterable[Tuple[int, object]]) -> None:
        for key, value in pairs:
            self.insert(key, value)

    def flush(self) -> None:
        """Bulk-load the buffered batch and restore the size invariant."""
        if not self._buffer:
            return
        batch = self._buffer
        self._buffer = []
        # Sorting the batch is O(b log b) — charge merge-network traffic.
        self.events.records_processed += len(batch)
        self.events.dram_write_bytes += len(batch) * LEAF_WORDS * 4
        tree = ImmutableBTree.bulk_load(batch, self.fanout,
                                        events=self.events)
        self._trees.insert(0, tree)
        # Merge forward while the newest tree caught up with its neighbour,
        # keeping the exponential size ladder.
        while (len(self._trees) >= 2
               and len(self._trees[0]) >= len(self._trees[1])):
            a = self._trees.pop(0)
            b = self._trees.pop(0)
            merged = self._merge(a, b)
            # One lock-free head-pointer update publishes the merged tree.
            self._trees.insert(0, merged)

    def _merge(self, a: ImmutableBTree, b: ImmutableBTree) -> ImmutableBTree:
        """Linear merge of two sorted leaf arrays + internal rebuild."""
        la, lb = a.leaves(), b.leaves()
        out: List[Tuple[int, object]] = []
        i = j = 0
        while i < len(la) and j < len(lb):
            if la[i][0] <= lb[j][0]:
                out.append(la[i]); i += 1
            else:
                out.append(lb[j]); j += 1
        out.extend(la[i:])
        out.extend(lb[j:])
        self.merges += 1
        self.merged_records += len(out)
        n_bytes = len(out) * LEAF_WORDS * 4
        self.events.dram_read_bytes += n_bytes     # stream both inputs
        self.events.dram_write_bytes += n_bytes    # stream merged output
        self.events.dram_dense_accesses += max(1, n_bytes // 64)
        return ImmutableBTree.bulk_load(out, self.fanout, presorted=True,
                                        events=self.events)

    # -- queries ------------------------------------------------------------------

    def snapshot(self) -> List[ImmutableBTree]:
        """The current tree list — readers traverse this immutably while
        writers publish merges, the paper's lock-free reader/writer story."""
        return list(self._trees)

    def search(self, key: int) -> List:
        """All values under ``key`` across every internal tree + buffer."""
        out: List = []
        for tree in self._trees:
            out.extend(tree.search(key))
        out.extend(v for k, v in self._buffer if k == key)
        return out

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """All ``(key, value)`` with ``lo <= key <= hi``, across all trees.

        Trees whose ``[min, max]`` key range misses the query are pruned —
        for time keys this is the "tree list as a secondary index on time"
        effect.
        """
        out: List[Tuple[int, object]] = []
        for tree in self._trees:
            mn, mx = tree.min_key(), tree.max_key()
            if mn is None or mn > hi or mx < lo:
                continue
            out.extend(tree.range_query(lo, hi))
        out.extend((k, v) for k, v in self._buffer if lo <= k <= hi)
        out.sort(key=lambda kv: kv[0])
        return out

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(t) for t in self._trees) + len(self._buffer)

    def tree_sizes(self) -> List[int]:
        return [len(t) for t in self._trees]

    def write_amplification(self) -> float:
        """Merged records re-written per ingested record."""
        n = len(self)
        return self.merged_records / n if n else 0.0
