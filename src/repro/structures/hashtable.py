"""Chained hash tables as dataflow-thread pipelines (§IV-A, figs. 6a/6c/7a).

The hash table is an array of linked lists: one scratchpad region holds
buckets' head pointers, another holds the list nodes ``(key, payload,
next)``.  Builds prepend nodes lock-free with compare-and-swap; probes walk
chains with recirculating threads.  An incrementing *stamp* reserves each
inserted node's slot; slots past on-chip capacity implicitly address a
pre-allocated DRAM overflow buffer, and threads transparently follow chains
across both memories (fig. 7a).

Two implementations share these semantics:

* :class:`ChainedHashTable` — functional, fast, with hardware-event
  accounting for the analytical model; used for large datasets exactly as
  the paper uses its analytical projection.
* :class:`HashTableDataflow` — lowers build and probe to cycle-simulated
  tile graphs, reproducing the microarchitectural behaviour (lane refill,
  CAS retry recirculation, SRAM/DRAM path split).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import CapacityError
from repro.dataflow import (
    CopyTile,
    FilterTile,
    Graph,
    MapTile,
    MergeTile,
    SinkTile,
    SourceTile,
    StampTile,
)
from repro.memory import (
    DramMemory,
    DramTile,
    PortConfig,
    ScratchpadMemory,
    ScratchpadTile,
    cas,
)
from repro.dataflow.expr import (
    Arg,
    Concat,
    Field,
    Tup,
    bucket_expr,
)
from repro.structures.common import NULL, StructureEvents
from repro.structures.hashing import bucket_of

#: Words per hash node: key, payload, next pointer.
NODE_WORDS = 3


class ChainedHashTable:
    """Functional chained hash table with on-chip/overflow accounting.

    ``spad_node_capacity`` is how many nodes fit in the node scratchpad;
    inserts beyond it land in the DRAM overflow buffer (counted as sparse
    DRAM traffic).  ``None`` means everything fits on-chip.
    """

    def __init__(self, n_buckets: int,
                 spad_node_capacity: Optional[int] = None,
                 events: Optional[StructureEvents] = None):
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        self.n_buckets = n_buckets
        self.spad_node_capacity = spad_node_capacity
        self.heads: List[int] = [NULL] * n_buckets
        self.node_keys: List[int] = []
        self.node_payloads: List = []
        self.node_next: List[int] = []
        self.events = events if events is not None else StructureEvents()

    # -- build ---------------------------------------------------------------

    def insert(self, key: int, payload) -> int:
        """Prepend ``(key, payload)`` to its bucket; returns the node slot."""
        slot = len(self.node_keys)
        bucket = bucket_of(key, self.n_buckets)
        head = self.heads[bucket]
        self.events.spad_reads += 1
        self.node_keys.append(key)
        self.node_payloads.append(payload)
        self.node_next.append(head)
        if self._on_chip(slot):
            self.events.spad_writes += NODE_WORDS
        else:
            self.events.dram_write_bytes += NODE_WORDS * 4
            self.events.dram_sparse_accesses += 1
        # Sequential build: the CAS always succeeds first try.  Concurrent
        # retry behaviour is exercised by the dataflow pipeline.
        self.events.rmw_ops += 1
        self.heads[bucket] = slot
        self.events.records_processed += 1
        return slot

    def build(self, pairs: Iterable[Tuple[int, object]]) -> "ChainedHashTable":
        for key, payload in pairs:
            self.insert(key, payload)
        return self

    # -- probe ---------------------------------------------------------------

    def probe(self, key: int) -> List:
        """Return payloads of every node matching ``key`` (chain walk)."""
        matches: List = []
        ptr = self.heads[bucket_of(key, self.n_buckets)]
        self.events.spad_reads += 1
        self.events.records_processed += 1
        while ptr != NULL:
            if self._on_chip(ptr):
                self.events.spad_reads += NODE_WORDS
            else:
                self.events.dram_read_bytes += NODE_WORDS * 4
                self.events.dram_sparse_accesses += 1
            if self.node_keys[ptr] == key:
                matches.append(self.node_payloads[ptr])
            ptr = self.node_next[ptr]
        return matches

    def contains(self, key: int) -> bool:
        """First-match probe (fig. 6a's early-exit form)."""
        ptr = self.heads[bucket_of(key, self.n_buckets)]
        self.events.spad_reads += 1
        while ptr != NULL:
            if self._on_chip(ptr):
                self.events.spad_reads += NODE_WORDS
            else:
                self.events.dram_read_bytes += NODE_WORDS * 4
                self.events.dram_sparse_accesses += 1
            if self.node_keys[ptr] == key:
                return True
            ptr = self.node_next[ptr]
        return False

    # -- introspection -------------------------------------------------------

    def _on_chip(self, slot: int) -> bool:
        return (self.spad_node_capacity is None
                or slot < self.spad_node_capacity)

    def __len__(self) -> int:
        return len(self.node_keys)

    @property
    def overflow_nodes(self) -> int:
        if self.spad_node_capacity is None:
            return 0
        return max(0, len(self.node_keys) - self.spad_node_capacity)

    def chain_lengths(self) -> List[int]:
        """Length of every bucket's collision chain (locality diagnostics)."""
        lengths = []
        for head in self.heads:
            n, ptr = 0, head
            while ptr != NULL:
                n += 1
                ptr = self.node_next[ptr]
            lengths.append(n)
        return lengths

    def items(self) -> Iterable[Tuple[int, object]]:
        return zip(self.node_keys, self.node_payloads)


class HashTableDataflow:
    """Cycle-simulated hash table pipelines on the tile fabric.

    Owns the scratchpad regions (bucket heads + on-chip nodes) and the DRAM
    overflow region, and lowers fig. 6a (probe), fig. 6c (CAS build) and
    fig. 7a (SRAM/DRAM split) to tile graphs.
    """

    def __init__(self, n_buckets: int, spad_node_capacity: int,
                 overflow_capacity: int = 1 << 16, name: str = "ht"):
        self.n_buckets = n_buckets
        self.spad_node_capacity = spad_node_capacity
        self.spad = ScratchpadMemory(f"{name}.spad")
        self.heads = self.spad.region("heads", n_buckets, 1, fill=NULL)
        self.nodes = self.spad.region("nodes", spad_node_capacity,
                                      NODE_WORDS, fill=None)
        self.dram = DramMemory(f"{name}.dram")
        self.overflow = self.dram.region("overflow", overflow_capacity,
                                         NODE_WORDS, fill=None)
        self.next_slot = 0

    # -- direct (functional) load for probe-only experiments -------------------

    def load(self, pairs: Sequence[Tuple[int, object]]) -> None:
        """Populate the regions without simulating the build pipeline."""
        for key, payload in pairs:
            slot = self.next_slot
            self.next_slot += 1
            bucket = bucket_of(key, self.n_buckets)
            node = (key, payload, self.heads[bucket])
            self._store_node(slot, node)
            self.heads[bucket] = slot

    def _store_node(self, slot: int, node: Tuple) -> None:
        if slot < self.spad_node_capacity:
            self.nodes[slot] = node
        elif slot - self.spad_node_capacity < len(self.overflow):
            self.overflow[slot - self.spad_node_capacity] = node
        else:
            raise CapacityError("hash table overflow buffer exhausted")

    def node_at(self, slot: int) -> Tuple:
        if slot < self.spad_node_capacity:
            return self.nodes[slot]
        return self.overflow[slot - self.spad_node_capacity]

    def contents(self) -> List[Tuple[int, object]]:
        """All (key, payload) pairs reachable from the bucket heads."""
        out = []
        for bucket in range(self.n_buckets):
            ptr = self.heads[bucket]
            while ptr != NULL:
                key, payload, nxt = self.node_at(ptr)
                out.append((key, payload))
                ptr = nxt
        return out

    # -- build pipeline (fig. 6c + fig. 7a) -------------------------------------

    def build_graph(self, pairs: Sequence[Tuple[int, object]]) -> Graph:
        """Lower the lock-free CAS build to a tile graph.

        Thread record evolution::

            (key, payload)                          source
            (key, payload, bucket)                  hash map
            (key, payload, bucket, slot)            stamp (slot reservation)
            (key, payload, bucket, slot, head)      head gather   <- loop entry
            ... node scatter to SRAM or DRAM overflow (by slot)
            (key, payload, bucket, slot, head, old) CAS on bucket head
            old == head ? done : recirculate with refreshed head
        """
        cap = self.spad_node_capacity
        g = Graph("ht_build")
        src = g.add(SourceTile("src", list(pairs)))
        # Every pure callable below is an Expr (batch-compilable in the
        # vector backend); only the CAS rmw closure stays legacy — an
        # atomic update is not a pure expression.
        hashm = g.add(MapTile(
            "hash", Tup((Field(0), Field(1),
                         bucket_expr(Field(0), self.n_buckets)))))
        stamp = g.add(StampTile("stamp", start=self.next_slot))
        entry = g.add(MergeTile("entry"))
        head_rd = g.add(ScratchpadTile("head_rd", self.spad, [PortConfig(
            mode="read", region=self.heads, addr=Field(2),
            combine=Tup((Field(0), Field(1), Field(2), Field(3), Arg(1))))]))
        route = g.add(FilterTile("route", Field(3) < cap))
        node_wr = g.add(ScratchpadTile("node_wr", self.spad, [PortConfig(
            mode="write", region=self.nodes, addr=Field(3),
            value=Tup((Field(0), Field(1), Field(4))),
            combine=Arg(0))]))
        ovf_wr = g.add(DramTile("ovf_wr", self.dram, [PortConfig(
            mode="write", region=self.overflow, addr=Field(3) - cap,
            value=Tup((Field(0), Field(1), Field(4))),
            combine=Arg(0))]))
        rejoin = g.add(MergeTile("rejoin"))
        head_cas = g.add(ScratchpadTile("head_cas", self.spad, [PortConfig(
            mode="rmw", region=self.heads, addr=Field(2),
            rmw=cas(expected_of=lambda r: r[4], new_of=lambda r: r[3]),
            combine=Concat(Arg(0), Tup((Arg(1),))))]))
        ok = g.add(FilterTile("ok", Field(5).eq(Field(4))))
        retry = g.add(MapTile(
            "retry", Tup((Field(0), Field(1), Field(2), Field(3)))))
        done = g.add(SinkTile("done"))

        g.connect(src, hashm)
        g.connect(hashm, stamp)
        g.connect(stamp, entry)
        g.connect(entry, head_rd)
        g.connect(head_rd, route)
        g.connect(route, node_wr, producer_port=0)
        g.connect(route, ovf_wr, producer_port=1)
        g.connect(node_wr, rejoin)
        g.connect(rejoin, head_cas)
        g.connect(ovf_wr, rejoin)
        g.connect(head_cas, ok)
        g.connect(ok, done, producer_port=0)
        g.connect(ok, retry, producer_port=1)
        g.connect(retry, entry, priority=True)
        self.next_slot += len(pairs)
        return g

    # -- probe pipeline (fig. 6a + fig. 7a) --------------------------------------

    def probe_graph(self, queries: Sequence[Tuple[int, int]],
                    emit_all: bool = True) -> Graph:
        """Lower the parallel probe to a tile graph.

        ``queries`` is a sequence of ``(query_id, key)``.  With
        ``emit_all`` every matching node is emitted (join semantics);
        otherwise threads exit on first match (fig. 6a's lookup).
        Hit records are ``(query_id, key, payload)``; misses reach the
        ``misses`` sink as ``(query_id, key, ptr)``.
        """
        cap = self.spad_node_capacity
        g = Graph("ht_probe")
        src = g.add(SourceTile("src", list(queries)))
        # Probe-side callables are all Exprs: the whole recirculating
        # pipeline batch-compiles inside lowered windows.
        node_combine = Tup((Field(0), Field(1),
                            Field(0, arg=1), Field(1, arg=1), Field(2, arg=1)))
        head_rd = g.add(ScratchpadTile("head_rd", self.spad, [PortConfig(
            mode="read", region=self.heads,
            addr=bucket_expr(Field(1), self.n_buckets),
            combine=Tup((Field(0), Field(1), Arg(1))))]))
        entry = g.add(MergeTile("entry"))
        nullchk = g.add(FilterTile("nullchk", Field(2).eq(NULL)))
        route = g.add(FilterTile("route", Field(2) < cap))
        # Gather the node from SRAM or the DRAM overflow buffer.
        node_rd = g.add(ScratchpadTile("node_rd", self.spad, [PortConfig(
            mode="read", region=self.nodes, addr=Field(2),
            combine=node_combine)]))
        ovf_rd = g.add(DramTile("ovf_rd", self.dram, [PortConfig(
            mode="read", region=self.overflow, addr=Field(2) - cap,
            combine=node_combine)]))
        rejoin = g.add(MergeTile("rejoin"))
        match = g.add(FilterTile("match", Field(2).eq(Field(1))))
        hits = g.add(SinkTile("hits"))
        misses = g.add(SinkTile("misses"))
        advance = g.add(MapTile("advance", Tup((Field(0), Field(1),
                                                Field(4)))))

        g.connect(src, head_rd)
        g.connect(head_rd, entry)
        g.connect(entry, nullchk)
        g.connect(nullchk, misses, producer_port=0)
        g.connect(nullchk, route, producer_port=1)
        g.connect(route, node_rd, producer_port=0)
        g.connect(route, ovf_rd, producer_port=1)
        g.connect(node_rd, rejoin)
        g.connect(rejoin, match)
        g.connect(ovf_rd, rejoin)

        if emit_all:
            # Join semantics: a matching thread both emits a hit record and
            # keeps walking the chain for duplicate keys.  A copy tile forks
            # the matched stream; one side projects the payload out, the
            # other advances to the next node and recirculates alongside
            # the mismatching threads.
            dup = g.add(CopyTile("dup"))
            emit = g.add(MapTile("emit", Tup((Field(0), Field(1),
                                              Field(3)))))
            cont = g.add(MapTile("cont", Tup((Field(0), Field(1),
                                              Field(4)))))
            g.connect(match, dup, producer_port=0)
            g.connect(dup, emit, producer_port=0)
            g.connect(emit, hits)
            g.connect(dup, cont, producer_port=1)
            g.connect(cont, entry, priority=True)
            g.connect(match, advance, producer_port=1)
            g.connect(advance, entry, priority=True)
        else:
            emit = g.add(MapTile("emit", Tup((Field(0), Field(1),
                                              Field(3)))))
            g.connect(match, emit, producer_port=0)
            g.connect(emit, hits)
            g.connect(match, advance, producer_port=1)
            g.connect(advance, entry, priority=True)
        return g
