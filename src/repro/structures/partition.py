"""Radix hash partitioning to DRAM (§IV-A, fig. 7b).

Hash joins first partition both tables on the low-radix bits of the join
key's hash so each partition's hash table fits on-chip.  Partitions are
linked lists of fixed-size *blocks* in DRAM — an array of records per node
— so partition read-back is dense even though partition writes are sparse.

On-chip scratchpads hold per-partition metadata: the head block pointer and
the record count within the head block, packed into one entry so a single
atomic fetch-and-add returns a consistent ``(head, count)`` snapshot.  The
insert dataflow then routes on the count:

* ``count <  block_size`` — free slot: scatter the record to DRAM at
  ``(head, count)``;
* ``count == block_size`` — this thread is first to see the full block: it
  allocates a fresh block, links it to the old head, and resets the
  metadata (the paper's CAS prepend; exactly one thread per fill sees this
  count, so the prepend cannot race);
* ``count >  block_size`` — another thread is mid-allocation: recirculate
  and retry, bypassed by threads with available space.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import CapacityError
from repro.dataflow import (
    FilterTile,
    Graph,
    MapTile,
    MergeTile,
    SinkTile,
    SourceTile,
)
from repro.memory import (
    DramMemory,
    DramTile,
    PortConfig,
    ScratchpadMemory,
    ScratchpadTile,
)
from repro.dataflow.expr import Arg, Field, Tup, radix_expr
from repro.structures.common import NULL, StructureEvents
from repro.structures.hashing import is_power_of_two, radix_of

#: Records per partition block (sized so a block read masks DRAM latency).
DEFAULT_BLOCK_SIZE = 64


class RadixPartitioner:
    """Functional radix partitioner with hardware-event accounting."""

    def __init__(self, n_partitions: int,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 events: Optional[StructureEvents] = None):
        if not is_power_of_two(n_partitions):
            raise ValueError("n_partitions must be a power of two")
        self.n_partitions = n_partitions
        self.block_size = block_size
        self.events = events if events is not None else StructureEvents()
        # Per-partition: list of blocks, each a list of records (newest first).
        self._blocks: List[List[List]] = [[] for _ in range(n_partitions)]

    def insert(self, key: int, record) -> int:
        """Scatter one record; returns its partition index."""
        part = radix_of(key, self.n_partitions)
        blocks = self._blocks[part]
        self.events.rmw_ops += 1          # FAA on the metadata entry
        if not blocks or len(blocks[0]) >= self.block_size:
            blocks.insert(0, [])          # block allocation + prepend
            self.events.dram_write_bytes += 4   # block header (next ptr)
            self.events.spad_writes += 1        # metadata reset
        blocks[0].append(record)
        self.events.dram_write_bytes += _record_bytes(record)
        self.events.dram_sparse_accesses += 1   # scatter into partition
        self.events.records_processed += 1
        return part

    def partition(self, keyed_records: Iterable[Tuple[int, object]]) -> None:
        for key, record in keyed_records:
            self.insert(key, record)

    def read_partition(self, part: int) -> List:
        """Dense read-back of one partition (oldest-to-newest)."""
        out: List = []
        for block in reversed(self._blocks[part]):
            out.extend(block)
            self.events.dram_read_bytes += sum(_record_bytes(r) for r in block)
            self.events.dram_dense_accesses += 1
        return out

    def partitions(self) -> List[List]:
        """The full scatter set: every partition's dense read-back, in
        partition order, **empties included**.

        Always exactly ``n_partitions`` entries.  A radix bucket with zero
        rows yields a valid empty list — a shard planner fanning a query
        out over partitions must see the empty bucket (its shard job still
        participates in scatter/gather bookkeeping) rather than have it
        silently vanish from the scatter set.
        """
        return [self.read_partition(p) for p in range(self.n_partitions)]

    def sizes(self) -> List[int]:
        return [sum(len(b) for b in blocks) for blocks in self._blocks]

    def skew(self) -> float:
        """max/mean partition size — 1.0 is perfect balance."""
        sizes = self.sizes()
        total = sum(sizes)
        if total == 0:
            return 1.0
        return max(sizes) / (total / len(sizes))


def _record_bytes(record) -> int:
    n_fields = len(record) if isinstance(record, tuple) else 1
    return 4 * n_fields


class PartitionerDataflow:
    """Cycle-simulated partitioning pipeline (fig. 7b).

    Thread record evolution::

        (key, payload)                    source
        (key, payload, part)              radix hash
        (key, payload, part, head, count) FAA on metadata  <- loop entry
        count <  B : scatter to DRAM slot (head*B + count), done
        count == B : allocate block, link to old head, reset metadata,
                     scatter own record to slot 0 of the new block
        count >  B : strip to (key, payload, part) and recirculate
    """

    def __init__(self, n_partitions: int, block_size: int = 8,
                 max_blocks: int = 1 << 12, name: str = "part"):
        if not is_power_of_two(n_partitions):
            raise ValueError("n_partitions must be a power of two")
        self.n_partitions = n_partitions
        self.block_size = block_size
        self.max_blocks = max_blocks
        self.spad = ScratchpadMemory(f"{name}.spad")
        # Metadata entry: (head_block, count); count == block_size marks
        # "needs allocation" and is the initial state (no block yet).
        self.meta = self.spad.region("meta", n_partitions, 2,
                                     fill=(NULL, block_size))
        self.dram = DramMemory(f"{name}.dram")
        self.block_next = self.dram.region("block_next", max_blocks, 1,
                                           fill=NULL)
        self.block_recs = self.dram.region("block_recs",
                                           max_blocks * block_size, 2,
                                           fill=None)
        self._next_block = 0

    def _alloc_block(self) -> int:
        blk = self._next_block
        if blk >= self.max_blocks:
            raise CapacityError("partitioner block pool exhausted")
        self._next_block += 1
        return blk

    def build_graph(self, keyed_records: Sequence[Tuple[int, object]]) -> Graph:
        B = self.block_size

        def faa_meta(old, record):
            head, count = old
            return (head, count + 1), (head, count)

        def do_alloc(record):
            # (key, payload, part, head, count) with count == B.
            key, payload, part, head, __ = record
            blk = self._alloc_block()
            return (key, payload, part, head, blk)

        g = Graph("partition")
        src = g.add(SourceTile("src", list(keyed_records)))
        # Pure callables are Exprs (batch-compilable); the FAA/reset rmw
        # closures and the stateful block allocator stay legacy.
        scatter_addr = Field(3) * B + Field(4)
        scatter_value = Tup((Field(0), Field(1)))
        hashm = g.add(MapTile(
            "hash", Tup((Field(0), Field(1),
                         radix_expr(Field(0), self.n_partitions)))))
        entry = g.add(MergeTile("entry"))
        faa = g.add(ScratchpadTile("faa", self.spad, [PortConfig(
            mode="rmw", region=self.meta, addr=Field(2),
            rmw=faa_meta,
            combine=Tup((Field(0), Field(1), Field(2),
                         Field(0, arg=1), Field(1, arg=1))))]))
        has_room = g.add(FilterTile("has_room", Field(4) < B))
        scatter = g.add(DramTile("scatter", self.dram, [PortConfig(
            mode="write", region=self.block_recs,
            addr=scatter_addr,
            value=scatter_value,
            combine=Tup((Field(0),)))]))
        is_alloc = g.add(FilterTile("is_alloc", Field(4).eq(B)))
        alloc = g.add(MapTile("alloc", do_alloc))
        link = g.add(DramTile("link", self.dram, [PortConfig(
            mode="write", region=self.block_next, addr=Field(4),
            value=Field(3),
            combine=Arg(0))]))
        # Reset metadata to (new_block, 1): the allocator thread claims slot 0.
        reset = g.add(ScratchpadTile("reset", self.spad, [PortConfig(
            mode="rmw", region=self.meta, addr=Field(2),
            rmw=lambda old, r: ((r[4], 1), old),
            combine=Tup((Field(0), Field(1), Field(2), Field(4), 0)))]))
        scatter0 = g.add(DramTile("scatter0", self.dram, [PortConfig(
            mode="write", region=self.block_recs,
            addr=scatter_addr,
            value=scatter_value,
            combine=Tup((Field(0),)))]))
        retry = g.add(MapTile("retry", Tup((Field(0), Field(1), Field(2)))))
        done = g.add(SinkTile("done"))
        done2 = g.add(SinkTile("done_alloc"))

        g.connect(src, hashm)
        g.connect(hashm, entry)
        g.connect(entry, faa)
        g.connect(faa, has_room)
        g.connect(has_room, scatter, producer_port=0)
        g.connect(scatter, done)
        g.connect(has_room, is_alloc, producer_port=1)
        g.connect(is_alloc, alloc, producer_port=0)
        g.connect(alloc, link)
        g.connect(link, reset)
        # After reset the record is (key, payload, part, new_block, 0):
        # scatter to slot 0 of the fresh block.
        g.connect(reset, scatter0)
        g.connect(scatter0, done2)
        g.connect(is_alloc, retry, producer_port=1)
        g.connect(retry, entry, priority=True)
        return g

    # -- read-back --------------------------------------------------------------

    def read_partition(self, part: int) -> List:
        """Walk one partition's block list, oldest block last-prepended first
        reversed back to insertion-friendly order."""
        head, count = self.meta[part]
        chunks = []
        blk = head
        n = count
        while blk != NULL:
            recs = [self.block_recs[blk * self.block_size + i]
                    for i in range(n)]
            chunks.append([r for r in recs if r is not None])
            blk = self.block_next[blk]
            n = self.block_size
        out: List = []
        for chunk in reversed(chunks):
            out.extend(chunk)
        return out

    def all_records(self) -> List:
        out = []
        for p in range(self.n_partitions):
            out.extend(self.read_partition(p))
        return out
