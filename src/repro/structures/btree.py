"""Immutable bulk-loaded B-trees (§IV-B, figs. 6b and 8).

Aurochs sidesteps tree rebalancing entirely: each tree is built once, into
a flat array, by sorting the leaves in O(n log n) and constructing the
internal levels bottom-up in linear time.  Internal nodes are blocks of up
to ``fanout`` child summaries ``(min_key, max_key, child)`` — the block
size masks DRAM latency when a search thread gathers a node.

Search is the paper's fork-based traversal: a thread holding ``(lo, hi)``
loads a node and *forks* one child thread per child whose key range
intersects the query — walking multiple search paths simultaneously.  For
a point query exactly one child matches and the fork degenerates to a
pointer chase.

:class:`ImmutableBTree` is the functional form (used by the LSM tree and
the analytical model); :class:`BTreeDataflow` lowers search onto the
cycle-simulated fabric with all node blocks in DRAM.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.dataflow import (
    FilterTile,
    ForkTile,
    Graph,
    MergeTile,
    SinkTile,
    SourceTile,
)
from repro.memory import DramMemory, DramTile, PortConfig
from repro.structures.common import StructureEvents

#: Default node fanout: one vector's worth of child summaries.
DEFAULT_FANOUT = 16

#: Words per internal child summary (min_key, max_key, child_index).
SUMMARY_WORDS = 3

#: Words per leaf entry (key, value).
LEAF_WORDS = 2


class ImmutableBTree:
    """A bulk-loaded, read-only B-tree over integer keys.

    Internal representation: ``leaves`` is the sorted ``(key, value)``
    array.  ``levels[0]`` holds one summary ``(min, max, block_index)`` per
    leaf block of ``fanout`` entries; ``levels[i]`` holds one summary per
    group of ``fanout`` level ``i-1`` summaries (``child`` = index of the
    group's first summary).  Construction stops once a level fits in a
    single node (≤ ``fanout`` summaries), which acts as the root.
    """

    def __init__(self, leaves: List[Tuple[int, object]],
                 levels: List[List[Tuple[int, int, int]]], fanout: int,
                 events: Optional[StructureEvents] = None):
        self._leaves = leaves
        self._levels = levels
        self.fanout = fanout
        self.events = events if events is not None else StructureEvents()

    # -- construction ----------------------------------------------------------

    @classmethod
    def bulk_load(cls, pairs: Iterable[Tuple[int, object]],
                  fanout: int = DEFAULT_FANOUT, presorted: bool = False,
                  events: Optional[StructureEvents] = None
                  ) -> "ImmutableBTree":
        """Build a tree: sort the leaves, then linear-time internal levels."""
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        leaves = list(pairs)
        ev = events if events is not None else StructureEvents()
        if not presorted:
            leaves.sort(key=lambda kv: kv[0])
        ev.dram_write_bytes += len(leaves) * LEAF_WORDS * 4
        ev.dram_dense_accesses += max(1, len(leaves) // fanout)
        levels: List[List[Tuple[int, int, int]]] = []
        if leaves:
            level = [
                (leaves[s][0], leaves[min(s + fanout, len(leaves)) - 1][0],
                 s // fanout)
                for s in range(0, len(leaves), fanout)
            ]
            levels.append(level)
            ev.dram_write_bytes += len(level) * SUMMARY_WORDS * 4
            while len(levels[-1]) > fanout:
                below = levels[-1]
                above = [
                    (below[s][0], below[min(s + fanout, len(below)) - 1][1], s)
                    for s in range(0, len(below), fanout)
                ]
                levels.append(above)
                ev.dram_write_bytes += len(above) * SUMMARY_WORDS * 4
        return cls(leaves, levels, fanout, ev)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def height(self) -> int:
        """Number of internal levels (node gathers per root-to-leaf walk)."""
        return len(self._levels)

    def min_key(self) -> Optional[int]:
        return self._leaves[0][0] if self._leaves else None

    def max_key(self) -> Optional[int]:
        return self._leaves[-1][0] if self._leaves else None

    def leaves(self) -> List[Tuple[int, object]]:
        """The sorted leaf array (consumed by LSM merges)."""
        return self._leaves

    def search(self, key: int) -> List:
        """Return all values stored under ``key``."""
        return [v for __, v in self.range_query(key, key)]

    def range_query(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """All ``(key, value)`` pairs with ``lo <= key <= hi``, in key order.

        Binary-searches the leaf array (the functional equivalent of the
        descent) while charging the DRAM gathers a dataflow traversal of
        the internal levels would perform.
        """
        if not self._leaves or lo > hi:
            return []
        self.events.dram_read_bytes += (
            self.height * self.fanout * SUMMARY_WORDS * 4
        )
        self.events.dram_sparse_accesses += self.height
        start = bisect.bisect_left(self._leaves, (lo,),
                                   key=lambda kv: (kv[0],))
        out: List[Tuple[int, object]] = []
        i = start
        while i < len(self._leaves) and self._leaves[i][0] <= hi:
            out.append(self._leaves[i])
            i += 1
        n_blocks = max(1, (len(out) + self.fanout - 1) // self.fanout)
        self.events.dram_read_bytes += n_blocks * self.fanout * LEAF_WORDS * 4
        self.events.dram_dense_accesses += n_blocks
        self.events.records_processed += 1
        return out

    def search_levels(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """Range search by literally descending the summary levels.

        Slower than :meth:`range_query` but exercises the exact structure
        the dataflow traversal uses — tests cross-validate the two.
        """
        if not self._leaves or lo > hi:
            return []
        frontier = [s for s in self._levels[-1] if s[0] <= hi and s[1] >= lo]
        for lvl in range(len(self._levels) - 1, 0, -1):
            below = self._levels[lvl - 1]
            nxt = []
            for __, __, start in frontier:
                for s in below[start:start + self.fanout]:
                    if s[0] <= hi and s[1] >= lo:
                        nxt.append(s)
            frontier = nxt
        out = []
        for __, __, block in frontier:
            start = block * self.fanout
            for kv in self._leaves[start:start + self.fanout]:
                if lo <= kv[0] <= hi:
                    out.append(kv)
        return out


class BTreeDataflow:
    """Fork-based B-tree range search on the cycle-simulated fabric.

    All node blocks live in one DRAM region; each entry is a whole node:
    ``('I', [(min, max, child_global_idx), ...])`` for internal nodes or
    ``('L', [(key, value), ...])`` for leaf blocks.  A search thread
    ``(qid, lo, hi, node_idx)`` gathers its node, forks children whose
    ranges intersect ``[lo, hi]``, and recirculates; leaf threads emit
    ``(qid, key, value)`` matches.
    """

    def __init__(self, tree: ImmutableBTree, name: str = "btree"):
        self.tree = tree
        self.dram = DramMemory(f"{name}.dram")
        self._nodes: List = []
        self.root_idx = self._flatten(tree)
        self.nodes = self.dram.region("nodes", max(1, len(self._nodes)),
                                      tree.fanout * SUMMARY_WORDS, fill=None)
        for i, node in enumerate(self._nodes):
            self.nodes[i] = node

    def _flatten(self, tree: ImmutableBTree) -> int:
        """Lay leaf blocks then each level's nodes in one array; returns root."""
        leaves = tree.leaves()
        fanout = tree.fanout
        if not leaves:
            self._nodes.append(("L", []))
            return 0
        self._nodes.extend(
            ("L", leaves[s:s + fanout]) for s in range(0, len(leaves), fanout)
        )
        level_bases: List[int] = []
        for i, level in enumerate(tree._levels):
            base = len(self._nodes)
            level_bases.append(base)
            for s in range(0, len(level), fanout):
                group = level[s:s + fanout]
                if i == 0:
                    # Level-0 summaries point at leaf blocks (global base 0).
                    entries = [(mn, mx, blk) for mn, mx, blk in group]
                else:
                    # Child = the level i-1 node holding summary index `ci`.
                    entries = [(mn, mx, level_bases[i - 1] + ci // fanout)
                               for mn, mx, ci in group]
                self._nodes.append(("I", entries))
        return len(self._nodes) - 1

    # -- functional check against the flattened layout --------------------------

    def search_flat(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        """Walk the flattened node array directly (layout validation)."""
        out: List[Tuple[int, object]] = []
        stack = [self.root_idx]
        while stack:
            kind, content = self._nodes[stack.pop()]
            if kind == "L":
                out.extend((k, v) for k, v in content if lo <= k <= hi)
            else:
                stack.extend(child for mn, mx, child in content
                             if mn <= hi and mx >= lo)
        return sorted(out)

    # -- dataflow ----------------------------------------------------------------

    def search_graph(self, queries: Sequence[Tuple[int, int, int]]) -> Graph:
        """Lower range search to a tile graph.

        ``queries`` is ``(qid, lo, hi)``; results arrive at the ``hits``
        sink as ``(qid, key, value)``.
        """

        def fork_children(record):
            qid, lo, hi, __, content = record
            return [(qid, lo, hi, child) for mn, mx, child in content
                    if mn <= hi and mx >= lo]

        def fork_leaves(record):
            qid, lo, hi, __, content = record
            return [(qid, k, v) for k, v in content if lo <= k <= hi]

        g = Graph("btree_search")
        src = g.add(SourceTile(
            "src", [(qid, lo, hi, self.root_idx) for qid, lo, hi in queries]))
        entry = g.add(MergeTile("entry"))
        gather = g.add(DramTile("gather", self.dram, [PortConfig(
            mode="read", region=self.nodes, addr=lambda r: r[3],
            combine=lambda r, node: (r[0], r[1], r[2], node[0], node[1]))]))
        is_leaf = g.add(FilterTile("is_leaf", lambda r: r[3] == "L"))
        emit = g.add(ForkTile("emit", fork_leaves))
        descend = g.add(ForkTile("descend", fork_children))
        hits = g.add(SinkTile("hits"))

        g.connect(src, entry)
        g.connect(entry, gather)
        g.connect(gather, is_leaf)
        g.connect(is_leaf, emit, producer_port=0)
        g.connect(emit, hits)
        g.connect(is_leaf, descend, producer_port=1)
        g.connect(descend, entry, priority=True)
        return g
