"""DRAM spill queues for diverged search threads (§IV-C).

Tree traversals fork data-dependently; a whole-extent window query can
momentarily hold far more live threads than scratchpad queues can buffer.
"To account for limited queue size in scratchpads, we spill search
threads to a queue in DRAM" — :class:`SpillTile` models exactly that: an
on-chip FIFO of bounded capacity backed by an unbounded DRAM queue with
DRAM round-trip latency.  Because Aurochs threads are order-free, spilled
threads may re-enter in any order without affecting results.

§IV-C also parallelizes window queries "by splitting up the search
rectangle and performing multiple smaller window queries in parallel";
:func:`split_window` provides that decomposition.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

from repro.dataflow.record import LANES
from repro.dataflow.stats import DramStats
from repro.dataflow.tile import Packer, Tile
from repro.memory.dram import DRAM_LATENCY
from repro.observability.events import StallReason

Rect = Tuple[int, int, int, int]


class SpillTile(Tile):
    """Bounded on-chip thread queue with DRAM overflow.

    Records that do not fit in the on-chip FIFO are written to a DRAM
    queue and become available again after ``dram_latency`` cycles; the
    on-chip side always drains first.  ``spilled`` counts overflow events
    for experiments.
    """

    def __init__(self, name: str, on_chip_capacity: int = 4 * LANES,
                 dram_latency: int = DRAM_LATENCY,
                 record_words: int = 4):
        super().__init__(name)
        self.on_chip_capacity = on_chip_capacity
        self.dram_latency = dram_latency
        self.record_words = record_words
        self._onchip: deque = deque()
        self._dram: deque = deque()    # (ready_cycle, record)
        self._packer = Packer(None)
        self.spilled = 0
        self.dram_stats = DramStats()

    def attach_output(self, stream, port: int = 0) -> None:  # type: ignore[override]
        stream.producer = self
        self.outputs.append(stream)
        self._packer.stream = stream

    def tick(self, cycle: int) -> bool:
        moved = False
        # Returning spilled threads become visible after the DRAM round
        # trip; they refill the on-chip queue as space opens up.
        while (self._dram and self._dram[0][0] <= cycle
               and len(self._onchip) < self.on_chip_capacity):
            __, record = self._dram.popleft()
            self._onchip.append(record)
            self.dram_stats.read_bytes += self.record_words * 4
            self.dram_stats.dense_bursts += 1
            moved = True
        # Accept one input vector; overflow goes to DRAM.
        stream = self.inputs[0] if self.inputs else None
        consumed = False
        if stream is not None and stream.can_pop():
            for record in stream.pop():
                if len(self._onchip) < self.on_chip_capacity:
                    self._onchip.append(record)
                else:
                    self._dram.append((cycle + self.dram_latency, record))
                    self.spilled += 1
                    self.dram_stats.write_bytes += self.record_words * 4
                    self.dram_stats.dense_bursts += 1
            consumed = True
            moved = True
        # Emit up to one vector from the on-chip queue.
        while self._onchip and self._packer.has_room(1):
            self._packer.push(self._onchip.popleft())
            if len(self._packer.pending) >= LANES:
                break
        if self._packer.flush(self.stats, force_partial=not consumed):
            moved = True
        if moved:
            self.stats.busy_cycles += 1
        else:
            self.stats.idle_cycles += 1
        self.maybe_close()
        return moved

    def idle(self) -> bool:
        return (not self._onchip and not self._dram
                and self._packer.empty())

    def stall_reason(self) -> StallReason:
        if self._dram and not self._onchip and self._packer.empty():
            # Everything live is spilled: waiting out the DRAM round trip.
            return StallReason.DRAM_WAIT
        return super().stall_reason()

    def sched_poll(self, cycle: int) -> tuple:
        stream = self.inputs[0] if self.inputs else None
        if stream is not None and stream.can_pop():
            return ("ready",)
        if self._onchip and self._packer.has_room(1):
            return ("ready",)           # on-chip records can move to the packer
        packer = self._packer
        if packer.pending and (packer.stream is None
                               or packer.stream.can_push()):
            return ("ready",)
        if self._dram and len(self._onchip) < self.on_chip_capacity:
            head = self._dram[0][0]
            if head <= cycle:
                return ("ready",)       # an overdue retire is movement
            return ("timer", head, "idle_cycles")
        return ("sleep", "idle_cycles")


def split_window(query: Rect, n_streams: int) -> List[Rect]:
    """Split a window query into ``n_streams`` disjoint sub-rectangles.

    Cuts along the longer axis repeatedly; the union of the parts equals
    the original rectangle, so running the parts on parallel streams and
    concatenating results reproduces the single query.
    """
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    parts = [query]
    while len(parts) < n_streams:
        # Split the widest remaining part.
        parts.sort(key=lambda r: max(r[2] - r[0], r[3] - r[1]),
                   reverse=True)
        x0, y0, x1, y1 = parts.pop(0)
        if x1 - x0 >= y1 - y0:
            if x1 == x0:
                parts.append((x0, y0, x1, y1))
                break
            mid = (x0 + x1) // 2
            parts.append((x0, y0, mid, y1))
            parts.append((mid + 1, y0, x1, y1))
        else:
            if y1 == y0:
                parts.append((x0, y0, x1, y1))
                break
            mid = (y0 + y1) // 2
            parts.append((x0, y0, x1, mid))
            parts.append((x0, mid + 1, x1, y1))
    return parts
