"""The serving workload catalog: what a request actually executes.

Three job families, mirroring the paper's deployment mix:

* **sim jobs** — cycle-level dataflow graphs run on a fabric replica's
  :class:`~repro.dataflow.engine.Engine`.  These are the jobs the fault
  injector can corrupt, stall, and slow down, and the jobs cooperative
  cancellation stops mid-flight; their service time is the simulated cycle
  count, so latency under faults is organic (a DRAM spike literally makes
  the run longer).
* **query jobs** — the rideshare queries Q1–Q9 over a small shared
  dataset, priced into Aurochs cycles by the analytical
  :class:`~repro.perf.cost_model.CostModel` (the paper's §V-B
  methodology).  Deadlines are enforced at operator-trace boundaries.
* **streaming jobs** — a self-contained
  :class:`~repro.workloads.streaming.StreamingAnalytics` ingest +
  standing-query evaluation, also cost-model priced.

Every job is deterministic and *golden-checkable*: executing it with no
faults and no deadline yields a reference ``(cycles, digest)`` that the
chaos harness compares every successful serve against — the "no wrong
results ever" invariant is literal equality, not a statistic.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.dataflow import (
    Engine,
    FilterTile,
    Graph,
    MapTile,
    MergeTile,
    SinkTile,
    SourceTile,
)
from repro.errors import DeadlineExceeded, FaultError, ReproError
from repro.memory import DramMemory
from repro.memory.dram import DramTile
from repro.memory.spad_tile import PortConfig
from repro.perf.cost_model import CostModel


@dataclass(frozen=True)
class Golden:
    """Reference outcome of a fault-free, deadline-free execution."""

    cycles: int
    digest: Tuple


class Job:
    """One executable catalog entry."""

    kind = "abstract"
    #: True for jobs the scatter/gather subsystem can fan out across
    #: replicas (see :mod:`repro.serving.shard`).
    shardable = False

    def __init__(self, name: str):
        self.name = name
        #: Set by :class:`_TracedJob` after a successful priced execution;
        #: harvested by the replica's plan cache.
        self.last_plan: Optional["LoweredPlan"] = None

    def execute(self, token=None, injector=None) -> Tuple[int, Tuple]:
        """Run the job; return ``(cycles_consumed, result_digest)``.

        Raises typed :class:`~repro.errors.ReproError` subclasses on
        faults, deadlines, and cancellation.
        """
        raise NotImplementedError

    def plan_key(self) -> Optional[Tuple]:
        """Cache key for the replica plan cache, or None if this job's
        execution cannot be replayed from a cached plan (sim jobs: the
        engine run *is* the service, and faults/cancellation act on it
        mid-flight)."""
        return None

    def fault_sites(self) -> Dict[str, List[str]]:
        """Injectable sites, in :func:`~repro.reliability.random_schedule`
        keyword form.  Empty for jobs the injector cannot reach."""
        return {}


class SimJob(Job):
    """A cycle-level graph run on a replica's engine."""

    kind = "sim"

    def __init__(self, name: str, build: Callable[[], Graph],
                 sites: Optional[Dict[str, List[str]]] = None,
                 max_cycles: int = 2_000_000, deadlock_window: int = 5_000,
                 scheduler: str = "event"):
        super().__init__(name)
        self.build = build
        self._sites = dict(sites or {})
        self.max_cycles = max_cycles
        # Generous enough that injected stalls (<= a few hundred cycles)
        # surface as latency, not watchdog trips.
        self.deadlock_window = deadlock_window
        # Engine scheduler for this job's runs.  "vector" keeps results
        # bit-identical (fault-injected and deadline-bound runs fall back
        # to per-cycle ticking automatically) but simulates saturated
        # fabrics faster.
        self.scheduler = scheduler

    def fault_sites(self) -> Dict[str, List[str]]:
        return dict(self._sites)

    def execute(self, token=None, injector=None) -> Tuple[int, Tuple]:
        graph = self.build()         # fresh graph: no cross-request state
        engine = Engine(graph, max_cycles=self.max_cycles,
                        deadlock_window=self.deadlock_window,
                        injector=injector, cancel=token,
                        scheduler=self.scheduler)
        try:
            stats = engine.run()
        except ReproError:
            raise
        except Exception as err:
            # Fault containment: injected corruption can garble a payload
            # *before* end-of-run checksum detection — e.g. a flipped DRAM
            # address indexing out of range.  Under an armed injector that
            # crash IS the fault manifesting, so surface it typed; with no
            # injector it is a real bug and must propagate.
            if injector is None:
                raise
            raise FaultError(
                f"sim job {self.name!r} crashed under fault injection: "
                f"{type(err).__name__}: {err}",
                kind="contained_crash", site=self.name,
                detail=str(err)) from err
        return stats.cycles, self._digest(graph)

    @staticmethod
    def _digest(graph: Graph) -> Tuple:
        """Order-independent sink contents, per sink tile."""
        return tuple(
            (tile.name, tuple(sorted(tile.records)))
            for tile in graph.tiles if isinstance(tile, SinkTile))


#: Configuration component of every plan-cache key.  Bump when the
#: pricing pipeline changes (cost model, operator policy) so stale plans
#: from an old configuration can never be replayed against a new one.
_PLAN_CONFIG = ("cost_model=aurochs_v1", "policy=aurochs")


@dataclass(frozen=True)
class LoweredPlan:
    """A lowered, cost-model-priced execution plan.

    Captures everything deadline enforcement and settlement need from a
    traced execution: the operator sequence, the cumulative cycle cost
    after each operator, and the (deterministic) result digest.  Replaying
    a plan through :func:`settle_plan` is bit-identical to re-executing
    the job — same cycles, same digest, same :class:`DeadlineExceeded` at
    the same operator boundary.
    """

    ops: Tuple[str, ...]
    cum_cycles: Tuple[float, ...]
    digest: Tuple

    def replay(self, name: str, token) -> Tuple[int, Tuple]:
        return settle_plan(name, self.ops, self.cum_cycles, self.digest,
                           token)


def settle_plan(name: str, ops: Tuple[str, ...],
                cum_cycles: Tuple[float, ...], digest: Tuple,
                token) -> Tuple[int, Tuple]:
    """Enforce the deadline at operator boundaries and settle the total.

    Shared by fresh executions (:meth:`_TracedJob._settle`) and plan-cache
    replays so both paths raise/return identically.
    """
    budget = None if token is None else token.deadline_cycle
    if budget is not None:
        for op, spent in zip(ops, cum_cycles):
            if spent > budget:
                raise DeadlineExceeded(
                    f"query {name!r} exceeded its {budget}-cycle "
                    f"budget at operator {op!r}",
                    tenant=getattr(token, "tenant", ""), query=name,
                    request_id=getattr(token, "request_id", None),
                    deadline=budget, cycle=budget)
    spent = cum_cycles[-1] if cum_cycles else 0.0
    if token is not None:
        token.check(int(spent))  # honor external cancellation too
    return max(1, int(round(spent))), digest


class _TracedJob(Job):
    """Shared deadline/pricing logic for cost-model-priced jobs."""

    def _settle(self, ctx, digest: Tuple, token) -> Tuple[int, Tuple]:
        """Price the traced execution; enforce the deadline at operator
        boundaries (the analytical analogue of the engine's per-cycle
        stream-end check)."""
        model = CostModel()
        ops = []
        cums = []
        spent = 0.0
        for trace in ctx.traces:
            spent += (model.event_cycles(trace.events,
                                         rows=trace.rows_in).cycles
                      + model.stage_overhead_cycles)
            ops.append(trace.op)
            cums.append(spent)
        self.last_plan = LoweredPlan(tuple(ops), tuple(cums), digest)
        return settle_plan(self.name, self.last_plan.ops,
                           self.last_plan.cum_cycles, digest, token)


class QueryJob(_TracedJob):
    """One rideshare query (Q1–Q9) over the shared serving dataset."""

    kind = "query"

    def __init__(self, name: str, data_fn: Callable[[], object],
                 dataset_key: Optional[Tuple] = None):
        super().__init__(name)
        self._data_fn = data_fn
        #: Identity of the dataset ``data_fn`` yields (e.g. generator seed
        #: + config).  None disables plan caching: with an anonymous data
        #: source the cache cannot prove two executions see the same rows.
        self.dataset_key = dataset_key

    def plan_key(self) -> Optional[Tuple]:
        if self.dataset_key is None:
            return None
        return ("query", self.name, self.dataset_key, _PLAN_CONFIG)

    def execute(self, token=None, injector=None) -> Tuple[int, Tuple]:
        from repro.db import ExecutionContext
        from repro.workloads.queries import run_query
        ctx = ExecutionContext()
        table = run_query(self.name, self._data_fn(), ctx)
        digest = (table.name, tuple(sorted(tuple(r) for r in table.rows)))
        return self._settle(ctx, digest, token)


class StreamingJob(_TracedJob):
    """Self-contained streaming-analytics ingest + standing query."""

    kind = "streaming"

    def __init__(self, name: str, n_events: int = 240, window: int = 63):
        super().__init__(name)
        self.n_events = n_events
        self.window = window

    def plan_key(self) -> Optional[Tuple]:
        # Self-contained: the event stream is a pure function of
        # (n_events, window), so those parameters ARE the dataset digest.
        return ("streaming", self.name, self.n_events, self.window,
                _PLAN_CONFIG)

    def execute(self, token=None, injector=None) -> Tuple[int, Tuple]:
        from repro.db import ExecutionContext, Table
        from repro.db.operators import hash_group_by
        from repro.workloads.streaming import StreamingAnalytics
        table = Table.from_columns("events", time=[], zone=[], value=[])
        pipeline = StreamingAnalytics(table, "time", index_batch=64)
        pipeline.ingest([(t, t % 4, float(t)) for t in range(self.n_events)])
        pipeline.register(
            "by_zone", window=self.window,
            body=lambda window, ctx: hash_group_by(
                window, ["zone"], {"n": ("count", None),
                                   "total": ("sum", "value")}, ctx))
        ctx = ExecutionContext()
        result = pipeline.evaluate("by_zone", ctx)
        digest = (result.name, tuple(sorted(tuple(r) for r in result.rows)))
        return self._settle(ctx, digest, token)


class ShardedJoinJob(_TracedJob):
    """A partition-wise shardable hash join over two catalog tables.

    This is the job family the scatter/gather subsystem
    (:mod:`repro.serving.shard`) fans out: the join key's radix hash
    (§IV-A — the paper's own partition boundary) splits both tables into K
    disjoint shards, partition *k* of the left side joins exactly
    partition *k* of the right side, and the union of shard outputs is
    row-for-row the unsharded join.  Executed whole (this ``execute``) it
    is the golden reference a merged scatter/gather run must equal
    bit-for-bit.
    """

    kind = "join"
    shardable = True

    def __init__(self, name: str, data_fn: Callable[[], object], *,
                 left: str, right: str, key: str,
                 dataset_key: Optional[Tuple] = None):
        super().__init__(name)
        self._data_fn = data_fn
        self.left = left
        self.right = right
        self.key = key
        self.dataset_key = dataset_key

    def tables(self) -> Tuple:
        data = self._data_fn()
        return data.tables[self.left], data.tables[self.right]

    def plan_key(self) -> Optional[Tuple]:
        if self.dataset_key is None:
            return None
        return ("join", self.name, self.left, self.right, self.key,
                self.dataset_key, _PLAN_CONFIG)

    def execute(self, token=None, injector=None) -> Tuple[int, Tuple]:
        from repro.db import ExecutionContext
        from repro.db.operators.join import hash_join
        left, right = self.tables()
        ctx = ExecutionContext()
        out = hash_join(left, right, self.key, self.key, ctx,
                        name=self.name)
        digest = _rows_digest(self.name, out.rows)
        return self._settle(ctx, digest, token)

    def merge_digests(self, shard_digests: List[Tuple]) -> Tuple:
        """Deterministic gather: union the shard row sets, re-digest.

        Because the radix partitions are disjoint on the join key, every
        output row belongs to exactly one shard, so the merged digest of a
        *complete* shard set equals the unsharded golden digest exactly —
        the serving runtime asserts that equality on every sharded serve.
        """
        rows: List[Tuple] = []
        for __, shard_rows in shard_digests:
            rows.extend(shard_rows)
        return (self.name, tuple(sorted(rows)))

    def make_shard(self, index: int, n_shards: int, left_rows: List,
                   right_rows: List) -> "JoinShardJob":
        """Shard-job factory — subclasses substitute their own shard kind."""
        return JoinShardJob(self, index, n_shards, left_rows, right_rows)


class JoinShardJob(_TracedJob):
    """One fault-containment domain of a :class:`ShardedJoinJob`.

    Holds partition ``index`` of K for both sides of the parent join —
    possibly zero rows: an empty radix bucket is still a valid shard job
    that participates in scatter/gather bookkeeping.  Cost-model priced
    like every traced job, so a shard's service time scales with its
    partition, not the whole dataset.
    """

    kind = "join_shard"

    def __init__(self, parent: ShardedJoinJob, index: int, n_shards: int,
                 left_rows: List, right_rows: List):
        super().__init__(f"{parent.name}#s{index}of{n_shards}")
        self.parent = parent
        self.index = index
        self.n_shards = n_shards
        self._left_rows = list(left_rows)
        self._right_rows = list(right_rows)
        #: Input rows this shard covers — the coverage-fraction weight.
        self.rows_in = len(self._left_rows) + len(self._right_rows)

    def plan_key(self) -> Optional[Tuple]:
        parent_key = self.parent.plan_key()
        if parent_key is None:
            return None
        return ("join_shard", self.index, self.n_shards) + parent_key

    def execute(self, token=None, injector=None) -> Tuple[int, Tuple]:
        from repro.db import ExecutionContext, Table
        from repro.db.operators.join import hash_join
        left, right = self.parent.tables()
        lshard = Table(left.name, left.schema, self._left_rows)
        rshard = Table(right.name, right.schema, self._right_rows)
        ctx = ExecutionContext()
        out = hash_join(lshard, rshard, self.parent.key, self.parent.key,
                        ctx, name=self.name)
        digest = _rows_digest(self.name, out.rows)
        return self._settle(ctx, digest, token)


class PredicatedJoinJob(ShardedJoinJob):
    """A shardable join narrowed by a canonical :class:`Predicate`.

    The predicate splits at the join key: the *key constraint* selects
    which radix partitions can hold matching rows (the partition set the
    semantic cache reasons about), and the *class constraint* — everything
    else — is what each cached fragment is keyed by.  A fragment is one
    partition's join output filtered by the class constraint only; the
    gather applies the key constraint when merging, so the same fragments
    answer every query in the class regardless of its key range.
    """

    kind = "pjoin"
    #: Marks jobs the semantic partition cache can serve
    #: (:mod:`repro.serving.partition_cache`).
    cacheable = True

    def __init__(self, name: str, data_fn: Callable[[], object], *,
                 left: str, right: str, key: str, predicate,
                 dataset_key: Optional[Tuple] = None):
        super().__init__(name, data_fn, left=left, right=right, key=key,
                         dataset_key=dataset_key)
        self.predicate = predicate
        self.key_pred, self.class_pred = predicate.split(key)

    def plan_key(self) -> Optional[Tuple]:
        base = super().plan_key()
        if base is None:
            return None
        return base + ("pred", self.predicate.key())

    def joined_schema(self):
        left, right = self.tables()
        return left.schema.concat(right.schema, "r_")

    def partition_set(self, n_partitions: int) -> Tuple[int, ...]:
        """Radix partitions this query's key constraint can touch."""
        from repro.db.lowering import partition_set_of
        return partition_set_of(self.key_pred, self.key, n_partitions)

    def execute(self, token=None, injector=None) -> Tuple[int, Tuple]:
        from repro.db import ExecutionContext
        from repro.db.operators import scan_filter
        from repro.db.operators.join import hash_join
        left, right = self.tables()
        ctx = ExecutionContext()
        out = hash_join(left, right, self.key, self.key, ctx,
                        name=f"{self.name}_join")
        out = scan_filter(out, self.predicate.evaluator(out.schema), ctx,
                          name=self.name)
        digest = _rows_digest(self.name, out.rows)
        return self._settle(ctx, digest, token)

    def make_shard(self, index: int, n_shards: int, left_rows: List,
                   right_rows: List) -> "FragmentJob":
        return FragmentJob(self, index, n_shards, left_rows, right_rows)

    def merge_digests(self, shard_digests: List[Tuple]) -> Tuple:
        """Gather class-level fragments, then apply the key constraint.

        Fragments are filtered by the class predicate only (so the cache
        can reuse them across key ranges); restricting the union to rows
        whose key satisfies the key predicate reproduces the unsharded
        predicated golden exactly, because radix partitions are disjoint
        on the key and the partition set covers every qualifying key.
        """
        # The evaluator is an Expr: one batch-compiled filter call per
        # fragment instead of a per-row closure call.
        keep = self.key_pred.evaluator(self.joined_schema())
        rows: List[Tuple] = []
        for __, frag_rows in shard_digests:
            rows.extend(keep.filter_batch(frag_rows))
        return (self.name, tuple(sorted(rows)))


class FragmentJob(JoinShardJob):
    """One partition's class-level result fragment.

    Join partition ``index``'s two sides, keep rows satisfying the parent's
    *class* predicate (the key predicate is deliberately NOT applied — see
    :meth:`PredicatedJoinJob.merge_digests`).  Its digest rows are exactly
    what the semantic partition cache stores and replays.
    """

    kind = "join_fragment"

    def execute(self, token=None, injector=None) -> Tuple[int, Tuple]:
        from repro.db import ExecutionContext, Table
        from repro.db.operators import scan_filter
        from repro.db.operators.join import hash_join
        left, right = self.parent.tables()
        lshard = Table(left.name, left.schema, self._left_rows)
        rshard = Table(right.name, right.schema, self._right_rows)
        ctx = ExecutionContext()
        out = hash_join(lshard, rshard, self.parent.key, self.parent.key,
                        ctx, name=f"{self.name}_join")
        out = scan_filter(out, self.parent.class_pred.evaluator(out.schema),
                          ctx, name=self.name)
        digest = _rows_digest(self.name, out.rows)
        return self._settle(ctx, digest, token)


def _rows_digest(name: str, rows) -> Tuple:
    """Order-independent digest of a result row set."""
    return (name, tuple(sorted(tuple(r) for r in rows)))


class TaxiFlightJob(Job):
    """One NYC-taxi-style query flight over a live-ingested LSM dataset.

    The record layout is ``key = pickup zone`` (0..``n_zones``-1) and
    ``value = (trip_id, hour, dist_dm, fare_cents)`` — all integers, so
    digests are exact.  A flight range-scans its zone window on a pinned
    :class:`~repro.structures.lsm.LsmSnapshot`, filters by hour / trip
    distance / fare, and groups per zone into ``(zone, trips, fare_sum,
    dist_sum)`` rows.  Unlike every earlier job family the underlying data
    *changes between requests*: correctness is defined per snapshot
    version, which is why the digest embeds the version and the runtime
    checks against the golden *of the pinned version* rather than a single
    catalog-wide reference.

    ``dataset`` is duck-typed (anything with ``.key``, ``.events`` and
    ``.published()`` — in practice :class:`repro.serving.ingest.LiveDataset`)
    to keep the catalog importable without the ingest subsystem.
    """

    kind = "taxi"

    def __init__(self, name: str, dataset, *, zone_lo: int, zone_hi: int,
                 hour_lo: int = 0, hour_hi: int = 23,
                 max_dist_dm: Optional[int] = None,
                 min_fare_cents: Optional[int] = None):
        super().__init__(name)
        self.dataset = dataset
        self.zone_lo = zone_lo
        self.zone_hi = zone_hi
        self.hour_lo = hour_lo
        self.hour_hi = hour_hi
        self.max_dist_dm = max_dist_dm
        self.min_fare_cents = min_fare_cents
        #: The pinned snapshot a bound copy executes against (see
        #: :meth:`at`); the unbound catalog entry reads the latest
        #: published version at execution time.
        self._snapshot = None

    def at(self, snapshot) -> "TaxiFlightJob":
        """A shallow copy bound to one pinned snapshot version."""
        bound = copy.copy(self)
        bound._snapshot = snapshot
        bound.last_plan = None
        return bound

    @property
    def snapshot_version(self) -> Optional[int]:
        return None if self._snapshot is None else self._snapshot.version

    def plan_key(self) -> Optional[Tuple]:
        # Keyed on the snapshot version: a write changes the key, so a
        # cached plan can never replay a stale answer — it can only make
        # repeats of the same (flight, version) pair cheaper.
        if self._snapshot is None:
            return None
        return ("taxi", self.name, self.dataset.key,
                self._snapshot.version, _PLAN_CONFIG)

    def execute(self, token=None, injector=None) -> Tuple[int, Tuple]:
        snap = (self._snapshot if self._snapshot is not None
                else self.dataset.published())
        shared = self.dataset.events
        before = shared.asdict()
        scanned = snap.range_query(self.zone_lo, self.zone_hi)
        groups: Dict[int, List[int]] = {}
        for zone, value in scanned:
            trip_id, hour, dist_dm, fare_cents = value
            if not (self.hour_lo <= hour <= self.hour_hi):
                continue
            if self.max_dist_dm is not None and dist_dm > self.max_dist_dm:
                continue
            if (self.min_fare_cents is not None
                    and fare_cents < self.min_fare_cents):
                continue
            acc = groups.setdefault(zone, [0, 0, 0])
            acc[0] += 1
            acc[1] += fare_cents
            acc[2] += dist_dm
        rows = [(zone, n, fare, dist)
                for zone, (n, fare, dist) in groups.items()]
        digest = (self.name, snap.version,
                  tuple(sorted(tuple(r) for r in rows)))
        # Price the scan from the hardware events it charged to the
        # dataset's shared counters (the B-trees account their own DRAM
        # gathers; the group-by adds one record pass).
        from repro.structures.common import StructureEvents
        after = shared.asdict()
        delta = StructureEvents(**{k: after[k] - before[k] for k in after})
        delta.records_processed += len(scanned)
        delta.spad_reads += len(scanned)
        delta.spad_writes += len(rows)
        model = CostModel()
        spent = (model.event_cycles(delta, rows=len(scanned)).cycles
                 + model.stage_overhead_cycles)
        self.last_plan = LoweredPlan((f"{self.name}_scan",),
                                     (float(spent),), digest)
        return settle_plan(self.name, self.last_plan.ops,
                           self.last_plan.cum_cycles, digest, token)


#: The taxi query-flight catalog, in Zipf popularity-rank order: tourism
#: zone drill-downs (park ⊃ museum ⊃ theatre), commuter peaks, nightlife,
#: and a region ⊃ district ⊃ block hierarchy (SNIPPETS.md snippet 3).
TAXI_FLIGHT_SPECS = (
    ("taxi_tourism_park", dict(zone_lo=0, zone_hi=41)),
    ("taxi_commuter_am", dict(zone_lo=0, zone_hi=63, hour_lo=7, hour_hi=9)),
    ("taxi_tourism_museum", dict(zone_lo=8, zone_hi=23)),
    ("taxi_region", dict(zone_lo=0, zone_hi=63, max_dist_dm=80)),
    ("taxi_nightlife", dict(zone_lo=32, zone_hi=63, hour_lo=20, hour_hi=23)),
    ("taxi_commuter_pm", dict(zone_lo=0, zone_hi=63, hour_lo=16, hour_hi=19)),
    ("taxi_district", dict(zone_lo=16, zone_hi=47, max_dist_dm=80)),
    ("taxi_tourism_theatre", dict(zone_lo=12, zone_hi=17)),
    ("taxi_medical", dict(zone_lo=24, zone_hi=39, min_fare_cents=2500)),
    ("taxi_block", dict(zone_lo=24, zone_hi=31, max_dist_dm=80)),
)

TAXI_NAMES = tuple(spec[0] for spec in TAXI_FLIGHT_SPECS)


def taxi_flight_jobs(dataset) -> List[TaxiFlightJob]:
    """Instantiate the flight catalog over one live dataset."""
    return [TaxiFlightJob(name, dataset, **kwargs)
            for name, kwargs in TAXI_FLIGHT_SPECS]


# -- sim graph builders ----------------------------------------------------

def _map_graph(n: int = 192) -> Graph:
    """src -> map(double) -> sink; streams 'a' and 'b' (checksum sites)."""
    g = Graph("serve_map")
    src = g.add(SourceTile("src", [(i, i & 7) for i in range(n)]))
    m = g.add(MapTile("m", lambda r: (r[0] * 2, r[1])))
    sink = g.add(SinkTile("sink"))
    g.connect(src, m, name="a")
    g.connect(m, sink, name="b")
    return g


def _gather_graph(n_requests: int = 128, n: int = 1024) -> Graph:
    """DRAM gather: src indices -> DramTile read -> sink."""
    g = Graph("serve_gather")
    mem = DramMemory("dram", capacity_words=2 * n)
    data = mem.region("data", n, 1, fill=0)
    for i in range(n):
        data[i] = (i * 7 + 3) % 251
    src = g.add(SourceTile("src", [((i * 13) % n,)
                                   for i in range(n_requests)]))
    dram = g.add(DramTile("dram_t", mem, [PortConfig(
        mode="read", region=data, addr=lambda r: r[0],
        combine=lambda r, v: (r[0], v))]))
    sink = g.add(SinkTile("sink"))
    g.connect(src, dram, name="reqs")
    g.connect(dram, sink, name="resps")
    return g


def _chase_graph(n_threads: int = 4, hops: int = 8, n: int = 512) -> Graph:
    """Dependent pointer-chase through DRAM: the latency-bound regime."""
    g = Graph("serve_chase")
    mem = DramMemory("dram", capacity_words=2 * n)
    nxt = mem.region("next", n, 1, fill=0)
    for i in range(n):
        nxt[i] = (i * 173 + 13) % n
    src = g.add(SourceTile("src", [((i * 97) % n, 0)
                                   for i in range(n_threads)]))
    merge = g.add(MergeTile("merge"))
    dram = g.add(DramTile("hop", mem, [PortConfig(
        mode="read", region=nxt, addr=lambda r: r[0],
        combine=lambda r, v: (v, r[1] + 1))]))
    cond = g.add(FilterTile("cond", lambda r: r[1] >= hops))
    sink = g.add(SinkTile("sink"))
    g.connect(src, merge, name="in")
    g.connect(merge, dram, name="to_dram")
    g.connect(dram, cond, name="from_dram")
    g.connect(cond, sink, name="out", producer_port=0)
    g.connect(cond, merge, name="loop", producer_port=1, priority=True)
    return g


#: Default small rideshare dataset for query jobs — big enough that the
#: cost model separates the queries, small enough for hundreds of serves.
_SERVING_RIDESHARE = dict(n_drivers=60, n_riders=120, n_locations=16,
                          n_rides=800, n_ride_reqs=160, n_driver_status=160)

QUERY_NAMES = tuple(f"q{i}" for i in range(1, 10))

#: Shardable join jobs: (name, left table, right table, join key).
JOIN_SPECS = (("join_rd", "ride", "driver", "driverId"),
              ("join_rr", "rideReq", "rider", "riderId"))
JOIN_NAMES = tuple(spec[0] for spec in JOIN_SPECS)


def _pjoin_specs(n_drivers: int, n_riders: int) -> Tuple:
    """The predicated-join catalog: hierarchy drill-downs over both joins.

    region ⊃ district ⊃ block nest on the join key (so narrower queries'
    partition sets and row sets are covered by broader ones — the
    subsumption reuse the semantic cache exploits), plus class drill-downs
    (rating/seats/fare) sharing key ranges across predicate classes.
    Order is popularity rank for Zipf-skewed traffic.
    """
    from repro.db.planner import Predicate
    d_region = Predicate.in_("driverId", range(max(1, 2 * n_drivers // 3)))
    d_district = Predicate.in_("driverId", range(max(1, n_drivers // 3)))
    d_block = Predicate.in_("driverId", range(max(1, n_drivers // 6)))
    d_tail = Predicate.in_("driverId", range(3 * n_drivers // 4, n_drivers))
    r_region = Predicate.in_("riderId", range(max(1, 2 * n_riders // 3)))
    r_district = Predicate.in_("riderId", range(max(1, n_riders // 3)))
    r_block = Predicate.in_("riderId", range(max(1, n_riders // 6)))
    # Class constraints address the *joined* schema: right-side fields
    # carry the join's "r_" prefix (driver/rider attributes), left-side
    # fields (ride's fare) are bare.
    rated = Predicate.ge("r_rating", 4.0)
    roomy = Predicate.ge("r_seats", 4)
    cheap = Predicate.lt("fare", 18.0)
    return (
        ("pj_rd_region", "ride", "driver", "driverId", d_region),
        ("pj_rd_district", "ride", "driver", "driverId", d_district),
        ("pj_rr_region", "rideReq", "rider", "riderId", r_region),
        ("pj_rd_rated", "ride", "driver", "driverId", d_region & rated),
        ("pj_rr_district", "rideReq", "rider", "riderId", r_district),
        ("pj_rd_block", "ride", "driver", "driverId", d_block),
        ("pj_rr_rated", "rideReq", "rider", "riderId", r_region & rated),
        ("pj_rd_rated_roomy", "ride", "driver", "driverId",
         d_district & rated & roomy),
        ("pj_rr_block", "rideReq", "rider", "riderId", r_block),
        ("pj_rd_tail_cheap", "ride", "driver", "driverId", d_tail & cheap),
    )


#: Predicated-join catalog names, in Zipf popularity-rank order.
PJOIN_NAMES = tuple(spec[0] for spec in _pjoin_specs(60, 120))


class ServingWorkload:
    """The catalog of jobs a serving runtime can be asked to run."""

    def __init__(self, seed: int = 2021,
                 rideshare_cfg: Optional[dict] = None):
        self.seed = seed
        self._rideshare_cfg = dict(rideshare_cfg or _SERVING_RIDESHARE)
        self._data = None
        self._goldens: Dict[str, Golden] = {}
        self.jobs: Dict[str, Job] = {}
        self._register_defaults()

    # -- catalog -----------------------------------------------------------

    def _register_defaults(self) -> None:
        self.add(SimJob("sim_map", _map_graph, sites={
            "streams": ["a", "b"], "tiles": ["m"]}))
        self.add(SimJob("sim_gather", _gather_graph, sites={
            "streams": ["reqs", "resps"], "tiles": ["dram_t"],
            "drams": ["dram_t"]}))
        self.add(SimJob("sim_chase", _chase_graph, sites={
            "streams": ["to_dram", "from_dram"], "tiles": ["merge"],
            "drams": ["hop"]}))
        dataset_key = (self.seed,
                       tuple(sorted(self._rideshare_cfg.items())))
        for name in QUERY_NAMES:
            self.add(QueryJob(name, self._rideshare,
                              dataset_key=dataset_key))
        for name, left, right, key in JOIN_SPECS:
            self.add(ShardedJoinJob(name, self._rideshare, left=left,
                                    right=right, key=key,
                                    dataset_key=dataset_key))
        cfg = self._rideshare_cfg
        for name, left, right, key, pred in _pjoin_specs(
                cfg.get("n_drivers", _SERVING_RIDESHARE["n_drivers"]),
                cfg.get("n_riders", _SERVING_RIDESHARE["n_riders"])):
            self.add(PredicatedJoinJob(name, self._rideshare, left=left,
                                       right=right, key=key, predicate=pred,
                                       dataset_key=dataset_key))
        self.add(StreamingJob("stream_zone"))

    def add(self, job: Job) -> None:
        self.jobs[job.name] = job

    def job(self, name: str) -> Job:
        return self.jobs[name]

    def names(self, kind: Optional[str] = None) -> List[str]:
        return [n for n, j in self.jobs.items()
                if kind is None or j.kind == kind]

    def _rideshare(self):
        if self._data is None:
            from repro.workloads import RideshareConfig, generate
            self._data = generate(RideshareConfig(seed=self.seed,
                                                  **self._rideshare_cfg))
        return self._data

    # -- goldens -----------------------------------------------------------

    def golden(self, name: str) -> Golden:
        """Reference (cycles, digest), computed once, fault- and
        deadline-free."""
        g = self._goldens.get(name)
        if g is None:
            cycles, digest = self.jobs[name].execute()
            g = self._goldens[name] = Golden(cycles=cycles, digest=digest)
        return g

    def warm(self, names: Optional[List[str]] = None) -> None:
        """Precompute goldens (the runtime does this before serving)."""
        for name in (names if names is not None else self.names()):
            self.golden(name)


def derive_seed(*parts: int) -> int:
    """Mix integers into one deterministic 31-bit seed (no Python hash —
    `hash()` of ints is stable, but being explicit costs nothing)."""
    acc = 0x9E3779B9
    for p in parts:
        acc = (acc * 1_000_003 + int(p) + 0x7F4A7C15) % (1 << 31)
    return acc


def fault_injector_for(job: Job, *, seed: int, horizon: int,
                       n_faults: int = 2, transient: bool = True):
    """A seeded injector targeting ``job``'s sites, or None if it has none.

    ``horizon`` bounds fault cycles to the job's fault-free run length so
    scheduled events actually land inside the run.
    """
    sites = job.fault_sites()
    if not any(sites.values()):
        return None
    from repro.reliability import FaultInjector, random_schedule
    rng = random.Random(seed)
    schedule = random_schedule(rng.randrange(1 << 30),
                               n_faults=n_faults,
                               horizon=max(2, horizon),
                               transient=transient, **sites)
    return FaultInjector(schedule, seed=seed)
