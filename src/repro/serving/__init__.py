"""Concurrent query serving over simulated Aurochs fabrics.

The layer above single-query execution: a deterministic discrete-event
runtime that multiplexes rideshare queries, streaming analytics, and
cycle-level simulations over a pool of fabric replicas, with the standard
production-robustness vocabulary — admission control and load shedding,
deadline propagation and cooperative cancellation, per-replica circuit
breakers, hedged requests, bulkhead isolation — all seeded and
reproducible, plus a chaos harness that proves the invariants hold under
overload and injected faults.

Sharded scatter/gather execution (:mod:`repro.serving.shard`) extends the
vocabulary with partial-failure containment: a shardable join fans out
over K radix partitions placed on distinct replicas, each shard its own
fault domain with a deadline sub-budget, straggler hedging, and
partition-scoped retries, gathered into a deterministic merge or an
explicitly-degraded typed :class:`PartialResult` — never a silently wrong
answer.  A :class:`FleetManager` makes the replica pool elastic: growth
under queue pressure, shrink when idle, quarantine on breaker open-rate.

The semantic partition cache (:mod:`repro.serving.partition_cache`) sits
between planning and the fabric: each predicated join's predicate is
canonicalized into a partition-key set, and per-partition result
fragments are cached under their predicate *class* so broader cached
results can serve narrower queries (subsumption).  A lookup covers what
it can from cache, dispatches only the residual partitions through the
scatter/gather path, and merges bit-identical to the unsharded golden —
with per-tenant quotas, LRU-by-cost eviction, dataset-version
invalidation with bounded staleness, and CRC tripwires on every serve.

Live ingestion (:mod:`repro.serving.ingest`) adds the write path: seeded
append batches flow into a per-dataset LSM memtable, flushes publish new
immutable snapshot versions atomically, and merge compaction runs as
background fabric work in a low-priority "compaction" admission class
with deadline-based anti-starvation escalation.  Every query pins the
snapshot version it admitted against and is checked against the golden
digest *for that version* — reads stay consistent under concurrent
writes, and a mid-compaction replica kill can never publish a torn
version.
"""

from repro.serving.admission import AdmissionController
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.bulkhead import Bulkhead
from repro.serving.cancel import CancelToken
from repro.serving.chaos import (
    LoadTestConfig,
    build_runtime,
    chaos_report,
    check_invariants,
    generate_requests,
    run_loadtest,
    signature,
    zipf_weights,
)
from repro.serving.ingest import (
    CompactionJob,
    FlushJob,
    IngestController,
    IngestPolicy,
    LiveDataset,
    MaintenanceJob,
)
from repro.serving.partition_cache import (
    CacheDecision,
    CachePolicy,
    Fragment,
    PartitionCache,
)
from repro.serving.replica import FabricReplica, PlanCache
from repro.serving.request import (
    PRIORITY_CLASSES,
    STATUSES,
    Outcome,
    Request,
    priority_of,
)
from repro.serving.runtime import ServingPolicy, ServingRuntime
from repro.serving.shard import (
    FleetManager,
    FleetPolicy,
    PartialResult,
    ShardCoordinator,
    ShardPlan,
    ShardPolicy,
    ShardedExecution,
    plan_shards,
)
from repro.serving.workload import (
    FragmentJob,
    Golden,
    JOIN_NAMES,
    Job,
    JoinShardJob,
    LoweredPlan,
    PJOIN_NAMES,
    PredicatedJoinJob,
    QUERY_NAMES,
    QueryJob,
    ServingWorkload,
    ShardedJoinJob,
    SimJob,
    StreamingJob,
    TAXI_NAMES,
    TaxiFlightJob,
    derive_seed,
    fault_injector_for,
    taxi_flight_jobs,
)

__all__ = [
    "AdmissionController",
    "Bulkhead",
    "CLOSED",
    "CacheDecision",
    "CachePolicy",
    "CancelToken",
    "CircuitBreaker",
    "CompactionJob",
    "FabricReplica",
    "FlushJob",
    "Fragment",
    "FragmentJob",
    "FleetManager",
    "FleetPolicy",
    "Golden",
    "HALF_OPEN",
    "IngestController",
    "IngestPolicy",
    "JOIN_NAMES",
    "Job",
    "JoinShardJob",
    "LiveDataset",
    "LoadTestConfig",
    "LoweredPlan",
    "MaintenanceJob",
    "OPEN",
    "Outcome",
    "PJOIN_NAMES",
    "PRIORITY_CLASSES",
    "PartialResult",
    "PartitionCache",
    "PlanCache",
    "PredicatedJoinJob",
    "QUERY_NAMES",
    "QueryJob",
    "Request",
    "STATUSES",
    "ServingPolicy",
    "ServingRuntime",
    "ServingWorkload",
    "ShardCoordinator",
    "ShardPlan",
    "ShardPolicy",
    "ShardedExecution",
    "ShardedJoinJob",
    "SimJob",
    "StreamingJob",
    "TAXI_NAMES",
    "TaxiFlightJob",
    "build_runtime",
    "chaos_report",
    "check_invariants",
    "derive_seed",
    "fault_injector_for",
    "generate_requests",
    "plan_shards",
    "priority_of",
    "run_loadtest",
    "signature",
    "taxi_flight_jobs",
    "zipf_weights",
]
