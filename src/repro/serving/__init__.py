"""Concurrent query serving over simulated Aurochs fabrics.

The layer above single-query execution: a deterministic discrete-event
runtime that multiplexes rideshare queries, streaming analytics, and
cycle-level simulations over a pool of fabric replicas, with the standard
production-robustness vocabulary — admission control and load shedding,
deadline propagation and cooperative cancellation, per-replica circuit
breakers, hedged requests, bulkhead isolation — all seeded and
reproducible, plus a chaos harness that proves the invariants hold under
overload and injected faults.
"""

from repro.serving.admission import AdmissionController
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.bulkhead import Bulkhead
from repro.serving.cancel import CancelToken
from repro.serving.chaos import (
    LoadTestConfig,
    build_runtime,
    chaos_report,
    check_invariants,
    generate_requests,
    run_loadtest,
    signature,
)
from repro.serving.replica import FabricReplica, PlanCache
from repro.serving.request import (
    PRIORITY_CLASSES,
    STATUSES,
    Outcome,
    Request,
    priority_of,
)
from repro.serving.runtime import ServingPolicy, ServingRuntime
from repro.serving.workload import (
    Golden,
    Job,
    LoweredPlan,
    QUERY_NAMES,
    QueryJob,
    ServingWorkload,
    SimJob,
    StreamingJob,
    derive_seed,
    fault_injector_for,
)

__all__ = [
    "AdmissionController",
    "Bulkhead",
    "CLOSED",
    "CancelToken",
    "CircuitBreaker",
    "FabricReplica",
    "Golden",
    "HALF_OPEN",
    "Job",
    "LoadTestConfig",
    "LoweredPlan",
    "OPEN",
    "Outcome",
    "PRIORITY_CLASSES",
    "PlanCache",
    "QUERY_NAMES",
    "QueryJob",
    "Request",
    "STATUSES",
    "ServingPolicy",
    "ServingRuntime",
    "ServingWorkload",
    "SimJob",
    "StreamingJob",
    "build_runtime",
    "chaos_report",
    "check_invariants",
    "derive_seed",
    "fault_injector_for",
    "generate_requests",
    "priority_of",
    "run_loadtest",
    "signature",
]
