"""The chaos harness: seeded open-loop load tests with invariant checking.

This is the serving tier's falsifier.  It generates an open-loop arrival
stream (exponential interarrivals, so demand does not politely wait for
capacity), mixes rideshare queries, streaming evaluations, and fault-prone
simulations across tenants and priority classes, runs the whole thing
through a :class:`~repro.serving.runtime.ServingRuntime` with some
replicas made deterministically flaky, and then checks the invariants the
robustness layer must never break:

1. **no wrong results, ever** — every ``ok`` outcome's digest equals the
   fault-free golden (the runtime re-checks this on every serve; the
   harness re-verifies by scanning outcomes);
2. **every non-success is typed** — each shed / deadline / failed outcome
   carries the matching :class:`~repro.errors.ReproError` subclass;
3. **conservation** — exactly one outcome per submitted request;
4. **reproducibility** — the same config produces a bit-identical outcome
   signature sequence (checked by running twice).

Everything derives from ``config.seed``: arrivals, query mix, deadlines,
flaky-replica fault schedules, hedge jitter.  A failing run is therefore
a unit test, not an anecdote.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    Cancelled,
    CircuitOpen,
    DeadlineExceeded,
    FaultError,
    Overloaded,
    ShardsLost,
    SimulationError,
)
from repro.reliability.health import DegradePolicy
from repro.serving.ingest import IngestPolicy
from repro.serving.partition_cache import CachePolicy
from repro.serving.request import Request
from repro.serving.runtime import ServingPolicy, ServingRuntime
from repro.serving.shard import FleetPolicy, ShardPolicy
from repro.serving.workload import (
    JOIN_NAMES,
    PJOIN_NAMES,
    QUERY_NAMES,
    TAXI_NAMES,
    ServingWorkload,
    derive_seed,
)

#: Job mix: (name, weight).  Sims dominate — they are the fault surface —
#: with the analytical queries and streaming eval as the latency-sensitive
#: foreground traffic.
DEFAULT_MIX: Tuple[Tuple[str, int], ...] = (
    (("sim_map"), 18), (("sim_gather"), 12), (("sim_chase"), 10),
    *(((name), 4) for name in QUERY_NAMES),
    (("stream_zone"), 6),
)

TENANTS: Tuple[str, ...] = ("acme", "globex", "initech")


@dataclass
class LoadTestConfig:
    """One fully seeded load-test scenario."""

    requests: int = 200
    seed: int = 0
    mean_interarrival: int = 350         # virtual cycles: offered load
                                         # ~1.5x pool capacity (open loop)
    n_replicas: int = 4
    faults: bool = False                 # make some replicas flaky
    flaky_replicas: Tuple[int, ...] = (1, 3)
    fault_rate: float = 0.6              # P(flaky replica injects) per run
    interactive_share: float = 0.6
    deadline_share: float = 0.9          # rest run with no deadline
    interactive_budget: Tuple[int, int] = (8_000, 40_000)
    batch_budget: Tuple[int, int] = (30_000, 120_000)
    policy: ServingPolicy = field(default_factory=lambda: ServingPolicy(
        queue_depth=48, per_tenant=6,
        class_limits={"batch": 3}, retries=1, hedge_after=600))
    mix: Tuple[Tuple[str, int], ...] = DEFAULT_MIX
    #: Scatter/gather fan-out for shardable joins (0 disables sharding;
    #: > 0 also folds the join jobs into the mix).
    shards: int = 0
    #: Replicas killed permanently mid-run (chaos), at seeded cycles.
    kills: int = 0
    kill_window: Tuple[int, int] = (5_000, 60_000)
    #: Enable the elastic fleet (grow/shrink/quarantine).
    elastic: bool = False
    #: Enable the semantic partition cache tier for predicated joins
    #: (also folds the predicated catalog into the mix).
    cache: bool = False
    #: Radix fan-out of the cache's residual scatter/gather runs.
    cache_partitions: int = 4
    #: Zipf skew exponent for the predicated-catalog traffic; > 0 makes
    #: the offered mix pure predicated joins with weight ∝ 1/rank^zipf.
    zipf: float = 0.0
    #: Seeded mid-run dataset invalidations (cache version bumps) and
    #: cached-fragment corruptions, drawn from ``churn_window``.
    invalidations: int = 0
    corruptions: int = 0
    churn_window: Tuple[int, int] = (5_000, 60_000)
    #: Enable the live-ingestion write path: seeded append batches flow
    #: into the taxi dataset's memtable concurrently with the query
    #: stream, and the taxi flight catalog joins the offered mix.
    ingest: bool = False
    #: Mean virtual cycles between ingest batches (open loop).
    ingest_rate: int = 1_200
    #: Rows per ingest batch, drawn uniformly from this range.
    ingest_batch_rows: Tuple[int, int] = (32, 96)
    #: Extra seeded replica kills aimed at the compaction era (the kill
    #: window's tail), on top of ``kills`` — the mid-compaction-kill
    #: chaos mode: a lost maintenance leg must be retried or abandoned
    #: without ever publishing a torn version.
    compaction_kills: int = 0


def zipf_weights(names: Tuple[str, ...],
                 s: float) -> Tuple[Tuple[str, int], ...]:
    """Integer Zipf weights over ``names`` in rank order: rank ``r`` gets
    weight ``max(1, round(64 / r**s))``, so skew survives the integer
    expansion ``generate_requests`` does."""
    return tuple((name, max(1, round(64 / (rank ** s))))
                 for rank, name in enumerate(names, start=1))


def effective_mix(config: LoadTestConfig) -> Tuple[Tuple[str, int], ...]:
    """The job mix actually offered: with sharding on, the shardable
    joins join the foreground traffic; with the cache on, the predicated
    joins do too; ``zipf > 0`` replaces the mix entirely with a
    Zipf-skewed predicated catalog (the cache's intended traffic shape)."""
    if config.zipf > 0:
        mix = zipf_weights(PJOIN_NAMES, config.zipf)
    else:
        mix = tuple(config.mix)
        if config.shards > 0 and not any(n in JOIN_NAMES for n, __ in mix):
            mix += (("join_rd", 10), ("join_rr", 6))
        if config.cache and not any(n in PJOIN_NAMES for n, __ in mix):
            mix += tuple((name, 3) for name in PJOIN_NAMES[:6])
    if config.ingest and not any(n in TAXI_NAMES for n, __ in mix):
        # The flight catalog in Zipf-ish popularity-rank weights.
        mix += tuple(zip(TAXI_NAMES, (8, 6, 5, 4, 3, 3, 2, 2, 1, 1)))
    return mix


def kill_schedule_for(config: LoadTestConfig) -> Dict[int, int]:
    """Seeded chaos kills: ``config.kills`` distinct replicas, each dying
    permanently at a cycle drawn from ``config.kill_window``."""
    schedule: Dict[int, int] = {}
    if config.kills > 0:
        rng = random.Random(derive_seed(config.seed, 0xD1E))
        victims = rng.sample(range(config.n_replicas),
                             min(config.kills, config.n_replicas))
        lo, hi = config.kill_window
        schedule = {victim: rng.randrange(lo, hi)
                    for victim in sorted(victims)}
    if config.compaction_kills > 0:
        # Aim extra kills at the window's back half, where the LSM ladder
        # has grown and compactions are large — with ingestion on, these
        # land mid-maintenance-run organically.
        rng = random.Random(derive_seed(config.seed, 0xC0DE))
        spare = [i for i in range(config.n_replicas) if i not in schedule]
        lo, hi = config.kill_window
        mid = (lo + hi) // 2
        for victim in rng.sample(spare, min(config.compaction_kills,
                                            len(spare))):
            schedule[victim] = rng.randrange(mid, hi)
    return schedule


def churn_schedule_for(config: LoadTestConfig
                       ) -> Tuple[List[int], List[int]]:
    """Seeded cache churn: ``(invalidation cycles, corruption cycles)``,
    each drawn independently from ``config.churn_window``."""
    rng = random.Random(derive_seed(config.seed, 0xCACE))
    lo, hi = config.churn_window
    invalidations = sorted(rng.randrange(lo, hi)
                           for __ in range(max(0, config.invalidations)))
    corruptions = sorted(rng.randrange(lo, hi)
                         for __ in range(max(0, config.corruptions)))
    return invalidations, corruptions


def ingest_schedule_for(config: LoadTestConfig) -> List[Tuple[int, int]]:
    """Seeded open-loop append stream: ``(cycle, n_rows)`` batches at
    mean interarrival ``ingest_rate``, spanning the query stream's whole
    arrival horizon so reads and writes genuinely contend."""
    if not config.ingest:
        return []
    rng = random.Random(derive_seed(config.seed, 0x1A6E))
    horizon = config.requests * config.mean_interarrival
    lo, hi = config.ingest_batch_rows
    schedule: List[Tuple[int, int]] = []
    t = 0
    while True:
        t += max(1, int(rng.expovariate(1.0 / config.ingest_rate)))
        if t >= horizon:
            return schedule
        schedule.append((t, rng.randrange(lo, hi)))


def generate_requests(config: LoadTestConfig) -> List[Request]:
    """Seeded open-loop arrival stream for ``config``."""
    rng = random.Random(derive_seed(config.seed, 0xA221))
    names = [name for name, weight in effective_mix(config)
             for __ in range(weight)]
    requests: List[Request] = []
    t = 0
    for i in range(config.requests):
        t += max(1, int(rng.expovariate(1.0 / config.mean_interarrival)))
        klass = ("interactive" if rng.random() < config.interactive_share
                 else "batch")
        deadline: Optional[int] = None
        if rng.random() < config.deadline_share:
            lo, hi = (config.interactive_budget if klass == "interactive"
                      else config.batch_budget)
            deadline = t + rng.randrange(lo, hi)
        requests.append(Request(
            id=i, tenant=rng.choice(TENANTS), query=rng.choice(names),
            klass=klass, arrival=t, deadline=deadline))
    return requests


def build_runtime(config: LoadTestConfig,
                  workload: Optional[ServingWorkload] = None,
                  metrics=None) -> ServingRuntime:
    policy = config.policy
    if config.shards > 0 and policy.shard is None:
        policy = replace(policy, shard=ShardPolicy(
            n_shards=config.shards,
            degrade=DegradePolicy(serve_partial=True, min_coverage=0.25)))
    if config.elastic and policy.fleet is None:
        policy = replace(policy, fleet=FleetPolicy(
            min_replicas=2, max_replicas=config.n_replicas + 4))
    if config.cache and policy.cache is None:
        policy = replace(policy, cache=CachePolicy(
            residual=ShardPolicy(
                n_shards=config.cache_partitions,
                degrade=DegradePolicy(serve_partial=True,
                                      min_coverage=0.25))))
    if config.ingest and policy.ingest is None:
        policy = replace(policy, ingest=IngestPolicy())
    invalidations, corruptions = churn_schedule_for(config)
    return ServingRuntime(
        workload, n_replicas=config.n_replicas, policy=policy,
        seed=config.seed,
        flaky_replicas=config.flaky_replicas if config.faults else (),
        fault_rate=config.fault_rate,
        kill_schedule=kill_schedule_for(config), metrics=metrics,
        invalidation_schedule=invalidations,
        corruption_schedule=corruptions,
        ingest_schedule=ingest_schedule_for(config))


def run_loadtest(config: LoadTestConfig,
                 workload: Optional[ServingWorkload] = None
                 ) -> ServingRuntime:
    """Generate, serve, and return the finished runtime."""
    runtime = build_runtime(config, workload)
    for request in generate_requests(config):
        runtime.submit(request)
    runtime.run()
    return runtime


#: status -> error types legitimately attached to that outcome.
_EXPECTED_ERRORS = {
    "shed": (Overloaded,),
    "deadline": (DeadlineExceeded,),
    # A retry-exhausted fault finalizes as 'failed' with the FaultError;
    # a sharded query that lost fault domains carries ShardsLost (note
    # ReplicaLost is a FaultError).
    "failed": (FaultError, SimulationError, CircuitOpen, Cancelled,
               ShardsLost),
    # A degraded sharded query always names exactly what it lost.
    "partial": (ShardsLost,),
}


def check_invariants(runtime: ServingRuntime) -> List[str]:
    """Every violated serving invariant, as a human-readable list.

    Empty means the run was correct *under chaos* — which is the whole
    point: overload and injected faults may cost latency and availability,
    never integrity or typed-error discipline.
    """
    problems = runtime.check()
    for outcome in runtime.outcomes:
        expected = _EXPECTED_ERRORS.get(outcome.status)
        if expected is None:
            continue
        if not isinstance(outcome.error, expected):
            problems.append(
                f"request {outcome.request.id} status {outcome.status!r} "
                f"carries {type(outcome.error).__name__}, expected one of "
                f"{[t.__name__ for t in expected]}")
    for outcome in runtime.outcomes:
        if outcome.ok and not outcome.shards:
            golden = runtime.golden_of(outcome.request)
            replica = next(r for r in runtime.replicas
                           if r.name == outcome.replica)
            if replica.fault_seed is None and outcome.cycles > golden.cycles:
                problems.append(
                    f"request {outcome.request.id} on healthy replica "
                    f"{outcome.replica} took {outcome.cycles} cycles "
                    f"(golden {golden.cycles})")
        if outcome.status == "partial":
            problems.extend(_check_partial(runtime, outcome))
    return problems


def _check_partial(runtime: ServingRuntime, outcome) -> List[str]:
    """A partial outcome must be *accurately* degraded: its coverage must
    recompute from the shard plan's row weights, and its digest must be a
    sub-multiset of the golden — degradation may drop rows, never invent
    or distort them."""
    problems: List[str] = []
    rid = outcome.request.id
    partial = outcome.partial
    if partial is None:
        return [f"request {rid} is partial without a payload"]
    job = runtime.workload.job(outcome.request.query)
    plan = runtime.coordinator.plan_for(job, outcome.shards)
    # A cached (predicated) request only dispatches the partitions its
    # predicate can touch; accounting is over that set, not the fan-out.
    if outcome.cached:
        parts = set(job.partition_set(outcome.shards))
    else:
        parts = set(range(outcome.shards))
    total_rows = sum(plan.rows[k] for k in sorted(parts))
    covered = sum(plan.rows[k] for k in partial.complete_shards)
    want = covered / total_rows if total_rows else 0.0
    if abs(partial.coverage - want) > 1e-9:
        problems.append(
            f"request {rid} partial coverage {partial.coverage} != "
            f"{want} recomputed from the shard plan")
    if (partial.rows_present != covered
            or partial.rows_expected != total_rows):
        problems.append(
            f"request {rid} partial row accounting "
            f"{partial.rows_present}/{partial.rows_expected} != plan's "
            f"{covered}/{total_rows}")
    if set(partial.lost_shards) | set(partial.complete_shards) != parts:
        problems.append(
            f"request {rid} partial shard sets do not cover the fan-out")
    golden = runtime.workload.golden(outcome.request.query)
    extra = Counter(partial.digest[1]) - Counter(golden.digest[1])
    if extra:
        problems.append(
            f"request {rid} partial digest contains {sum(extra.values())} "
            f"row(s) not in the golden result")
    return problems


def signature(runtime: ServingRuntime) -> Tuple:
    """Bit-for-bit identity of a run, ordered by request id."""
    return tuple(sorted((o.signature() for o in runtime.outcomes),
                        key=lambda s: s[0]))


def chaos_report(config: LoadTestConfig,
                 runtime: ServingRuntime,
                 violations: List[str]) -> Dict[str, object]:
    """JSON-ready report: config echo + runtime report + verdict."""
    report = runtime.report()
    report["config"] = {
        "requests": config.requests, "seed": config.seed,
        "mean_interarrival": config.mean_interarrival,
        "n_replicas": config.n_replicas, "faults": config.faults,
        "flaky_replicas": (list(config.flaky_replicas)
                           if config.faults else []),
        "fault_rate": config.fault_rate,
        "shards": config.shards, "kills": config.kills,
        "kill_schedule": {str(k): v for k, v in
                          sorted(kill_schedule_for(config).items())},
        "elastic": config.elastic,
        "cache": config.cache,
        "cache_partitions": config.cache_partitions,
        "zipf": config.zipf,
        "invalidations": config.invalidations,
        "corruptions": config.corruptions,
        "churn_schedule": [list(s) for s in churn_schedule_for(config)],
        "ingest": config.ingest,
        "ingest_rate": config.ingest_rate,
        "ingest_batches": len(ingest_schedule_for(config)),
        "compaction_kills": config.compaction_kills,
    }
    report["invariants"] = {"ok": not violations, "violations": violations}
    return report


def shard_sweep(base: LoadTestConfig,
                kills: Tuple[int, ...] = (0, 1, 2)) -> Dict[str, object]:
    """The shard-failure sweep: the same sharded load test at increasing
    chaos-kill counts, each run twice to prove bit-for-bit seed
    reproducibility, with the per-shard hedge/retry/partial accounting
    the CI chaos job publishes as ``BENCH_SHARD.json``."""
    sweep: List[Dict[str, object]] = []
    for n_kills in kills:
        config = replace(base, kills=n_kills)
        runtime = run_loadtest(config)
        violations = check_invariants(runtime)
        rerun = run_loadtest(replace(base, kills=n_kills))
        report = runtime.report()
        sweep.append({
            "kills": n_kills,
            "kill_schedule": {str(k): v for k, v in
                              sorted(kill_schedule_for(config).items())},
            "outcomes": report["outcomes"],
            "shards": report["shards"],
            "fleet": report["fleet"],
            "reproducible": signature(runtime) == signature(rerun),
            "violations": violations,
        })
    return {
        "config": {
            "requests": base.requests, "seed": base.seed,
            "n_replicas": base.n_replicas, "shards": base.shards,
            "faults": base.faults, "elastic": base.elastic,
        },
        "sweep": sweep,
        "ok": all(not entry["violations"] and entry["reproducible"]
                  for entry in sweep),
    }
