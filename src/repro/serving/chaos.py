"""The chaos harness: seeded open-loop load tests with invariant checking.

This is the serving tier's falsifier.  It generates an open-loop arrival
stream (exponential interarrivals, so demand does not politely wait for
capacity), mixes rideshare queries, streaming evaluations, and fault-prone
simulations across tenants and priority classes, runs the whole thing
through a :class:`~repro.serving.runtime.ServingRuntime` with some
replicas made deterministically flaky, and then checks the invariants the
robustness layer must never break:

1. **no wrong results, ever** — every ``ok`` outcome's digest equals the
   fault-free golden (the runtime re-checks this on every serve; the
   harness re-verifies by scanning outcomes);
2. **every non-success is typed** — each shed / deadline / failed outcome
   carries the matching :class:`~repro.errors.ReproError` subclass;
3. **conservation** — exactly one outcome per submitted request;
4. **reproducibility** — the same config produces a bit-identical outcome
   signature sequence (checked by running twice).

Everything derives from ``config.seed``: arrivals, query mix, deadlines,
flaky-replica fault schedules, hedge jitter.  A failing run is therefore
a unit test, not an anecdote.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    Cancelled,
    CircuitOpen,
    DeadlineExceeded,
    FaultError,
    Overloaded,
    SimulationError,
)
from repro.serving.request import Request
from repro.serving.runtime import ServingPolicy, ServingRuntime
from repro.serving.workload import QUERY_NAMES, ServingWorkload, derive_seed

#: Job mix: (name, weight).  Sims dominate — they are the fault surface —
#: with the analytical queries and streaming eval as the latency-sensitive
#: foreground traffic.
DEFAULT_MIX: Tuple[Tuple[str, int], ...] = (
    (("sim_map"), 18), (("sim_gather"), 12), (("sim_chase"), 10),
    *(((name), 4) for name in QUERY_NAMES),
    (("stream_zone"), 6),
)

TENANTS: Tuple[str, ...] = ("acme", "globex", "initech")


@dataclass
class LoadTestConfig:
    """One fully seeded load-test scenario."""

    requests: int = 200
    seed: int = 0
    mean_interarrival: int = 350         # virtual cycles: offered load
                                         # ~1.5x pool capacity (open loop)
    n_replicas: int = 4
    faults: bool = False                 # make some replicas flaky
    flaky_replicas: Tuple[int, ...] = (1, 3)
    fault_rate: float = 0.6              # P(flaky replica injects) per run
    interactive_share: float = 0.6
    deadline_share: float = 0.9          # rest run with no deadline
    interactive_budget: Tuple[int, int] = (8_000, 40_000)
    batch_budget: Tuple[int, int] = (30_000, 120_000)
    policy: ServingPolicy = field(default_factory=lambda: ServingPolicy(
        queue_depth=48, per_tenant=6,
        class_limits={"batch": 3}, retries=1, hedge_after=600))
    mix: Tuple[Tuple[str, int], ...] = DEFAULT_MIX


def generate_requests(config: LoadTestConfig) -> List[Request]:
    """Seeded open-loop arrival stream for ``config``."""
    rng = random.Random(derive_seed(config.seed, 0xA221))
    names = [name for name, weight in config.mix for __ in range(weight)]
    requests: List[Request] = []
    t = 0
    for i in range(config.requests):
        t += max(1, int(rng.expovariate(1.0 / config.mean_interarrival)))
        klass = ("interactive" if rng.random() < config.interactive_share
                 else "batch")
        deadline: Optional[int] = None
        if rng.random() < config.deadline_share:
            lo, hi = (config.interactive_budget if klass == "interactive"
                      else config.batch_budget)
            deadline = t + rng.randrange(lo, hi)
        requests.append(Request(
            id=i, tenant=rng.choice(TENANTS), query=rng.choice(names),
            klass=klass, arrival=t, deadline=deadline))
    return requests


def build_runtime(config: LoadTestConfig,
                  workload: Optional[ServingWorkload] = None,
                  metrics=None) -> ServingRuntime:
    return ServingRuntime(
        workload, n_replicas=config.n_replicas, policy=config.policy,
        seed=config.seed,
        flaky_replicas=config.flaky_replicas if config.faults else (),
        fault_rate=config.fault_rate, metrics=metrics)


def run_loadtest(config: LoadTestConfig,
                 workload: Optional[ServingWorkload] = None
                 ) -> ServingRuntime:
    """Generate, serve, and return the finished runtime."""
    runtime = build_runtime(config, workload)
    for request in generate_requests(config):
        runtime.submit(request)
    runtime.run()
    return runtime


#: status -> error types legitimately attached to that outcome.
_EXPECTED_ERRORS = {
    "shed": (Overloaded,),
    "deadline": (DeadlineExceeded,),
    # A retry-exhausted fault finalizes as 'failed' with the FaultError.
    "failed": (FaultError, SimulationError, CircuitOpen, Cancelled),
}


def check_invariants(runtime: ServingRuntime) -> List[str]:
    """Every violated serving invariant, as a human-readable list.

    Empty means the run was correct *under chaos* — which is the whole
    point: overload and injected faults may cost latency and availability,
    never integrity or typed-error discipline.
    """
    problems = runtime.check()
    for outcome in runtime.outcomes:
        expected = _EXPECTED_ERRORS.get(outcome.status)
        if expected is None:
            continue
        if not isinstance(outcome.error, expected):
            problems.append(
                f"request {outcome.request.id} status {outcome.status!r} "
                f"carries {type(outcome.error).__name__}, expected one of "
                f"{[t.__name__ for t in expected]}")
    for outcome in runtime.outcomes:
        if outcome.ok:
            golden = runtime.workload.golden(outcome.request.query)
            replica = next(r for r in runtime.replicas
                           if r.name == outcome.replica)
            if replica.fault_seed is None and outcome.cycles > golden.cycles:
                problems.append(
                    f"request {outcome.request.id} on healthy replica "
                    f"{outcome.replica} took {outcome.cycles} cycles "
                    f"(golden {golden.cycles})")
    return problems


def signature(runtime: ServingRuntime) -> Tuple:
    """Bit-for-bit identity of a run, ordered by request id."""
    return tuple(sorted((o.signature() for o in runtime.outcomes),
                        key=lambda s: s[0]))


def chaos_report(config: LoadTestConfig,
                 runtime: ServingRuntime,
                 violations: List[str]) -> Dict[str, object]:
    """JSON-ready report: config echo + runtime report + verdict."""
    report = runtime.report()
    report["config"] = {
        "requests": config.requests, "seed": config.seed,
        "mean_interarrival": config.mean_interarrival,
        "n_replicas": config.n_replicas, "faults": config.faults,
        "flaky_replicas": (list(config.flaky_replicas)
                           if config.faults else []),
        "fault_rate": config.fault_rate,
    }
    report["invariants"] = {"ok": not violations, "violations": violations}
    return report
