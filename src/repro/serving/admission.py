"""Admission control: bounded priority queue with load shedding.

"Scaling Ordered Stream Processing on Shared-Memory Multicores" makes the
case that ordered workloads live or die by admission policy under load;
this module is the serving tier's front door.  The queue is bounded —
overload sheds work with a typed :class:`~repro.errors.Overloaded` instead
of growing without bound — and priority-aware: when the queue is full, a
more-important arrival displaces the newest least-important queued request
(the one that has invested the least waiting) rather than being dropped.

Everything is deterministic: FIFO within a class, strict class priority
across classes, and shedding decisions depend only on queue state.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import Overloaded
from repro.serving.request import PRIORITY_CLASSES, Request


class AdmissionController:
    """Bounded multi-class FIFO with displacement shedding."""

    def __init__(self, capacity: int = 64,
                 classes: Tuple[str, ...] = PRIORITY_CLASSES):
        if capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        self.capacity = capacity
        self.classes = tuple(classes)
        self._queues: Dict[str, deque] = {c: deque() for c in self.classes}
        self.admitted = 0
        self.shed = 0

    # -- state -------------------------------------------------------------

    def depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def __len__(self) -> int:
        return self.depth()

    # -- admission ---------------------------------------------------------

    def offer(self, request: Request, now: int) -> List[
            Tuple[Request, Overloaded]]:
        """Admit ``request``, shedding as needed.

        Returns the list of ``(request, error)`` pairs shed by this offer:
        empty on a plain admit, the incoming request when rejected, or a
        displaced lower-priority victim when the incoming request takes
        its place.  Every shed carries a typed :class:`Overloaded`.
        """
        if request.klass not in self._queues:
            raise ValueError(f"unknown priority class {request.klass!r}")
        depth = self.depth()
        if depth < self.capacity:
            self._queues[request.klass].append(request)
            self.admitted += 1
            return []
        victim = self._displacement_victim(request)
        if victim is not None:
            self._queues[victim.klass].remove(victim)
            self._queues[request.klass].append(request)
            self.admitted += 1
            self.shed += 1
            return [(victim, Overloaded(
                f"request {victim.id} ({victim.klass}) evicted by "
                f"higher-priority arrival {request.id} at depth {depth}",
                tenant=victim.tenant, query=victim.query,
                request_id=victim.id, depth=depth, limit=self.capacity,
                evicted=True))]
        self.shed += 1
        return [(request, Overloaded(
            f"admission queue full ({depth}/{self.capacity}); "
            f"request {request.id} shed",
            tenant=request.tenant, query=request.query,
            request_id=request.id, depth=depth, limit=self.capacity))]

    def _displacement_victim(self, incoming: Request) -> Optional[Request]:
        """Newest queued request of a strictly lower class, if any."""
        for klass in reversed(self.classes):
            if klass == incoming.klass:
                return None          # classes below incoming's are empty
            q = self._queues[klass]
            if q:
                return q[-1]
        return None

    def requeue(self, request: Request) -> None:
        """Put an already-admitted request back at the head of its class.

        Used for fault retries: the request paid its admission once, so a
        retry bypasses capacity (retry counts are bounded by policy) and
        does not wait behind newer arrivals.
        """
        self._queues[request.klass].appendleft(request)

    def promote(self, request: Request, klass: str) -> bool:
        """Move a queued request into a more important class (in place).

        The anti-starvation escalation path: a background maintenance
        request that has waited past its deadline is re-classed upward so
        query traffic can no longer displace it indefinitely.  It enters
        the target class at the *head* — by construction it is older than
        anything queued there.  Returns False (and changes nothing) if the
        request is not currently queued, e.g. already dispatched.
        """
        if klass not in self._queues:
            raise ValueError(f"unknown priority class {klass!r}")
        queue = self._queues.get(request.klass)
        if queue is None or request not in queue:
            return False
        queue.remove(request)
        request.klass = klass
        self._queues[klass].appendleft(request)
        return True

    # -- dispatch ----------------------------------------------------------

    def take(self, eligible: Optional[Callable[[Request], bool]] = None
             ) -> Optional[Request]:
        """Pop the most important eligible request (FIFO within class).

        ``eligible`` lets the caller apply bulkhead limits; ineligible
        requests are skipped, not dropped — a blocked tenant's requests
        wait in place while others proceed.
        """
        for klass in self.classes:
            q = self._queues[klass]
            if eligible is None:
                if q:
                    return q.popleft()
                continue
            for i, request in enumerate(q):
                if eligible(request):
                    del q[i]
                    return request
        return None

    def expire(self, now: int) -> List[Request]:
        """Remove every queued request whose deadline has already passed."""
        expired: List[Request] = []
        for q in self._queues.values():
            keep = deque()
            for request in q:
                if request.deadline is not None and now >= request.deadline:
                    expired.append(request)
                else:
                    keep.append(request)
            q.clear()
            q.extend(keep)
        return expired
