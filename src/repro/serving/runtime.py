"""The concurrent query-serving runtime: a deterministic DES over fabrics.

The ROADMAP's production-scale story needs more than fast single queries —
it needs a tier that takes an *open-loop* arrival stream of rideshare
queries, streaming evaluations, and cycle-level simulations, multiplexes
them over a pool of :class:`~repro.serving.replica.FabricReplica`\\ s, and
stays correct and bounded when demand exceeds capacity or replicas turn
flaky.  :class:`ServingRuntime` is that tier, built as a *deterministic
discrete-event simulation* in virtual cycles (the same unit the engine
simulates), which is what makes overload behaviour testable bit-for-bit
from a seed:

* **admission** — :class:`~repro.serving.admission.AdmissionController`:
  bounded priority queue; overflow sheds with typed
  :class:`~repro.errors.Overloaded` (displacing batch work for
  interactive arrivals) instead of queueing unboundedly;
* **deadlines** — an absolute per-request deadline propagates into an
  engine cycle budget via :class:`~repro.serving.cancel.CancelToken`;
  expiry in the queue, at an operator boundary, or mid-simulation all
  surface the same typed :class:`~repro.errors.DeadlineExceeded`, and a
  cancelled simulation frees its replica at the cancellation cycle — not
  at the run's natural end;
* **breakers + hedging** — per-replica
  :class:`~repro.serving.breaker.CircuitBreaker`\\ s steer dispatch away
  from replicas surfacing consecutive :class:`~repro.errors.FaultError`\\ s
  (typed :class:`~repro.errors.CircuitOpen` when no replica can serve
  before the deadline), and slow sim runs are hedged on a second replica
  after a seeded-jitter cutoff, first response winning and the loser
  cancelled;
* **bulkheads** — :class:`~repro.serving.bulkhead.Bulkhead` caps
  per-tenant / per-class concurrency so one pathological tenant queues
  behind its own limit instead of occupying the pool;
* **observability** — everything lands in a PR 3
  :class:`~repro.observability.metrics.MetricsRegistry` (latency
  histograms with exact p50/p99, shed/outcome counters) via
  :meth:`ServingRuntime.report`.

The runtime costs nothing when unused: single-query paths never touch
this module, and the engine's cancel hook is one is-None test per cycle.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    Cancelled,
    CircuitOpen,
    DeadlineExceeded,
    FaultError,
    ReplicaLost,
    ReproError,
    SimulationError,
)
from repro.observability.metrics import MetricsRegistry
from repro.serving.admission import AdmissionController
from repro.serving.breaker import CircuitBreaker, OPEN
from repro.serving.bulkhead import Bulkhead
from repro.serving.cancel import CancelToken
from repro.serving.ingest import IngestController, IngestPolicy
from repro.serving.partition_cache import CachePolicy, PartitionCache
from repro.serving.replica import ACTIVE, FabricReplica, PlanCache
from repro.serving.request import Outcome, Request
from repro.serving.shard import (
    FleetManager,
    FleetPolicy,
    ShardCoordinator,
    ShardPolicy,
    ShardedExecution,
)
from repro.serving.workload import Job, ServingWorkload, derive_seed


@dataclass
class ServingPolicy:
    """Knobs for the serving tier, all deterministic."""

    queue_depth: int = 64                   # admission bound
    per_tenant: Optional[int] = None        # bulkhead: concurrent/tenant
    class_limits: Optional[Dict[str, int]] = None  # bulkhead: per class
    breaker_threshold: int = 3              # consecutive faults to open
    breaker_cooldown: int = 20_000          # cycles open before half-open
    retries: int = 1                        # re-dispatches after a fault
    hedge_after: Optional[int] = None       # cycles; None disables hedging
    hedge_jitter: float = 0.25              # +fraction of hedge_after
    shard: Optional[ShardPolicy] = None     # scatter/gather; None disables
    fleet: Optional[FleetPolicy] = None     # elasticity; None = fixed pool
    scheduler: str = "event"                # engine scheduler for sim jobs
    #: Semantic partition cache tier for predicated shardable queries
    #: (:mod:`repro.serving.partition_cache`); None disables.
    cache: Optional[CachePolicy] = None
    #: Live-ingestion write path (:mod:`repro.serving.ingest`); None keeps
    #: the runtime read-only over frozen snapshots.
    ingest: Optional[IngestPolicy] = None


@dataclass(slots=True)
class _Attempt:
    """One dispatched execution of a request on one replica."""

    replica: FabricReplica
    start: int
    cycles: int
    status: str                  # 'ok' | 'deadline' | 'fault' | 'error'
    error: Optional[BaseException]
    digest: Optional[Tuple]

    @property
    def own_finish(self) -> int:
        return self.start + self.cycles


@dataclass(slots=True)
class _Execution:
    """A resolved dispatch: all legs, plus the winning one."""

    request: Request
    attempts: List[_Attempt]
    winner: _Attempt
    finish: int
    hedged: bool


class ServingRuntime:
    """Deterministic concurrent serving over a pool of fabric replicas."""

    def __init__(self, workload: Optional[ServingWorkload] = None, *,
                 n_replicas: int = 4,
                 policy: Optional[ServingPolicy] = None,
                 seed: int = 0,
                 flaky_replicas: Tuple[int, ...] = (),
                 fault_rate: float = 1.0,
                 kill_schedule: Optional[Dict[int, int]] = None,
                 invalidation_schedule: Optional[List[int]] = None,
                 corruption_schedule: Optional[List[int]] = None,
                 ingest_schedule: Optional[List[Tuple[int, int]]] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.workload = workload if workload is not None else ServingWorkload()
        self.policy = policy if policy is not None else ServingPolicy()
        if self.policy.scheduler != "event":
            # Engine-scheduler substitution is transparent to serving:
            # SimStats and fault/deadline cycles are bit-identical across
            # schedulers, so only wall-clock changes.  Applied here (not
            # per-job) so a policy swap needs no workload rebuild.
            for job in self.workload.jobs.values():
                if getattr(job, "kind", None) == "sim":
                    job.scheduler = self.policy.scheduler
        self.seed = seed
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._flaky = frozenset(flaky_replicas)
        self._fault_rate = fault_rate
        #: replica index -> virtual cycle of its permanent death (chaos).
        self._kills = dict(kill_schedule) if kill_schedule else {}
        self.replicas: List[FabricReplica] = [
            self._make_replica(i) for i in range(n_replicas)]
        self.admission = AdmissionController(capacity=self.policy.queue_depth)
        self.bulkhead = Bulkhead(per_tenant=self.policy.per_tenant,
                                 class_limits=self.policy.class_limits)
        self.fleet = FleetManager(self, self.policy.fleet)
        self.coordinator = ShardCoordinator(self)
        self.partition_cache = (
            PartitionCache(self.policy.cache, metrics=self.metrics)
            if self.policy.cache is not None else None)
        self.outcomes: List[Outcome] = []
        self.clock = 0
        self.submitted = 0
        self._events: List[Tuple[int, int, str, object]] = []
        self._seq = 0
        self._kicks: set = set()
        for cycle in sorted(set(self._kills.values())):
            # Wake the dispatcher at every scheduled death so the fleet
            # reacts at the kill cycle, not at the next organic event.
            self._kicks.add(cycle)
            self._push(cycle, "kick", None)
        # Chaos churn against the partition cache: scheduled dataset
        # invalidations (version bumps) and fragment corruptions, in
        # virtual time so every run is bit-reproducible.
        for cycle in sorted(invalidation_schedule or []):
            self._push(cycle, "invalidate", None)
        for i, cycle in enumerate(sorted(corruption_schedule or [])):
            self._push(cycle, "corrupt", derive_seed(self.seed, 0xC0, i))
        # The write path: seeded append batches land as first-class events
        # and the controller turns memtable pressure into background
        # maintenance requests competing under admission control.
        self.ingest = (IngestController(self, self.policy.ingest)
                       if self.policy.ingest is not None else None)
        if ingest_schedule:
            if self.ingest is None:
                raise ValueError(
                    "ingest_schedule requires ServingPolicy.ingest")
            for cycle, n_rows in sorted(ingest_schedule):
                self._push(cycle, "ingest", n_rows)

    def _make_replica(self, index: int, spawned_at: int = 0) -> FabricReplica:
        fault_seed = (derive_seed(self.seed, index)
                      if index in self._flaky else None)
        return FabricReplica(
            f"fab{index}", index,
            breaker=CircuitBreaker(
                name=f"fab{index}",
                threshold=self.policy.breaker_threshold,
                cooldown=self.policy.breaker_cooldown),
            fault_seed=fault_seed, fault_rate=self._fault_rate,
            plan_cache=PlanCache(metrics=self.metrics),
            killed_at=self._kills.get(index), spawned_at=spawned_at)

    def _spawn_replica(self, now: int) -> FabricReplica:
        """Grow the fleet by one fresh replica (elasticity)."""
        replica = self._make_replica(len(self.replicas), spawned_at=now)
        replica.busy_until = now
        self.replicas.append(replica)
        return replica

    # -- event plumbing ----------------------------------------------------

    def _push(self, time: int, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (time, self._seq, kind, payload))
        self._seq += 1

    def submit(self, request: Request) -> None:
        """Schedule a request's arrival (before or during :meth:`run`)."""
        self.submitted += 1
        self._push(request.arrival, "arrive", request)

    def run(self) -> List[Outcome]:
        """Drain every event; return all outcomes (one per request)."""
        while self._events:
            time, __, kind, payload = heapq.heappop(self._events)
            self.clock = max(self.clock, time)
            if kind == "arrive":
                self._on_arrival(payload, time)
            elif kind == "complete":
                self._on_complete(payload, time)
            elif kind == "invalidate":
                if self.partition_cache is not None:
                    self.partition_cache.invalidate()
            elif kind == "corrupt":
                if self.partition_cache is not None:
                    self.partition_cache.corrupt(payload)
            elif kind == "ingest":
                if self.ingest is not None:
                    self.ingest.on_ingest(payload, time)
            else:                       # 'kick': wake the dispatcher
                self._kicks.discard(time)
            self._dispatch(time)
        return self.outcomes

    # -- arrival + admission -----------------------------------------------

    def _on_arrival(self, request: Request, now: int) -> None:
        if self.ingest is not None:
            # Snapshot pinning: the version a query admits against is the
            # version it is golden-checked against, no matter what
            # flushes/compactions publish while it waits or runs.
            self.ingest.pin(request)
        self.metrics.counter("serving.arrivals").inc()
        self.metrics.histogram("serving.queue_depth").observe(
            self.admission.depth())
        for victim, error in self.admission.offer(request, now):
            self._finalize(Outcome(
                victim, "shed", now, error=error, attempts=victim.attempts))

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, now: int) -> None:
        self.fleet.autoscale(now)
        if self.ingest is not None:
            self.ingest.escalate(now)
        for request in self.admission.expire(now):
            self._finalize(Outcome(
                request, "deadline", now,
                error=DeadlineExceeded(
                    f"request {request.id} expired in queue at cycle {now}",
                    tenant=request.tenant, query=request.query,
                    request_id=request.id, deadline=request.deadline,
                    cycle=now),
                attempts=request.attempts))
        bulkhead_skipped: set = set()

        def eligible(request: Request) -> bool:
            if self.bulkhead.admits(request):
                return True
            if request.id not in bulkhead_skipped:
                # One skip per blocked request per dispatch pass: the
                # metric counts decisions, not queue re-scans.
                bulkhead_skipped.add(request.id)
                self.bulkhead.rejections += 1
            return False

        while True:
            free = [r for r in self.replicas if r.free_at(now)]
            if not free:
                if not self.fleet.active(now):
                    self._drain_fleet_lost(now)
                return
            request = self.admission.take(eligible=eligible)
            if request is None:
                return
            job = self._job_for(request)
            if self._cache_policy(job) is not None:
                if not self.coordinator.placeable(now):
                    self._no_replica(request, now)
                    return
                self.bulkhead.acquire(request)
                self._start_cached(request, job, now)
                continue
            if self._shard_policy(job) is not None:
                if not self.coordinator.placeable(now):
                    # Breakers have every serviceable replica cooling
                    # down: same fail-fast/requeue decision as the
                    # whole-query path.
                    self._no_replica(request, now)
                    return
                self.bulkhead.acquire(request)
                self._start_sharded(request, job, now)
                continue
            replica = None
            for r in free:
                if r.breaker.allow(now):
                    replica = r
                    break
            if replica is None:
                self._no_replica(request, now)
                return
            self.bulkhead.acquire(request)
            self._start(request, replica, now)

    def _shard_policy(self, job: Job) -> Optional[ShardPolicy]:
        """The shard policy governing ``job``, or None for the whole-query
        path (non-shardable job, no policy, or fan-out of one)."""
        pol = self.policy.shard
        if pol is None or pol.n_shards <= 1:
            return None
        return pol if getattr(job, "shardable", False) else None

    def _cache_policy(self, job: Job) -> Optional[CachePolicy]:
        """The partition-cache policy governing ``job``, or None for
        jobs the semantic cache cannot reason about (no canonical
        predicate) or when the tier is disabled."""
        pol = self.policy.cache
        if pol is None or self.partition_cache is None:
            return None
        return pol if getattr(job, "cacheable", False) else None

    def _drain_fleet_lost(self, now: int) -> None:
        """Every replica is dead (or pulled from service) and the fleet
        cannot grow: queued requests would be stranded forever, so each
        gets a typed failure now — conservation over optimism."""
        while True:
            request = self.admission.take()
            if request is None:
                return
            self.metrics.counter("serving.circuit_rejections").inc()
            self._finalize(Outcome(
                request, "failed", now,
                error=CircuitOpen(
                    f"no live replica left in the fleet for request "
                    f"{request.id} at cycle {now}",
                    tenant=request.tenant, query=request.query,
                    request_id=request.id),
                attempts=request.attempts))

    def _no_replica(self, request: Request, now: int) -> None:
        """Every free replica's breaker refused the request."""
        def available_at(r: FabricReplica) -> int:
            if r.breaker.state == OPEN:
                return max(r.busy_until, r.breaker.retry_at())
            return r.busy_until

        live = [r for r in self.replicas if r.serviceable(now)]
        if not live:
            self.metrics.counter("serving.circuit_rejections").inc()
            self._finalize(Outcome(
                request, "failed", now,
                error=CircuitOpen(
                    f"no live replica left in the fleet for request "
                    f"{request.id} at cycle {now}",
                    tenant=request.tenant, query=request.query,
                    request_id=request.id),
                attempts=request.attempts))
            return
        binding = min(live, key=available_at)
        earliest = available_at(binding)
        if request.deadline is not None and earliest >= request.deadline:
            # Fail fast, typed: waiting out the breakers would blow the
            # deadline anyway.  The error comes from the replica whose
            # availability bounds the wait, stamped with that cycle.
            self.metrics.counter("serving.circuit_rejections").inc()
            self._finalize(Outcome(
                request, "failed", now,
                error=binding.breaker.error(
                    now, tenant=request.tenant, query=request.query,
                    request_id=request.id, retry_at=earliest),
                attempts=request.attempts))
            return
        self.admission.requeue(request)
        # Always schedule a future wake-up: a requeued request must never
        # be stranded in a drained event heap, even when ``earliest`` has
        # already passed (a mid-recovery replica whose busy_until elapsed).
        wake = max(earliest, now + 1)
        if wake not in self._kicks:
            self._kicks.add(wake)
            self._push(wake, "kick", None)

    # -- execution ---------------------------------------------------------

    def _job_for(self, request: Request) -> Job:
        """The executable for ``request`` — live-ingestion requests (taxi
        flights pinned to a snapshot version, maintenance work) resolve
        through the ingest controller; everything else is the catalog."""
        if self.ingest is not None:
            job = self.ingest.job_for(request)
            if job is not None:
                return job
        return self.workload.job(request.query)

    def golden_of(self, request: Request):
        """The golden reference for ``request`` — for live-dataset
        queries, the golden *of the request's pinned snapshot version*."""
        if self.ingest is not None:
            golden = self.ingest.golden_of(request)
            if golden is not None:
                return golden
        return self.workload.golden(request.query)

    def _execute_attempt(self, request: Request, replica: FabricReplica,
                         start: int) -> _Attempt:
        job = self._job_for(request)
        golden = self.golden_of(request)
        budget = (None if request.deadline is None
                  else request.deadline - start)
        token = CancelToken(budget, tenant=request.tenant,
                            query=request.query, request_id=request.id)
        injector = replica.injector_for(job, request, horizon=golden.cycles)
        replica.jobs_run += 1
        try:
            cycles, digest = replica.execute(job, token=token,
                                             injector=injector)
            status, error = "ok", None
        except DeadlineExceeded as err:
            cycles, digest = err.cycle, None
            status, error = "deadline", err
        except Cancelled as err:
            cycles, digest = err.cycle, None
            status, error = "error", err
        except FaultError as err:
            replica.faults_surfaced += 1
            cycles = err.cycle if err.cycle is not None else golden.cycles
            digest, status, error = None, "fault", err
        except SimulationError as err:
            cycles = err.cycle if err.cycle is not None else golden.cycles
            digest, status, error = None, "error", err
        cycles = max(1, cycles if cycles is not None else golden.cycles)
        if budget is not None:
            cycles = min(cycles, budget)
        if (replica.killed_at is not None
                and start + cycles > replica.killed_at):
            # The replica dies mid-run: whatever the attempt was going to
            # report, what actually surfaces is a loss at the kill cycle.
            cycles = max(1, replica.killed_at - start)
            digest = None
            status = "fault"
            error = ReplicaLost(
                f"replica {replica.name} died at cycle "
                f"{replica.killed_at} mid-request {request.id}",
                kind="replica_lost", site=replica.name,
                cycle=replica.killed_at)
            replica.faults_surfaced += 1
        return _Attempt(replica, start, cycles, status, error, digest)

    def _start(self, request: Request, replica: FabricReplica,
               now: int) -> None:
        request.attempts += 1
        self.metrics.counter("serving.dispatches").inc()
        self.metrics.histogram("serving.queue_wait").observe(
            now - request.arrival)
        primary = self._execute_attempt(request, replica, now)
        attempts = [primary]
        hedged = False
        pol = self.policy
        job = self._job_for(request)
        if pol.hedge_after is not None and job.kind == "sim":
            jitter = random.Random(
                derive_seed(self.seed, request.id, 0xEDE)).random()
            cutoff = pol.hedge_after + int(
                pol.hedge_after * pol.hedge_jitter * jitter)
            if (primary.cycles > cutoff
                    and (request.deadline is None
                         or now + cutoff < request.deadline)):
                hedge_start = now + cutoff
                secondary_replica = next(
                    (r for r in self.replicas
                     if r is not replica and r.free_at(hedge_start)
                     and r.breaker.allow(hedge_start)), None)
                if secondary_replica is not None:
                    hedged = True
                    self.metrics.counter("serving.hedges_launched").inc()
                    attempts.append(self._execute_attempt(
                        request, secondary_replica, hedge_start))
        winner = self._resolve(attempts)
        finish = winner.own_finish
        for attempt in attempts:
            # Losers are cancelled when the winner responds; every leg's
            # replica frees at the resolution cycle.
            attempt.replica.busy_until = min(attempt.own_finish, finish)
        if hedged and winner is not primary:
            self.metrics.counter("serving.hedges_won").inc()
        self._push(finish, "complete",
                   _Execution(request, attempts, winner, finish, hedged))

    @staticmethod
    def _resolve(attempts: List[_Attempt]) -> _Attempt:
        """First successful leg wins; with no success, first responder."""
        ok = [a for a in attempts if a.status == "ok"]
        pool = ok if ok else attempts
        return min(pool, key=lambda a: a.own_finish)

    def _start_sharded(self, request: Request, job: Job, now: int) -> None:
        """Scatter/gather dispatch: the coordinator resolves the whole
        shard fan-out in virtual time; one completion event lands the
        gathered verdict."""
        request.attempts += 1
        self.metrics.counter("serving.dispatches").inc()
        self.metrics.counter("serving.shards.dispatched").inc()
        self.metrics.histogram("serving.queue_wait").observe(
            now - request.arrival)
        ex = self.coordinator.run(request, job, now)
        self._push(ex.finish, "complete", ex)

    def _start_cached(self, request: Request, job: Job, now: int) -> None:
        """Cache-tier dispatch: split the query's partition set into
        cached fragments and a residual set, scatter only the residual,
        and settle one gathered completion event."""
        request.attempts += 1
        self.metrics.counter("serving.dispatches").inc()
        self.metrics.counter("serving.partition_cache.dispatched").inc()
        self.metrics.histogram("serving.queue_wait").observe(
            now - request.arrival)
        pol = self._cache_policy(job)
        K = pol.residual.n_shards
        parts = job.partition_set(K)
        decision = self.partition_cache.lookup(request.tenant, job, K,
                                               parts)
        ex = self.coordinator.run(
            request, job, now, policy=pol.residual, parts=parts,
            prefilled=decision.fragments,
            extra_cycles=decision.lookup_cycles, cached=decision)
        self._push(ex.finish, "complete", ex)

    # -- completion --------------------------------------------------------

    def _on_complete(self, ex, now: int) -> None:
        if isinstance(ex, ShardedExecution):
            self._on_shard_complete(ex, now)
            return
        request, winner = ex.request, ex.winner
        for attempt in ex.attempts:
            if attempt.own_finish > ex.finish:
                # Cancelled mid-flight: its own verdict never materialized,
                # so it must not feed the breaker — but a half-open probe
                # slot it was admitted through must be handed back, or the
                # breaker refuses all traffic forever.
                self.metrics.counter("serving.hedge_cancelled").inc()
                attempt.replica.breaker.probe_abandoned()
                continue
            if attempt.status == "ok":
                attempt.replica.breaker.record_success(attempt.own_finish)
            elif attempt.status in ("fault", "error"):
                attempt.replica.breaker.record_failure(attempt.own_finish)
            else:
                # 'deadline' says nothing about replica health: release any
                # probe slot without moving the state machine.
                attempt.replica.breaker.probe_abandoned()
        self.bulkhead.release(request)
        if winner.status == "ok":
            golden = self.golden_of(request)
            if winner.digest != golden.digest:
                self.metrics.counter("serving.wrong_results").inc()
                self._finalize(Outcome(
                    request, "wrong_result", now, error=None,
                    replica=winner.replica.name, cycles=winner.cycles,
                    attempts=request.attempts, hedged=ex.hedged))
                return
            self.metrics.histogram(
                f"serving.latency.{request.klass}").observe(
                    now - request.arrival)
            self.metrics.histogram("serving.exec_cycles").observe(
                winner.cycles)
            self._finalize(Outcome(
                request, "ok", now, error=None,
                replica=winner.replica.name, cycles=winner.cycles,
                attempts=request.attempts, hedged=ex.hedged))
            return
        if winner.status == "deadline":
            self._finalize(Outcome(
                request, "deadline", now, error=winner.error,
                replica=winner.replica.name, cycles=winner.cycles,
                attempts=request.attempts, hedged=ex.hedged))
            return
        # fault / error
        if (winner.status == "fault"
                and request.attempts <= self.policy.retries
                and (request.deadline is None or now < request.deadline)):
            self.metrics.counter("serving.retries").inc()
            self.admission.requeue(request)
            return
        self._finalize(Outcome(
            request, "failed", now, error=winner.error,
            replica=winner.replica.name, cycles=winner.cycles,
            attempts=request.attempts, hedged=ex.hedged))

    def _on_shard_complete(self, ex: ShardedExecution, now: int) -> None:
        request = ex.request
        for leg in ex.legs:
            if leg.own_finish > leg.resolved:
                # Hedge loser cancelled mid-flight: no verdict, but hand
                # back any half-open probe slot it was admitted through.
                self.metrics.counter("serving.hedge_cancelled").inc()
                leg.replica.breaker.probe_abandoned()
            elif leg.status == "ok":
                leg.replica.breaker.record_success(leg.own_finish)
            elif leg.status in ("fault", "error"):
                leg.replica.breaker.record_failure(leg.own_finish)
            else:
                leg.replica.breaker.probe_abandoned()
        self.bulkhead.release(request)
        if ex.lost:
            self.metrics.counter("serving.shards.lost").inc(len(ex.lost))
        K = ex.plan.n_shards
        cycles = ex.finish - ex.dispatched
        hedged = ex.hedges > 0
        decision = ex.cached
        cached = ""
        if decision is not None:
            cached = decision.disposition
            replica = f"cache[{K}]"
            # Harvest every residual fragment that completed — the
            # request's final status doesn't matter, a computed fragment
            # is valid on its own.  The cache drops it if the dataset was
            # invalidated after the lookup (late-insert race).
            job = self.workload.job(request.query)
            for k in sorted(ex.shard_digests):
                self.partition_cache.insert(
                    request.tenant, job, K, k, ex.shard_digests[k][1],
                    ex.plan.ref_cycles[k], decision.version_at(k))
        else:
            replica = f"shards[{K}]"
        if ex.status == "ok":
            golden = self.golden_of(request)
            if ex.digest != golden.digest:
                self.metrics.counter("serving.wrong_results").inc()
                self._finalize(Outcome(
                    request, "wrong_result", now, error=None,
                    replica=replica, cycles=cycles,
                    attempts=request.attempts, hedged=hedged, shards=K,
                    cached=cached))
                return
            self.metrics.histogram(
                f"serving.latency.{request.klass}").observe(
                    now - request.arrival)
            self.metrics.histogram("serving.exec_cycles").observe(cycles)
            self._finalize(Outcome(
                request, "ok", now, error=None, replica=replica,
                cycles=cycles, attempts=request.attempts, hedged=hedged,
                shards=K, cached=cached))
            return
        if ex.status == "partial":
            self._finalize(Outcome(
                request, "partial", now, error=ex.error, replica=replica,
                cycles=cycles, attempts=request.attempts, hedged=hedged,
                shards=K, partial=ex.partial, cached=cached))
            return
        # 'deadline' | 'failed' — the shard-level retries already spent
        # the containment budget; no request-level requeue on top.
        self._finalize(Outcome(
            request, ex.status, now, error=ex.error, replica=replica,
            cycles=cycles, attempts=request.attempts, hedged=hedged,
            shards=K, cached=cached))

    def _finalize(self, outcome: Outcome) -> None:
        self.metrics.counter(f"serving.outcome.{outcome.status}").inc()
        self.outcomes.append(outcome)
        if self.ingest is not None:
            # Maintenance publication/resubmission happens here — on the
            # request's single final disposition, never mid-flight.
            self.ingest.on_outcome(outcome)

    # -- reporting ---------------------------------------------------------

    def report(self) -> Dict[str, object]:
        """Plain-dict summary: outcome mix, latency quantiles, breakers."""
        n = max(1, self.submitted)
        counters = self.metrics.counters

        def count(name: str) -> int:
            c = counters.get(name)
            return c.value if c is not None else 0

        latency: Dict[str, object] = {}
        for name, hist in sorted(self.metrics.histograms.items()):
            if not name.startswith("serving.latency."):
                continue
            latency[name.rsplit(".", 1)[1]] = {
                "n": hist.count,
                "mean": round(hist.mean, 1),
                "p50": hist.percentile(0.5),
                "p99": hist.percentile(0.99),
            }
        shed = count("serving.outcome.shed")
        return {
            "requests": self.submitted,
            "outcomes": {
                status: count(f"serving.outcome.{status}")
                for status in ("ok", "shed", "deadline", "failed",
                               "partial", "wrong_result")},
            "shed_rate": round(shed / n, 4),
            "latency_cycles": latency,
            "hedges": {
                "launched": count("serving.hedges_launched"),
                "won": count("serving.hedges_won"),
                "cancelled": count("serving.hedge_cancelled")},
            "retries": count("serving.retries"),
            "circuit_rejections": count("serving.circuit_rejections"),
            "shards": {
                "dispatched": count("serving.shards.dispatched"),
                "legs": count("serving.shards.legs"),
                "hedges_launched": count("serving.shards.hedges"),
                "hedges_won": count("serving.shards.hedges_won"),
                "retries": count("serving.shards.retries"),
                "lost": count("serving.shards.lost"),
                "partials": count("serving.outcome.partial")},
            "fleet": {
                "size": len(self.replicas),
                "active": sum(1 for r in self.replicas
                              if r.state == ACTIVE),
                "states": {r.name: r.state for r in self.replicas},
                "grown": self.fleet.grows,
                "shrunk": self.fleet.shrinks,
                "quarantined": self.fleet.quarantines,
                "revived": self.fleet.revivals,
                "killed": count("serving.fleet.killed")},
            "breakers": {
                r.name: {
                    "state": r.breaker.state,
                    "opens": sum(1 for __, s in r.breaker.transitions
                                 if s == OPEN),
                    "jobs_run": r.jobs_run,
                    "faults": r.faults_surfaced}
                for r in self.replicas},
            "queue": {"admitted": self.admission.admitted,
                      "shed": self.admission.shed,
                      "bulkhead_skips": self.bulkhead.rejections},
            "partition_cache": (self.partition_cache.report()
                                if self.partition_cache is not None
                                else None),
            "ingest": (self.ingest.report() if self.ingest is not None
                       else None),
        }

    def check(self) -> List[str]:
        """Internal-consistency violations (empty when healthy)."""
        problems: List[str] = []
        if len(self.outcomes) != self.submitted:
            problems.append(
                f"{self.submitted} requests submitted but "
                f"{len(self.outcomes)} outcomes recorded")
        seen: set = set()
        for outcome in self.outcomes:
            if outcome.request.id in seen:
                problems.append(
                    f"request {outcome.request.id} has multiple outcomes")
            seen.add(outcome.request.id)
            if outcome.status == "wrong_result":
                problems.append(
                    f"request {outcome.request.id} served a wrong result")
            if outcome.status != "ok" and not isinstance(
                    outcome.error, ReproError):
                problems.append(
                    f"request {outcome.request.id} failed without a typed "
                    f"ReproError: {outcome.error!r}")
            if outcome.finish < outcome.request.arrival:
                problems.append(
                    f"request {outcome.request.id} finished before arrival")
            if outcome.status == "partial":
                partial = outcome.partial
                if partial is None:
                    problems.append(
                        f"request {outcome.request.id} is partial without "
                        f"a PartialResult payload")
                elif not 0.0 < partial.coverage < 1.0:
                    problems.append(
                        f"request {outcome.request.id} partial coverage "
                        f"{partial.coverage} outside (0, 1)")
            elif outcome.partial is not None:
                problems.append(
                    f"request {outcome.request.id} carries a partial "
                    f"payload on a {outcome.status!r} outcome")
        return problems
