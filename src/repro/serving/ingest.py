"""Live ingestion: the serving runtime's write path (ROADMAP item 5).

Until this module every byte of serving traffic was read-only over frozen
snapshots.  Here the paper's §IV-B LSM-over-immutable-B-trees machinery
finally earns its keep under production shapes: appends flow into a
per-dataset memtable, a background **flush** job bulk-loads the claimed
batch into a fresh immutable B-tree off to the side, a background
**compaction** job merges one ladder-violating tree pair — and each
becomes visible only through one atomic, versioned head-pointer
publication in the completion handler.  A maintenance leg lost to a
mid-run replica kill therefore publishes *nothing*: the work is retried
on another replica or abandoned whole, never half-installed.

**Snapshot pinning rule.**  Every query request against a live dataset is
stamped at arrival with the latest *published* version and executes
against exactly that :class:`~repro.structures.lsm.LsmSnapshot`, however
many flushes and compactions land mid-flight.  Appends become visible
only at flush publication, so a version's content is a pure function of
the flushed row prefix — which is what makes the golden digest of a
pinned version well-defined and lets the differential fuzz suite replay
any interleaving serially.  The partition cache and the per-replica plan
cache key on the snapshot version, so a write can change a query's
latency but never its answer.

**Compaction as admission-controlled work.**  Maintenance requests enter
the normal admission queue in the new lowest-priority ``compaction``
class: query traffic displaces them under load (starvation is *allowed*
and measured — the memtable's high-water mark is the symptom), and a
deadline-based anti-starvation escalation promotes a request that has
waited too long to ``batch`` and then ``interactive`` so the backlog is
bounded rather than unbounded.  All of it is attributed in
:meth:`IngestController.report`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.perf.cost_model import CostModel
from repro.serving.request import Request
from repro.serving.workload import (
    Golden,
    Job,
    LoweredPlan,
    TAXI_NAMES,
    derive_seed,
    settle_plan,
    taxi_flight_jobs,
)
from repro.structures.common import StructureEvents
from repro.structures.hashing import radix_of
from repro.structures.lsm import LsmSnapshot, LsmTree, merge_trees

#: Maintenance request ids start here — far above both organic traffic
#: and the benchmarks' warmup streams, so id-based filters stay valid.
MAINTENANCE_ID_BASE = 5_000_000

#: System tenant maintenance requests run under (not a real tenant, so
#: per-tenant bulkheads and cache quotas never mix it with user traffic).
SYSTEM_TENANT = "__system__"


@dataclass
class IngestPolicy:
    """Knobs for the live-ingestion write path, all deterministic."""

    #: Memtable flush threshold, in rows.  The starvation bound the CI
    #: gate enforces is ``memtable_limit_factor * batch_size``.
    batch_size: int = 256
    #: Documented starvation bound: the memtable (buffered + claimed
    #: in-flight rows) must never exceed this multiple of ``batch_size``.
    memtable_limit_factor: int = 4
    #: Pickup-zone key space of the taxi dataset.
    n_zones: int = 64
    #: Rows seeded (and eagerly flushed) before serving starts.
    initial_rows: int = 2048
    #: Anti-starvation escalation: a queued maintenance request that has
    #: waited ``escalate_after`` cycles since first submission is promoted
    #: to ``batch``; at twice that, to ``interactive``.
    escalate_after: int = 12_000
    #: Cycles a shed maintenance request waits before resubmission.
    resubmit_delay: int = 400
    #: Resubmissions after shed/failure before a compaction is abandoned
    #: (flushes return their rows to the memtable instead — appends are
    #: never lost, they just wait for the next flush attempt).
    max_resubmits: int = 4


def _make_row(rng: random.Random, trip_id: int,
              n_zones: int) -> Tuple[int, Tuple[int, int, int, int]]:
    """One taxi trip record: ``zone -> (trip_id, hour, dist_dm, fare)``.

    All integers so digests are exact; a pure function of the rng stream.
    """
    zone = rng.randrange(n_zones)
    hour = rng.randrange(24)
    dist_dm = rng.randrange(5, 300)            # decimiles
    fare_cents = 250 + dist_dm * rng.randrange(8, 15)
    return zone, (trip_id, hour, dist_dm, fare_cents)


class LiveDataset:
    """One live-ingested LSM dataset plus its published version history.

    ``snapshots`` maps every published version to its immutable handle;
    ``version_log`` records ``(version, kind, rows_flushed)`` per
    publication so the differential fuzz suite can reconstruct any
    version's content from the append-order ``row_log`` prefix alone.
    """

    def __init__(self, name: str, policy: IngestPolicy, seed: int):
        self.name = name
        self.policy = policy
        self.seed = seed
        self.lsm = LsmTree(batch_size=policy.batch_size)
        self.key = ("taxi", name, seed, policy.n_zones)
        self.events = self.lsm.events
        #: Append-order log of every ingested row (seed rows included).
        self.row_log: List[Tuple[int, Tuple]] = []
        self.rows_flushed = 0     # rows visible in the latest version
        self.rows_claimed = 0     # rows handed to an in-flight flush
        self.snapshots: Dict[int, LsmSnapshot] = {}
        self.version_log: List[Tuple[int, str, int]] = []
        self.max_memtable = 0
        self._seed_initial()

    def _seed_initial(self) -> None:
        """Pre-serving data load: eager flushes, one published base
        version (intermediate seeding versions are never pinned)."""
        rng = random.Random(derive_seed(self.seed, 0x7A11))
        for i in range(self.policy.initial_rows):
            row = _make_row(rng, i, self.policy.n_zones)
            self.row_log.append(row)
            self.lsm.insert(*row)
        self.lsm.flush()
        self.rows_flushed = self.rows_claimed = len(self.row_log)
        self._record("seed")

    def _record(self, kind: str) -> None:
        snap = self.lsm.snapshot()
        if snap.buffer:
            # Published handles exclude the memtable: appends become
            # visible at flush publication only.
            snap = LsmSnapshot(version=snap.version, trees=snap.trees)
        self.snapshots[snap.version] = snap
        self.version_log.append((snap.version, kind, self.rows_flushed))

    # -- reads -------------------------------------------------------------

    @property
    def current_version(self) -> int:
        return self.lsm.version

    def published(self) -> LsmSnapshot:
        """The latest published handle (what new arrivals pin)."""
        return self.snapshots[self.lsm.version]

    def content_digest(self, version: int) -> Tuple:
        """Order-independent content of one published version."""
        snap = self.snapshots[version]
        rows = []
        for tree in snap.trees:
            rows.extend(tree.leaves())
        return tuple(sorted(rows))

    def prefix_digest(self, n_rows: int) -> Tuple:
        """What :meth:`content_digest` must equal for a version whose
        ``version_log`` entry says ``n_rows`` rows were flushed — computed
        from the append log alone, no LSM involved (the fuzz oracle)."""
        return tuple(sorted(self.row_log[:n_rows]))

    # -- writes ------------------------------------------------------------

    def append_batch(self, n_rows: int, batch_seed: int) -> List[int]:
        """Generate and buffer one seeded ingest batch; returns the sorted
        set of zone keys the batch touched (for partition-scoped cache
        invalidation)."""
        rng = random.Random(batch_seed)
        zones = set()
        base = len(self.row_log)
        for i in range(n_rows):
            row = _make_row(rng, base + i, self.policy.n_zones)
            self.row_log.append(row)
            self.lsm.append(*row)
            zones.add(row[0])
        self.note_memtable()
        return sorted(zones)

    def memtable_rows(self) -> int:
        """Unpublished rows: buffered plus claimed by an in-flight flush."""
        return (self.lsm.buffered()
                + (self.rows_claimed - self.rows_flushed))

    def note_memtable(self) -> None:
        self.max_memtable = max(self.max_memtable, self.memtable_rows())


class MaintenanceJob(Job):
    """Base of the background job class: work precomputed off to the
    side, priced by the cost model, published only on completion.

    ``execute`` replays the precomputed ``(cycles, digest)`` verdict —
    fully deterministic, so retries on other replicas are bit-identical
    and the runtime's golden check holds trivially.  The *mutation* is
    not here: :meth:`IngestController._on_maintenance_ok` publishes.
    """

    kind = "maintenance"

    def __init__(self, name: str, dataset: LiveDataset,
                 delta: StructureEvents, rows: int, digest: Tuple,
                 created: int):
        super().__init__(name)
        self.dataset = dataset
        self.delta = delta
        model = CostModel()
        self.cycles = max(1, int(round(
            model.event_cycles(delta, rows=rows).cycles
            + model.stage_overhead_cycles)))
        self.digest = digest
        #: First-submission cycle — preserved across resubmits so
        #: escalation deadlines accumulate over the job's whole wait.
        self.created = created
        self.resubmits = 0
        #: This submission already jumped to the head of its queue under
        #: memtable pressure (reset per submission in ``_submit``).
        self.boosted = False

    def execute(self, token=None, injector=None) -> Tuple[int, Tuple]:
        return settle_plan(self.name, (self.name,), (float(self.cycles),),
                           self.digest, token)


class FlushJob(MaintenanceJob):
    """Publish the claimed memtable batch as a fresh immutable tree."""

    def __init__(self, dataset: LiveDataset, batch: List[Tuple[int, Tuple]],
                 created: int, sequence: int):
        self.batch = batch
        tree, delta = dataset.lsm.build_batch_tree(list(batch))
        self.tree = tree
        digest = ("flush", dataset.name, sequence, len(batch),
                  tuple(sorted(batch)))
        super().__init__(f"flush:{dataset.name}:{sequence}", dataset,
                         delta, len(batch), digest, created)


class CompactionJob(MaintenanceJob):
    """Merge one ladder-violating adjacent tree pair, functionally."""

    def __init__(self, dataset: LiveDataset, a, b, created: int,
                 sequence: int):
        self.a = a
        self.b = b
        merged, delta = merge_trees(a, b, dataset.lsm.fanout)
        self.merged = merged
        digest = ("compaction", dataset.name, sequence, len(a), len(b),
                  len(merged))
        super().__init__(f"compact:{dataset.name}:{sequence}", dataset,
                         delta, len(merged), digest, created)


class IngestController:
    """Wires the write path into one :class:`ServingRuntime`.

    Owns the live dataset, registers the taxi flight catalog, pins
    arriving queries to the published version, turns memtable pressure
    into admission-controlled maintenance requests (at most one in
    flight per dataset, so publications are strictly ordered), publishes
    completed maintenance atomically, and escalates starved requests.
    """

    def __init__(self, runtime, policy: IngestPolicy):
        self.runtime = runtime
        self.policy = policy
        self.dataset = LiveDataset("nyc", policy, runtime.seed)
        self.flights: Dict[str, Job] = {}
        for flight in taxi_flight_jobs(self.dataset):
            self.flights[flight.name] = flight
            runtime.workload.add(flight)
        self._goldens: Dict[Tuple[str, int], Golden] = {}
        #: request id -> (request, job) for every live maintenance request.
        self._live: Dict[int, Tuple[Request, MaintenanceJob]] = {}
        #: request id -> golden for *completed* maintenance requests, so
        #: post-hoc invariant checks can still resolve them.
        self._done: Dict[int, Golden] = {}
        self._next_id = MAINTENANCE_ID_BASE
        self._sequence = 0
        self._batches = 0
        #: One in-flight request per maintenance kind.  A flush and a
        #: compaction commute safely — the flush installs at the head of
        #: the tree list, the merge CAS matches its inputs by adjacency —
        #: so memtable pressure never waits behind a starved compaction.
        self._outstanding: Dict[str, Optional[int]] = {
            "flush": None, "compaction": None}
        #: (id(a), id(b)) pairs of abandoned merges — never re-enqueued
        #: (the trees stay alive in pinned snapshots, so ids are stable).
        self._abandoned_pairs: set = set()
        self.counts: Dict[str, int] = {
            "batches": 0, "rows": 0, "flushes": 0, "compactions": 0,
            "shed": 0, "failed": 0, "resubmits": 0,
            "compactions_abandoned": 0, "flushes_requeued": 0,
            "torn_avoided": 0, "partition_invalidations": 0,
            "stranded_fleet_lost": 0,
        }
        self.escalations: Dict[str, int] = {"batch": 0, "interactive": 0}
        #: Completed maintenance wait times (completion - first submit).
        self.waits: List[int] = []

    # -- query-side hooks --------------------------------------------------

    def pin(self, request: Request) -> None:
        """Stamp a taxi query with the latest published version (once)."""
        if request.snapshot is None and request.query in self.flights:
            request.snapshot = self.dataset.current_version

    def job_for(self, request: Request) -> Optional[Job]:
        """The executable for ``request``, or None for catalog jobs."""
        live = self._live.get(request.id)
        if live is not None:
            return live[1]
        flight = self.flights.get(request.query)
        if flight is not None and request.snapshot is not None:
            return flight.at(self.dataset.snapshots[request.snapshot])
        return None

    def golden_of(self, request: Request) -> Optional[Golden]:
        """The golden for ``request``'s *pinned version*, or None."""
        live = self._live.get(request.id)
        if live is not None:
            job = live[1]
            return Golden(cycles=job.cycles, digest=job.digest)
        done = self._done.get(request.id)
        if done is not None:
            return done
        if request.query in self.flights and request.snapshot is not None:
            key = (request.query, request.snapshot)
            golden = self._goldens.get(key)
            if golden is None:
                bound = self.flights[request.query].at(
                    self.dataset.snapshots[request.snapshot])
                cycles, digest = bound.execute()
                golden = self._goldens[key] = Golden(cycles=cycles,
                                                     digest=digest)
            return golden
        return None

    # -- the write path ----------------------------------------------------

    def on_ingest(self, n_rows: int, now: int) -> None:
        """One seeded append batch arrives at cycle ``now``."""
        batch_seed = derive_seed(self.runtime.seed, 0xF00D, self._batches)
        self._batches += 1
        zones = self.dataset.append_batch(n_rows, batch_seed)
        self.counts["batches"] += 1
        self.counts["rows"] += n_rows
        cache = self.runtime.partition_cache
        if cache is not None:
            # Partition-scoped invalidation: only the radix buckets this
            # batch wrote age; fragments over untouched partitions of the
            # same dataset keep serving at full hit rate.
            n_parts = self.runtime.policy.cache.residual.n_shards
            parts = tuple(sorted({radix_of(z, n_parts) for z in zones}))
            cache.invalidate(self.dataset.key, parts=parts)
            self.counts["partition_invalidations"] += len(parts)
        self.pump(now)

    @staticmethod
    def _slot(job: MaintenanceJob) -> str:
        return "flush" if isinstance(job, FlushJob) else "compaction"

    def pump(self, now: int) -> None:
        """Enqueue the next maintenance unit(s), one in flight per kind.

        At most one flush and one compaction run concurrently; within a
        kind publications stay strictly ordered, and across kinds they
        commute, so no CAS can ever fail organically.
        """
        lsm = self.dataset.lsm
        if (self._outstanding["flush"] is None
                and lsm.buffered() >= self.policy.batch_size):
            batch = lsm.claim_buffer()
            self.dataset.rows_claimed += len(batch)
            self._sequence += 1
            self._submit(FlushJob(self.dataset, batch, created=now,
                                  sequence=self._sequence), now)
        if self._outstanding["compaction"] is None:
            pair = lsm.pending_merge()
            if pair is not None and (id(pair[0]), id(pair[1])) \
                    not in self._abandoned_pairs:
                self._sequence += 1
                self._submit(CompactionJob(self.dataset, pair[0], pair[1],
                                           created=now,
                                           sequence=self._sequence), now)

    def _entry_class(self, job: MaintenanceJob, now: int) -> str:
        """The admission class a (re)submission enters at.

        Maintenance starts in the lowest class, but a resubmission after a
        shed — or a flush under memtable pressure — enters at the class
        the escalation rules would promote it to anyway: without this a
        repeatedly-displaced flush re-waits from the bottom each time and
        the memtable bound fails under sustained overload.
        """
        rows = self.dataset.memtable_rows()
        bound = self.policy.memtable_limit_factor * self.policy.batch_size
        waited = now - job.created
        pressured = isinstance(job, FlushJob)
        if (waited >= 2 * self.policy.escalate_after
                or (pressured and rows >= (3 * bound) // 4)
                or job.resubmits >= 2):
            return "interactive"
        if (waited >= self.policy.escalate_after
                or (pressured and rows >= bound // 2)
                or job.resubmits >= 1):
            return "batch"
        return "compaction"

    def _submit(self, job: MaintenanceJob, now: int,
                delay: int = 0) -> None:
        rid = self._next_id
        self._next_id += 1
        job.boosted = False
        request = Request(id=rid, tenant=SYSTEM_TENANT, query=job.name,
                          klass=self._entry_class(job, now),
                          arrival=now + delay, deadline=None)
        self._live[rid] = (request, job)
        self._outstanding[self._slot(job)] = rid
        self.runtime.submit(request)

    def escalate(self, now: int) -> None:
        """Anti-starvation escalation: promote queued maintenance work.

        Two triggers, both deterministic.  *Deadline-based*: a request
        that has waited past ``escalate_after`` moves up to "batch", and
        past twice that to "interactive", so query traffic cannot
        displace it indefinitely.  *Pressure-based*: when the memtable
        (buffered + claimed-but-unflushed rows) approaches the documented
        bound of ``memtable_limit_factor * batch_size``, a queued flush
        is promoted immediately — the bound holds even when sustained
        query load would outlast any fixed deadline.
        """
        rows = self.dataset.memtable_rows()
        bound = self.policy.memtable_limit_factor * self.policy.batch_size
        for rid, (request, job) in list(self._live.items()):
            waited = now - job.created
            # Pressure-based: a queued flush jumps to the head of the
            # interactive queue (promote() inserts at the head, even
            # within the same class) once per submission as soon as the
            # memtable passes half its bound — under capacity shortage a
            # tail-queued flush would wait behind the whole backlog while
            # appends keep landing, and no fixed deadline can bound that.
            if (isinstance(job, FlushJob) and not job.boosted
                    and rows >= bound // 2
                    and self.runtime.admission.promote(
                        request, "interactive")):
                job.boosted = True
                self.escalations["interactive"] += 1
                continue
            target = None
            if (waited >= 2 * self.policy.escalate_after
                    and request.klass != "interactive"):
                target = "interactive"
            elif (waited >= self.policy.escalate_after
                    and request.klass == "compaction"):
                target = "batch"
            if target is not None and \
                    self.runtime.admission.promote(request, target):
                self.escalations[target] += 1

    # -- completion --------------------------------------------------------

    def on_outcome(self, outcome) -> None:
        """Maintenance disposition handler (called from ``_finalize``)."""
        live = self._live.pop(outcome.request.id, None)
        if live is None:
            return
        request, job = live
        self._done[request.id] = Golden(cycles=job.cycles, digest=job.digest)
        self._outstanding[self._slot(job)] = None
        now = outcome.finish
        if outcome.status == "ok":
            self._publish(job)
            self.waits.append(now - job.created)
            self.dataset.note_memtable()
            self.pump(now)
            return
        if outcome.status == "shed":
            self.counts["shed"] += 1
        else:
            self.counts["failed"] += 1
        alive = any(r.serviceable(now) for r in self.runtime.replicas)
        if not alive:
            # A dead fleet fails every queued request instantly; blind
            # resubmission would spin forever.  Strand the work — a flush's
            # rows return to the memtable so nothing is silently lost.
            self.counts["stranded_fleet_lost"] += 1
            self._give_up(job)
            return
        if job.resubmits < self.policy.max_resubmits:
            job.resubmits += 1
            self.counts["resubmits"] += 1
            self._submit(job, now, delay=self.policy.resubmit_delay)
            return
        self._give_up(job)

    def _give_up(self, job: MaintenanceJob) -> None:
        """Abandon whole — never publish a torn version."""
        if isinstance(job, CompactionJob):
            self.counts["compactions_abandoned"] += 1
            self._abandoned_pairs.add((id(job.a), id(job.b)))
        else:
            # Return the claimed rows to the memtable head, preserving
            # append order, so the next flush attempt re-claims them.
            lsm = self.dataset.lsm
            lsm._buffer[:0] = job.batch
            self.dataset.rows_claimed -= len(job.batch)
            self.counts["flushes_requeued"] += 1
            self.dataset.note_memtable()

    def _publish(self, job: MaintenanceJob) -> None:
        lsm = self.dataset.lsm
        if isinstance(job, FlushJob):
            lsm.publish_tree(job.tree, job.delta)
            self.dataset.rows_flushed += len(job.batch)
            self.dataset._record("flush")
            self.counts["flushes"] += 1
            return
        if lsm.publish_merge(job.a, job.b, job.merged, job.delta):
            self.dataset._record("merge")
            self.counts["compactions"] += 1
        else:
            # Inputs no longer adjacent (cannot happen with one
            # outstanding job, but the CAS refusing is the safety net).
            self.counts["torn_avoided"] += 1

    # -- reporting ---------------------------------------------------------

    def report(self) -> Dict[str, object]:
        lsm = self.dataset.lsm
        bound = self.policy.memtable_limit_factor * self.policy.batch_size
        waits = sorted(self.waits)
        return {
            "dataset": {
                "rows_ingested": len(self.dataset.row_log),
                "rows_flushed": self.dataset.rows_flushed,
                "versions_published": len(self.dataset.version_log),
                "current_version": lsm.version,
                "tree_sizes": lsm.tree_sizes(),
                "buffered": lsm.buffered(),
                "write_amplification": round(lsm.write_amplification(), 3),
            },
            "maintenance": dict(self.counts),
            "escalations": dict(self.escalations),
            "starvation": {
                "max_memtable": self.dataset.max_memtable,
                "memtable_bound": bound,
                "within_bound": self.dataset.max_memtable <= bound,
                "completed": len(waits),
                "max_wait": waits[-1] if waits else 0,
                "mean_wait": (round(sum(waits) / len(waits), 1)
                              if waits else 0.0),
            },
        }
