"""Fabric replicas: the serving pool's unit of capacity and of failure.

A :class:`FabricReplica` models one simulated Aurochs fabric: it runs one
job at a time (``busy_until`` in virtual cycles), owns a per-dependency
:class:`~repro.serving.breaker.CircuitBreaker`, and — when given a fault
seed — deterministically injects faults into the sim jobs it executes, so
"this replica is flaky" is a reproducible property of the seed, not of
chance.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.serving.breaker import CircuitBreaker
from repro.serving.workload import Job, derive_seed, fault_injector_for


class FabricReplica:
    """One fabric in the serving pool."""

    def __init__(self, name: str, index: int, *,
                 breaker: Optional[CircuitBreaker] = None,
                 fault_seed: Optional[int] = None,
                 fault_rate: float = 1.0,
                 n_faults: int = 2):
        self.name = name
        self.index = index
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            name=name)
        #: None = healthy replica (never injects); an int seeds a
        #: deterministic per-execution fault schedule.
        self.fault_seed = fault_seed
        self.fault_rate = fault_rate
        self.n_faults = n_faults
        self.busy_until = 0
        self.jobs_run = 0
        self.faults_surfaced = 0

    def injector_for(self, job: Job, request, horizon: int):
        """The injector this execution runs under, or None.

        Seeded by (replica seed, request id, attempt) so a retry of the
        same request on the same flaky replica draws a fresh schedule —
        flakiness is transient per-execution, as PR 1's ``once=True``
        events model.
        """
        if self.fault_seed is None or job.kind != "sim":
            return None
        seed = derive_seed(self.fault_seed, request.id, request.attempts)
        if random.Random(seed).random() >= self.fault_rate:
            return None
        return fault_injector_for(job, seed=seed, horizon=horizon,
                                  n_faults=self.n_faults)

    def __repr__(self) -> str:
        flaky = "flaky" if self.fault_seed is not None else "healthy"
        return (f"FabricReplica({self.name!r}, {flaky}, "
                f"busy_until={self.busy_until}, "
                f"breaker={self.breaker.state})")
