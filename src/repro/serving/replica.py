"""Fabric replicas: the serving pool's unit of capacity and of failure.

A :class:`FabricReplica` models one simulated Aurochs fabric: it runs one
job at a time (``busy_until`` in virtual cycles), owns a per-dependency
:class:`~repro.serving.breaker.CircuitBreaker`, and — when given a fault
seed — deterministically injects faults into the sim jobs it executes, so
"this replica is flaky" is a reproducible property of the seed, not of
chance.

Each replica also owns a :class:`PlanCache`: lowering and pricing a query
plan is per-fabric preparation work (the paper's place-and-route happens
once per plan, not once per request), so repeated requests for the same
query over the same dataset replay the cached lowered plan instead of
re-executing the operator tree.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Optional, Tuple

from repro.serving.breaker import CircuitBreaker
from repro.serving.workload import (
    Job,
    LoweredPlan,
    derive_seed,
    fault_injector_for,
)


class PlanCache:
    """Per-replica memo of lowered, priced query plans.

    Keyed by the job's ``plan_key()`` — ``(kind, query id, dataset
    digest, config)`` — so a key hit guarantees the cached
    :class:`~repro.serving.workload.LoweredPlan` is byte-for-byte what a
    fresh execution would produce.  A hit replays the plan (deadline
    enforcement included) without touching the operators; jobs with no
    plan key, or executions under an armed fault injector, bypass the
    cache entirely.  LRU-bounded; hit/miss/bypass/eviction counts go to
    the runtime's :class:`~repro.observability.metrics.MetricsRegistry`.
    """

    def __init__(self, metrics=None, capacity: int = 32):
        if metrics is None:
            from repro.observability.metrics import MetricsRegistry
            metrics = MetricsRegistry()
        self.metrics = metrics
        self.capacity = capacity
        self._plans: "OrderedDict[Tuple, LoweredPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._plans)

    def execute(self, job: Job, token=None, injector=None):
        """Run ``job`` through the cache; same contract as
        :meth:`Job.execute`."""
        key = None if injector is not None else job.plan_key()
        if key is None:
            self.metrics.counter("serving.plan_cache.bypass").inc()
            return job.execute(token=token, injector=injector)
        # Tenant-scope the key: plan replay is tenant-neutral today, but a
        # shared key would let one tenant's traffic evict (or warm) another
        # tenant's plans — quota isolation must hold in the cache too.
        key = (getattr(token, "tenant", "") or "",) + key
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.metrics.counter("serving.plan_cache.hits").inc()
            return plan.replay(job.name, token)
        self.metrics.counter("serving.plan_cache.misses").inc()
        job.last_plan = None
        try:
            return job.execute(token=token, injector=injector)
        finally:
            # Harvest even when enforcement raised DeadlineExceeded: the
            # plan itself is complete and correct, so the next request can
            # replay the same deadline verdict without re-executing.
            plan = job.last_plan
            if plan is not None:
                self._plans[key] = plan
                if len(self._plans) > self.capacity:
                    self._plans.popitem(last=False)
                    self.metrics.counter(
                        "serving.plan_cache.evictions").inc()


#: Fleet lifecycle states.  ``active`` replicas serve; ``quarantined``
#: replicas are steered around (breaker open-rate said they are sick)
#: until the fleet manager revives or retires them; ``retired`` replicas
#: were shrunk away by elasticity and can be revived on growth; ``dead``
#: replicas were killed mid-run (chaos) and never come back.
ACTIVE = "active"
QUARANTINED = "quarantined"
RETIRED = "retired"
DEAD = "dead"


class FabricReplica:
    """One fabric in the serving pool."""

    def __init__(self, name: str, index: int, *,
                 breaker: Optional[CircuitBreaker] = None,
                 fault_seed: Optional[int] = None,
                 fault_rate: float = 1.0,
                 n_faults: int = 2,
                 plan_cache: Optional[PlanCache] = None,
                 killed_at: Optional[int] = None,
                 spawned_at: int = 0):
        self.name = name
        self.index = index
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            name=name)
        #: None = healthy replica (never injects); an int seeds a
        #: deterministic per-execution fault schedule.
        self.fault_seed = fault_seed
        self.fault_rate = fault_rate
        self.n_faults = n_faults
        self.plan_cache = (plan_cache if plan_cache is not None
                           else PlanCache())
        self.busy_until = 0
        self.jobs_run = 0
        self.faults_surfaced = 0
        #: Virtual cycle at which this replica dies permanently (chaos
        #: kill schedule), or None for an immortal replica.
        self.killed_at = killed_at
        self.spawned_at = spawned_at
        self.state = ACTIVE

    # -- fleet lifecycle ---------------------------------------------------

    def alive_at(self, cycle: int) -> bool:
        """False once the kill schedule has claimed this replica."""
        return self.killed_at is None or cycle < self.killed_at

    def serviceable(self, cycle: int) -> bool:
        """May new work be placed on this replica at ``cycle``?"""
        return self.state == ACTIVE and self.alive_at(cycle)

    def free_at(self, cycle: int) -> bool:
        return self.serviceable(cycle) and self.busy_until <= cycle

    def execute(self, job: Job, token=None, injector=None):
        """Execute ``job`` on this replica, through its plan cache."""
        return self.plan_cache.execute(job, token=token, injector=injector)

    def injector_for(self, job: Job, request, horizon: int):
        """The injector this execution runs under, or None.

        Seeded by (replica seed, request id, attempt) so a retry of the
        same request on the same flaky replica draws a fresh schedule —
        flakiness is transient per-execution, as PR 1's ``once=True``
        events model.
        """
        if self.fault_seed is None or job.kind != "sim":
            return None
        seed = derive_seed(self.fault_seed, request.id, request.attempts)
        if random.Random(seed).random() >= self.fault_rate:
            return None
        return fault_injector_for(job, seed=seed, horizon=horizon,
                                  n_faults=self.n_faults)

    def __repr__(self) -> str:
        flaky = "flaky" if self.fault_seed is not None else "healthy"
        return (f"FabricReplica({self.name!r}, {flaky}, {self.state}, "
                f"busy_until={self.busy_until}, "
                f"breaker={self.breaker.state})")
