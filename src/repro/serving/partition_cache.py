"""Cross-request semantic partition cache: result fragments + subsumption.

PR 5's :class:`~repro.serving.replica.PlanCache` replays a lowered plan
for *identical* requests only.  This tier caches something stronger:
per-radix-partition **result fragments** of predicated joins, keyed by

    (tenant, dataset digest, join key, fan-out, partition, predicate class)

where the predicate class is the canonical key of the query's *non-key*
constraints (:class:`~repro.db.planner.Predicate`).  Because a fragment
is one partition's join output filtered by the class constraint only —
the key constraint is applied at the gather — the same fragment answers
every query in its class whose partition set includes that partition:
hierarchy drill-downs (``region ⊃ district ⊃ block``) hit the cache on
their shared partitions, and a *narrower* class can be answered from a
*broader* class's fragment via :meth:`Predicate.subsumes` plus a priced
filter pass (a "derived" hit, re-cached under the narrow class).

A lookup splits the query's partition set into cached and **residual**
partitions; only the residual set runs on the fabric (the scatter/gather
coordinator dispatches exactly those shards), and the merged result is
bit-identical to the unsharded predicated golden — the serving runtime
asserts that equality on every serve, so the cache can never change an
answer, only its latency.

Safety rails, all deterministic:

* **invalidation** — dataset versions; :meth:`invalidate` bumps them and
  fragments written under an older version stop being served.  Bounded
  staleness is explicit :class:`~repro.reliability.DegradePolicy`
  consent (``serve_stale`` + ``max_staleness`` versions); the default
  policy serves only current-version fragments.
* **corruption** — every fragment carries a CRC32 of its rows, verified
  on every serve; a mismatch (chaos's :meth:`corrupt` scribbles rows
  without fixing the CRC) drops the fragment and degrades to a miss —
  never a wrong result.
* **quotas** — fragments are charged their fabric recompute cost;
  eviction is LRU within a total cost capacity and an optional
  per-tenant cost quota, so one tenant's working set cannot evict the
  fleet's.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.reliability.health import DegradePolicy
from repro.serving.shard import ShardPolicy


def _crc(rows: Tuple) -> int:
    return zlib.crc32(repr(rows).encode())


@dataclass
class CachePolicy:
    """Knobs for the semantic partition cache tier."""

    #: Scatter/gather knobs for the residual (uncached-partition) run.
    residual: ShardPolicy = field(default_factory=ShardPolicy)
    #: Total cached-fragment budget, in fabric recompute cycles.
    capacity_cost: int = 2_000_000
    #: Per-tenant fragment budget (same units), or None for no quota.
    tenant_quota: Optional[int] = None
    #: Staleness consent: fragments older than the dataset version are
    #: served only if ``serve_stale`` and within ``max_staleness``
    #: versions.  The default serves current-version fragments only.
    degrade: DegradePolicy = field(default_factory=DegradePolicy)
    #: Virtual cycles charged per partition probed at lookup.
    lookup_cycles_per_partition: int = 1
    #: Derived-hit filter pricing: ``max(1, source_rows // divisor)``
    #: cycles to narrow a broader class's fragment.
    derive_divisor: int = 32


@dataclass
class Fragment:
    """One cached partition fragment of one predicate class."""

    rows: Tuple[Tuple, ...]
    cost: int                        # fabric cycles to recompute
    version: int                     # dataset version when computed
    class_pred: object               # Predicate the rows are filtered by
    crc: int

    @staticmethod
    def of(rows: Tuple[Tuple, ...], cost: int, version: int,
           class_pred) -> "Fragment":
        return Fragment(rows=rows, cost=max(1, int(cost)), version=version,
                        class_pred=class_pred, crc=_crc(rows))


@dataclass
class CacheDecision:
    """One lookup's verdict: which partitions are served from cache.

    ``residual`` ∪ (``exact`` ∪ ``derived`` ∪ ``stale``) is always exactly
    ``parts`` — the property tests assert it — so the coordinator's
    dispatch set plus the prefilled set covers the query's partition set
    with no overlap and no hole.
    """

    parts: Tuple[int, ...]                     # requested partition set
    fragments: Dict[int, Tuple[Tuple, ...]]    # partition -> cached rows
    exact: Tuple[int, ...]                     # same-class hits
    derived: Tuple[int, ...]                   # subsumption-narrowed hits
    stale: Tuple[int, ...]                     # served under staleness consent
    residual: Tuple[int, ...]                  # must run on the fabric
    version: int                               # dataset version at lookup
    lookup_cycles: int                         # priced probe + derive work
    #: Per-partition versions at lookup time (partition-scoped aging);
    #: empty when no partition has scoped bumps beyond ``version``.
    part_versions: Dict[int, int] = field(default_factory=dict)

    def version_at(self, k: int) -> int:
        return self.part_versions.get(k, self.version)

    @property
    def disposition(self) -> str:
        """Request-level verdict string (lands on ``Outcome.cached``)."""
        if not self.residual:
            return "hit"
        if self.fragments:
            return f"partial:{len(self.fragments)}/{len(self.parts)}"
        return "miss"

    @property
    def residual_fraction(self) -> float:
        return len(self.residual) / len(self.parts) if self.parts else 0.0


class PartitionCache:
    """The shared fragment store, one per serving runtime."""

    def __init__(self, policy: Optional[CachePolicy] = None, metrics=None):
        self.policy = policy if policy is not None else CachePolicy()
        if metrics is None:
            from repro.observability.metrics import MetricsRegistry
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._store: "OrderedDict[Tuple, Fragment]" = OrderedDict()
        self._versions: Dict[Tuple, int] = {}
        #: (dataset_key, partition) -> partition-scoped version bumps.
        #: Live ingestion invalidates only the radix buckets a batch
        #: touched, so fragments over untouched partitions keep serving.
        self._part_versions: Dict[Tuple, int] = {}
        self._epoch = 0                       # global invalidation counter
        self.total_cost = 0
        self.tenant_cost: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._store)

    # -- versions ------------------------------------------------------------

    def version_of(self, dataset_key, k: Optional[int] = None) -> int:
        """The dataset's current version — per partition when ``k`` given.

        A partition's version is the dataset-wide version plus its own
        scoped bumps, so whole-dataset invalidation still ages every
        partition while an ingest batch ages only the buckets it wrote.
        """
        base = self._epoch + self._versions.get(dataset_key, 0)
        if k is None:
            return base
        return base + self._part_versions.get((dataset_key, k), 0)

    def invalidate(self, dataset_key=None,
                   parts: Optional[Tuple[int, ...]] = None) -> int:
        """Bump the dataset's version (or every dataset's, if None).

        With ``parts``, only those partitions of ``dataset_key`` age —
        the live-ingestion path: a batch touching radix bucket *p*
        invalidates partition-*p* fragments and no others, so a warmed
        drill-down hierarchy keeps its hit rate on untouched partitions.
        Fragments are not eagerly dropped — staleness is judged at serve
        time against the degrade policy, so bounded-staleness consent can
        still use them within ``max_staleness`` versions.
        """
        if parts is not None:
            if dataset_key is None:
                raise ValueError(
                    "partition-scoped invalidation needs a dataset_key")
            for k in parts:
                key = (dataset_key, k)
                self._part_versions[key] = self._part_versions.get(key, 0) + 1
            self._count("partition_invalidations", len(tuple(parts)))
            return self.version_of(dataset_key)
        if dataset_key is None:
            self._epoch += 1
            version = self._epoch
        else:
            version = self._versions.get(dataset_key, 0) + 1
            self._versions[dataset_key] = version
        self._count("invalidations")
        return version

    # -- chaos ---------------------------------------------------------------

    def corrupt(self, seed: int) -> Optional[Tuple]:
        """Deterministically scribble one cached fragment's rows *without*
        updating its CRC — the chaos harness's bit-rot model.  The next
        lookup that touches it must detect the mismatch and treat it as a
        miss.  Returns the corrupted key, or None if the cache is empty."""
        if not self._store:
            return None
        keys = list(self._store)
        key = keys[seed % len(keys)]
        frag = self._store[key]
        frag.rows = frag.rows + (("__corrupt__", seed),)
        self._count("corruptions_injected")
        return key

    # -- the lookup ----------------------------------------------------------

    def lookup(self, tenant: str, job, n_parts: int,
               parts: Tuple[int, ...]) -> CacheDecision:
        """Split ``parts`` into cache-served and residual partitions."""
        version = self.version_of(job.dataset_key)
        part_versions = {k: self.version_of(job.dataset_key, k)
                         for k in parts
                         if self.version_of(job.dataset_key, k) != version}
        class_key = job.class_pred.key()
        fragments: Dict[int, Tuple[Tuple, ...]] = {}
        exact: List[int] = []
        derived: List[int] = []
        stale: List[int] = []
        residual: List[int] = []
        cycles = self.policy.lookup_cycles_per_partition * max(1, len(parts))
        keep_cls = None                       # lazily compiled derive filter
        for k in parts:
            k_version = part_versions.get(k, version)
            key = self._key(tenant, job, n_parts, k, class_key)
            frag, is_stale = self._get_valid(key, k_version)
            if frag is not None:
                fragments[k] = frag.rows
                (stale if is_stale else exact).append(k)
                continue
            hit = self._derive(tenant, job, n_parts, k, class_key, k_version)
            if hit is not None:
                src, src_stale = hit
                if keep_cls is None:
                    # Expr evaluator: batch-compiled over each fragment.
                    keep_cls = job.class_pred.evaluator(job.joined_schema())
                rows = tuple(keep_cls.filter_batch(src.rows))
                derive_cost = max(1, len(src.rows)
                                  // self.policy.derive_divisor)
                cycles += derive_cost
                fragments[k] = rows
                (stale if src_stale else derived).append(k)
                self._count("derived_hits")
                # Re-cache under the narrow class so the next drill-down
                # request hits exactly.  Keeps the source version: a
                # derived copy is no fresher than its source.
                if not src_stale:
                    self._insert(key, Fragment.of(rows, derive_cost,
                                                  src.version,
                                                  job.class_pred), tenant)
                continue
            residual.append(k)
        decision = CacheDecision(
            parts=tuple(parts), fragments=fragments, exact=tuple(exact),
            derived=tuple(derived), stale=tuple(stale),
            residual=tuple(residual), version=version,
            lookup_cycles=cycles, part_versions=part_versions)
        self._count("fragment_hits", len(exact) + len(derived) + len(stale))
        self._count("fragment_misses", len(residual))
        disposition = decision.disposition
        if disposition == "hit":
            self._count("hits")
        elif disposition == "miss":
            self._count("misses")
        else:
            self._count("partial_hits")
        self.metrics.histogram("serving.partition_cache.residual_fraction") \
            .observe(int(round(100 * decision.residual_fraction)))
        return decision

    def insert(self, tenant: str, job, n_parts: int, k: int,
               rows: Tuple[Tuple, ...], cost: int, version: int) -> bool:
        """Cache a freshly computed fragment — unless the partition has
        been invalidated since the residual run was dispatched, in which
        case the fragment is already stale and is dropped on the floor."""
        if version != self.version_of(job.dataset_key, k):
            self._count("late_inserts_dropped")
            return False
        key = self._key(tenant, job, n_parts, k, job.class_pred.key())
        self._insert(key, Fragment.of(tuple(rows), cost, version,
                                      job.class_pred), tenant)
        return True

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _key(tenant: str, job, n_parts: int, k: int,
             class_key: Tuple) -> Tuple:
        return (tenant, job.dataset_key, job.key, n_parts, k, class_key)

    def _get_valid(self, key: Tuple, version: int):
        """(fragment, is_stale) if servable under policy, else (None, _)."""
        frag = self._store.get(key)
        if frag is None:
            return None, False
        if _crc(frag.rows) != frag.crc:
            self._drop(key, "corruption_dropped")
            return None, False
        age = version - frag.version
        if age > 0:
            degrade = self.policy.degrade
            if not (degrade.serve_stale and age <= degrade.max_staleness):
                self._drop(key, "stale_dropped")
                return None, False
            self._count("stale_served")
            self._store.move_to_end(key)
            return frag, True
        self._store.move_to_end(key)
        return frag, False

    def _derive(self, tenant: str, job, n_parts: int, k: int,
                class_key: Tuple, version: int):
        """A servable fragment of a *broader* class for this partition.

        Deterministic choice: the smallest candidate (fewest rows to
        filter), ties broken by class key.  Candidates are validated the
        same way as exact hits (CRC + staleness), so a corrupt or
        too-stale broad fragment can't leak through the derive path.
        """
        prefix = (tenant, job.dataset_key, job.key, n_parts, k)
        best = None
        for key in list(self._store):
            if key[:5] != prefix or key[5] == class_key:
                continue
            frag = self._store.get(key)
            if frag is None or not frag.class_pred.subsumes(job.class_pred):
                continue
            frag, is_stale = self._get_valid(key, version)
            if frag is None:
                continue
            rank = (len(frag.rows), repr(key[5]))
            if best is None or rank < best[0]:
                best = (rank, frag, is_stale)
        if best is None:
            return None
        return best[1], best[2]

    def _insert(self, key: Tuple, frag: Fragment, tenant: str) -> None:
        old = self._store.pop(key, None)
        if old is not None:
            self._uncharge(key, old)
        self._store[key] = frag
        self.total_cost += frag.cost
        self.tenant_cost[tenant] = self.tenant_cost.get(tenant, 0) + frag.cost
        self._count("insertions")
        quota = self.policy.tenant_quota
        if quota is not None:
            while self.tenant_cost.get(tenant, 0) > quota:
                victim = next((k for k in self._store if k[0] == tenant),
                              None)
                if victim is None or victim == key and len(self._store) == 1:
                    break
                if victim == key:
                    # The new fragment alone exceeds the quota: it still
                    # gets cached (a quota smaller than one fragment would
                    # otherwise disable the tenant entirely).
                    break
                self._drop(victim, "evictions")
        while self.total_cost > self.policy.capacity_cost and \
                len(self._store) > 1:
            victim = next(iter(self._store))
            if victim == key:
                break
            self._drop(victim, "evictions")

    def _drop(self, key: Tuple, counter: str) -> None:
        frag = self._store.pop(key, None)
        if frag is None:
            return
        self._uncharge(key, frag)
        self._count(counter)

    def _uncharge(self, key: Tuple, frag: Fragment) -> None:
        self.total_cost -= frag.cost
        tenant = key[0]
        left = self.tenant_cost.get(tenant, 0) - frag.cost
        if left > 0:
            self.tenant_cost[tenant] = left
        else:
            self.tenant_cost.pop(tenant, None)

    def _count(self, name: str, n: int = 1) -> None:
        if n:
            self.metrics.counter(f"serving.partition_cache.{name}").inc(n)

    # -- reporting -----------------------------------------------------------

    def report(self) -> Dict[str, object]:
        def count(name: str) -> int:
            return self.metrics.counter(
                f"serving.partition_cache.{name}").value
        hits, partial, misses = (count("hits"), count("partial_hits"),
                                 count("misses"))
        lookups = hits + partial + misses
        return {
            "fragments": len(self._store),
            "total_cost": self.total_cost,
            "tenant_cost": dict(sorted(self.tenant_cost.items())),
            "hits": hits,
            "partial_hits": partial,
            "misses": misses,
            "hit_rate": (hits + partial) / lookups if lookups else 0.0,
            "fragment_hits": count("fragment_hits"),
            "fragment_misses": count("fragment_misses"),
            "derived_hits": count("derived_hits"),
            "insertions": count("insertions"),
            "evictions": count("evictions"),
            "invalidations": count("invalidations"),
            "partition_invalidations": count("partition_invalidations"),
            "stale_served": count("stale_served"),
            "stale_dropped": count("stale_dropped"),
            "corruptions_injected": count("corruptions_injected"),
            "corruption_dropped": count("corruption_dropped"),
            "late_inserts_dropped": count("late_inserts_dropped"),
        }
