"""Per-dependency circuit breakers over fabric replicas.

Built on the PR 1 retry discipline: a replica that keeps surfacing typed
:class:`~repro.errors.FaultError`\\ s is probably sick (a permanent fault
schedule, in injector terms), and re-sending traffic at it both wastes
cycle budget and delays the retry that would have succeeded elsewhere.
The breaker is the standard three-state machine, driven entirely by the
serving tier's virtual clock so transitions are deterministic:

* **closed** — traffic flows; ``threshold`` *consecutive* failures open it;
* **open** — traffic refused (callers see a typed
  :class:`~repro.errors.CircuitOpen` or pick another replica) until
  ``cooldown`` virtual cycles pass;
* **half-open** — exactly one probe request is let through; success closes
  the breaker, failure re-opens it for another cooldown.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import CircuitOpen

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing."""

    def __init__(self, name: str = "", threshold: int = 3,
                 cooldown: int = 20_000):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.name = name
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[int] = None
        self._probe_in_flight = False
        #: (cycle, new_state) log — deterministic, assertable.
        self.transitions: List[Tuple[int, str]] = []

    # -- state machine -----------------------------------------------------

    def _transition(self, now: int, state: str) -> None:
        self.state = state
        self.transitions.append((now, state))

    def allow(self, now: int) -> bool:
        """May a request be sent through right now?

        Mutating: an open breaker whose cooldown has elapsed moves to
        half-open and admits exactly one probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now >= self.retry_at():
                self._transition(now, HALF_OPEN)
                self._probe_in_flight = True
                return True
            return False
        # HALF_OPEN: one probe at a time.
        if not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self, now: int) -> None:
        self.consecutive_failures = 0
        self._probe_in_flight = False
        if self.state != CLOSED:
            self._transition(now, CLOSED)
            self.opened_at = None

    def record_failure(self, now: int) -> None:
        self._probe_in_flight = False
        if self.state == HALF_OPEN:
            self.opened_at = now
            self._transition(now, OPEN)
            return
        self.consecutive_failures += 1
        if self.state == CLOSED and (self.consecutive_failures
                                     >= self.threshold):
            self.opened_at = now
            self._transition(now, OPEN)

    def probe_abandoned(self) -> None:
        """Hand back a probe slot whose attempt ended inconclusively.

        A hedge leg cancelled mid-flight, or an attempt that only blew its
        *request* deadline, says nothing about replica health — it must
        neither close nor re-open the breaker.  But it must release the
        half-open probe slot, or the breaker would refuse all traffic
        forever.  The breaker stays half-open and the next :meth:`allow`
        may admit a fresh probe.
        """
        self._probe_in_flight = False

    # -- introspection -----------------------------------------------------

    def retry_at(self) -> int:
        """Virtual cycle at which a half-open probe becomes eligible."""
        if self.opened_at is None:
            return 0
        return self.opened_at + self.cooldown

    def error(self, now: int, *, tenant: str = "", query: str = "",
              request_id: Optional[int] = None,
              retry_at: Optional[int] = None) -> CircuitOpen:
        """A typed refusal for a caller that insists on this replica.

        ``retry_at`` lets the caller stamp the error with the cycle that
        actually bounds the wait (e.g. the pool-wide earliest availability)
        when it differs from this breaker's own cooldown expiry.
        """
        bound = self.retry_at() if retry_at is None else retry_at
        return CircuitOpen(
            f"breaker {self.name!r} {self.state} at cycle {now}: "
            f"{self.consecutive_failures} consecutive faults, "
            f"retry at cycle {bound}",
            tenant=tenant, query=query, request_id=request_id,
            replica=self.name, failures=self.consecutive_failures,
            retry_at=bound)

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, state={self.state!r}, "
                f"failures={self.consecutive_failures})")
