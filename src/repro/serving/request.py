"""Requests and outcomes: the serving tier's unit of work and its record.

A :class:`Request` is one query submission — who (tenant), what (a job
name from the :class:`~repro.serving.workload.ServingWorkload` catalog),
when (arrival, in virtual cycles), how urgent (priority class), and how
long it may take end-to-end (absolute deadline, or None).  An
:class:`Outcome` is the request's single, final disposition; the chaos
harness's core invariant is that every request gets exactly one outcome,
and every non-``ok`` outcome carries a typed
:class:`~repro.errors.ReproError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Priority classes, most important first.  Lower number = more important.
#: ``compaction`` is the background-maintenance class (LSM flushes and
#: merges): always displaceable by query traffic, protected from unbounded
#: starvation only by the ingest controller's deadline-based escalation.
PRIORITY_CLASSES: Tuple[str, ...] = ("interactive", "batch", "compaction")

#: Final outcome statuses.  ``wrong_result`` should never occur — it is
#: the chaos harness's tripwire, not a legitimate disposition.
#: ``partial`` is a sharded query that lost shard fault domains and — by
#: explicit :class:`~repro.reliability.DegradePolicy` consent — returned a
#: typed partial result with a coverage fraction instead of failing whole.
STATUSES: Tuple[str, ...] = (
    "ok", "shed", "deadline", "failed", "partial", "wrong_result")


def priority_of(klass: str) -> int:
    """Numeric priority of a class name (lower = more important)."""
    return PRIORITY_CLASSES.index(klass)


@dataclass(slots=True)
class Request:
    """One submitted query."""

    id: int
    tenant: str
    query: str                       # job name in the workload catalog
    klass: str = "interactive"       # priority class
    arrival: int = 0                 # virtual cycle of submission
    deadline: Optional[int] = None   # absolute virtual cycle, or None
    # runtime bookkeeping
    attempts: int = field(default=0, compare=False)
    #: LSM snapshot version this request admitted against (live-ingestion
    #: datasets only).  Pinned once at arrival: however many flushes or
    #: compactions publish mid-flight, the answer is defined — and
    #: golden-checked — against exactly this version.
    snapshot: Optional[int] = field(default=None, compare=False)

    @property
    def priority(self) -> int:
        return priority_of(self.klass)


@dataclass(slots=True)
class Outcome:
    """A request's final disposition."""

    request: Request
    status: str                      # one of STATUSES
    finish: int                      # virtual cycle the disposition landed
    error: Optional[BaseException] = None
    replica: str = ""                # replica that produced the result
    cycles: int = 0                  # execution cycles the winner consumed
    attempts: int = 0                # dispatched attempts (0 if never ran)
    hedged: bool = False             # a hedge leg was launched
    shards: int = 0                  # scatter fan-out (0 = unsharded)
    partial: Optional[object] = None  # PartialResult on 'partial' outcomes
    #: Partition-cache disposition for cache-served requests — e.g.
    #: "hit", "partial:3/8", "miss" — or "" for uncached paths.
    cached: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency(self) -> int:
        """End-to-end virtual latency (queue wait + execution)."""
        return self.finish - self.request.arrival

    def signature(self) -> Tuple:
        """Stable identity for bit-for-bit reproducibility assertions.

        Two seeded runs of the same load test must produce identical
        signature sequences: same shed set, same errors (via the stable
        serving-error ``repr``), same virtual timings.
        """
        return (self.request.id, self.request.tenant, self.request.query,
                self.status, repr(self.error), self.finish, self.replica,
                self.cycles, self.attempts, self.hedged, self.shards,
                repr(self.partial), self.cached, self.request.snapshot)
