"""Cooperative cancellation tokens for in-flight simulations.

The Aurochs thread model lets the runtime spawn and *kill* dataflow
threads at will (§III); at the serving tier the matching primitive is a
:class:`CancelToken` handed to the :class:`~repro.dataflow.engine.Engine`.
The engine calls :meth:`CancelToken.check` at the top of every simulated
cycle — a stream-end checkpoint boundary: nothing has ticked yet — and the
token raises a typed :class:`~repro.errors.DeadlineExceeded` (cycle budget
spent) or :class:`~repro.errors.Cancelled` (external cancel) to stop the
run.  The engine's ``finally`` closes every stream on that path, so the
cancelled graph's scratchpad/DRAM state is released for the next request.

Both schedulers observe a deadline at the identical cycle: the exhaustive
loop checks every cycle, and the event engine clamps its fast-forward
jumps to :attr:`CancelToken.deadline_cycle`.  That makes deadline runs as
reproducible as fault runs — same budget, same cancellation cycle, same
``SimStats`` prefix.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import Cancelled, DeadlineExceeded


class CancelToken:
    """Cycle-deadline plus external-cancel flag for one engine run.

    ``deadline_cycle`` is the number of cycles the run may simulate (the
    engine raises *before* ticking that cycle, so a run given a budget of
    ``n`` consumes at most ``n`` cycles).  ``None`` means no deadline.
    ``cancel()`` requests cooperative cancellation: the engine stops at
    the next cycle boundary.  Tokens are single-use bookkeeping, not
    thread-synchronization objects — the whole serving tier is a
    deterministic discrete-event simulation.
    """

    __slots__ = ("deadline_cycle", "cancelled", "reason", "tenant",
                 "query", "request_id", "fired_at")

    def __init__(self, deadline_cycle: Optional[int] = None, *,
                 tenant: str = "", query: str = "",
                 request_id: Optional[int] = None):
        self.deadline_cycle = deadline_cycle
        self.cancelled = False
        self.reason = ""
        self.tenant = tenant
        self.query = query
        self.request_id = request_id
        #: Cycle at which check() raised, or None while the run is live.
        self.fired_at: Optional[int] = None

    def cancel(self, reason: str = "") -> None:
        """Request cooperative cancellation at the next cycle boundary."""
        self.cancelled = True
        self.reason = reason

    def check(self, cycle: int) -> None:
        """Engine hook: raise the typed cancellation error if due."""
        if self.cancelled:
            self.fired_at = cycle
            raise Cancelled(
                f"run cancelled at cycle {cycle}"
                + (f" ({self.reason})" if self.reason else ""),
                tenant=self.tenant, query=self.query,
                request_id=self.request_id, cycle=cycle, reason=self.reason)
        deadline = self.deadline_cycle
        if deadline is not None and cycle >= deadline:
            self.fired_at = cycle
            raise DeadlineExceeded(
                f"cycle budget of {deadline} exceeded at cycle {cycle}",
                tenant=self.tenant, query=self.query,
                request_id=self.request_id, deadline=deadline, cycle=cycle)

    def __repr__(self) -> str:
        return (f"CancelToken(deadline_cycle={self.deadline_cycle}, "
                f"cancelled={self.cancelled}, query={self.query!r})")
