"""Sharded scatter/gather query execution over an elastic replica fleet.

The serving runtime's original ceiling was one replica per query and one
fault domain per request: a whole query ran on a whole fabric, so one slow
or dying replica stalled or killed everything it was serving.  This module
removes that ceiling with the paper's own partitioning boundary — radix
hashing on the join key (§IV-A, :mod:`repro.structures.partition`) — and
the ordered multi-worker dispatch discipline of "Scaling Ordered Stream
Processing on Shared-Memory Multicores":

* **scatter** — :func:`plan_shards` splits a
  :class:`~repro.serving.workload.ShardedJoinJob`'s dataset into K
  disjoint radix partitions (empty buckets included: an empty shard job is
  still a shard job) and prices the scatter itself with the cost model;
* **placement** — shard→replica assignment is rendezvous hashing
  (:func:`repro.fabric.place.place_shards`): deterministic for a given
  ``(seed, fleet)``, and minimally disruptive when the fleet changes — a
  quarantined replica's shards move, everyone else's stay put;
* **fault containment** — every shard is its own fault domain with a
  deadline sub-budget derived from the request deadline (minus a gather/
  merge reserve), seeded straggler hedging (a shard leg running past a
  reference-relative cutoff gets a second leg on another replica, first
  response winning), and shard-level retries that re-dispatch *only the
  lost partition* to a fresh replica, never the whole query;
* **gather** — the merge is deterministic: a complete shard set merges to
  a digest bit-identical to the unsharded golden run (asserted on every
  serve), and a permanently lost shard either fails the request typed or
  — by explicit :class:`~repro.reliability.DegradePolicy` consent —
  returns a typed :class:`PartialResult` with an accurate coverage
  fraction.  There is no silent path between those outcomes;
* **elasticity** — :class:`FleetManager` grows the pool under admission-
  queue pressure, shrinks it when idle, and quarantines replicas whose
  circuit breakers keep opening (the open-rate signal), with kills from
  the chaos schedule handled as permanent deaths.

Everything runs in the serving tier's deterministic virtual clock, so a
chaos sweep that kills replicas mid-shard is bit-for-bit reproducible
from its seed.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    DeadlineExceeded,
    FaultError,
    PlanError,
    ReplicaLost,
    ShardsLost,
    SimulationError,
)
from repro.fabric.place import shard_score
from repro.perf.cost_model import CostModel
from repro.reliability.health import DegradePolicy
from repro.serving.cancel import CancelToken
from repro.serving.replica import ACTIVE, DEAD, QUARANTINED, RETIRED, FabricReplica
from repro.serving.request import Request
from repro.serving.workload import (
    JoinShardJob,
    ShardedJoinJob,
    derive_seed,
)
from repro.structures.hashing import is_power_of_two
from repro.structures.partition import RadixPartitioner

#: Per-shard coordination cost, in cycles, charged on both the scatter
#: (dispatching one shard descriptor) and the gather (collecting one
#: shard's result descriptor).  A partition-wise join's output is already
#: partitioned by key radix — exactly how the unsharded join's own output
#: is organized — so the gather moves *metadata*, not rows; the row-level
#: digest sort is a verification artifact that the unsharded path does
#: not price either.
CYCLES_PER_SHARD = 4


@dataclass
class ShardPolicy:
    """Knobs for scatter/gather execution, all deterministic."""

    n_shards: int = 4                 # K: radix fan-out (power of two)
    shard_retries: int = 2            # re-dispatch rounds per lost shard
    hedge_factor: Optional[float] = 2.0   # straggler cutoff, x reference
    hedge_jitter: float = 0.25        # + seeded fraction of the cutoff
    merge_reserve: float = 0.05       # deadline fraction held for gather
    degrade: DegradePolicy = field(default_factory=DegradePolicy)

    def __post_init__(self):
        if not is_power_of_two(self.n_shards):
            raise ValueError("n_shards must be a power of two")


@dataclass
class FleetPolicy:
    """Elasticity knobs: when the replica pool grows, shrinks, sickens."""

    min_replicas: int = 2
    max_replicas: int = 8
    grow_at_depth: int = 8            # admission backlog that adds capacity
    shrink_below_depth: int = 1       # backlog at/below which idle retires
    scale_cooldown: int = 5_000       # cycles between scale decisions
    quarantine_opens: int = 2         # breaker OPEN transitions → quarantine


@dataclass(frozen=True)
class PartialResult:
    """A typed, explicitly-degraded scatter/gather result.

    ``coverage`` is the fraction of *input* rows covered by the shards
    that completed (the accurate, checkable number the degrade policy
    gates on); ``digest`` is the deterministic merge of the completed
    shards only — a strict sub-multiset of the golden result, never a
    fabrication.
    """

    coverage: float
    rows_present: int
    rows_expected: int
    complete_shards: Tuple[int, ...]
    lost_shards: Tuple[int, ...]
    digest: Tuple = field(repr=False)

    @property
    def digest_crc(self) -> int:
        """Stable 32-bit identity of the partial digest (for signatures)."""
        return zlib.crc32(repr(self.digest).encode())

    def __repr__(self) -> str:
        return (f"PartialResult(coverage={self.coverage:.6f}, "
                f"rows={self.rows_present}/{self.rows_expected}, "
                f"complete={self.complete_shards}, "
                f"lost={self.lost_shards}, crc={self.digest_crc:#010x})")


@dataclass
class ShardPlan:
    """One query's scatter set: K shard jobs plus the pricing the
    coordinator needs (scatter cost, per-shard fault-free reference
    cycles for straggler cutoffs, input-row coverage weights)."""

    job: ShardedJoinJob
    n_shards: int
    jobs: List[JoinShardJob]
    rows: Tuple[int, ...]             # input rows per shard
    total_rows: int
    #: Cost-model-priced cycles of radix-partitioning both base tables —
    #: plan-time layout work (like lowering and goldens), charged once
    #: when the plan is first built, not per request: the partitions ARE
    #: the dataset's storage layout for this plan.
    scatter_cycles: int
    ref_cycles: Tuple[int, ...]       # fault-free per-shard service time
    ref_rows_out: Tuple[int, ...]

    def dispatch_cost(self, n_dispatched: Optional[int] = None) -> int:
        """Per-request scatter coordination: one descriptor per shard
        actually dispatched (the semantic partition cache dispatches only
        a query's residual partitions)."""
        n = self.n_shards if n_dispatched is None else n_dispatched
        return 1 + CYCLES_PER_SHARD * n

    def merge_cost(self, n_present: int) -> int:
        """Per-request gather coordination over the shards that
        completed (the result rows themselves stay partitioned in
        place, like the unsharded join's own output)."""
        return 1 + CYCLES_PER_SHARD * n_present

    @property
    def merge_estimate(self) -> int:
        return self.merge_cost(self.n_shards)

    def hedge_cutoff(self, shard: int, policy: ShardPolicy, seed: int,
                     request_id: int) -> Optional[int]:
        """Seeded straggler cutoff for one shard leg, in cycles."""
        if policy.hedge_factor is None:
            return None
        jitter = random.Random(
            derive_seed(seed, request_id, 0xEDF, shard)).random()
        base = self.ref_cycles[shard] * policy.hedge_factor
        return max(1, int(base * (1.0 + policy.hedge_jitter * jitter)))


def plan_shards(job: ShardedJoinJob, n_shards: int) -> ShardPlan:
    """Partition ``job``'s dataset into the full scatter set.

    Uses :class:`~repro.structures.partition.RadixPartitioner` — the
    paper's partitioning structure, hardware-event accounting included —
    and its :meth:`partitions` read-back, which guarantees exactly
    ``n_shards`` entries: a radix bucket with zero rows yields a valid
    empty shard job, not a hole in the scatter set.
    """
    from repro.db.operators.join import key_getter
    if not is_power_of_two(n_shards):
        raise PlanError("shard fan-out must be a power of two")
    left, right = job.tables()
    lk = key_getter(left, job.key)
    rk = key_getter(right, job.key)
    part_l = RadixPartitioner(n_shards)
    part_l.partition((lk(row), row) for row in left.rows)
    part_r = RadixPartitioner(n_shards, events=part_l.events)
    part_r.partition((rk(row), row) for row in right.rows)
    lparts = part_l.partitions()
    rparts = part_r.partitions()
    shard_jobs = [job.make_shard(k, n_shards, lparts[k], rparts[k])
                  for k in range(n_shards)]
    model = CostModel()
    scatter = max(1, int(model.event_cycles(
        part_l.events, rows=len(left.rows) + len(right.rows)).cycles))
    ref_cycles: List[int] = []
    ref_rows_out: List[int] = []
    for shard_job in shard_jobs:
        cycles, digest = shard_job.execute()     # fault-free reference
        ref_cycles.append(cycles)
        ref_rows_out.append(len(digest[1]))
    return ShardPlan(
        job=job, n_shards=n_shards, jobs=shard_jobs,
        rows=tuple(j.rows_in for j in shard_jobs),
        total_rows=sum(j.rows_in for j in shard_jobs),
        scatter_cycles=scatter,
        ref_cycles=tuple(ref_cycles), ref_rows_out=tuple(ref_rows_out))


@dataclass(slots=True)
class ShardLeg:
    """One dispatched execution of one shard on one replica."""

    shard: int
    replica: FabricReplica
    start: int
    cycles: int
    status: str                  # 'ok' | 'deadline' | 'fault' | 'error'
    error: Optional[BaseException]
    digest: Optional[Tuple]
    kind: str = "primary"        # 'primary' | 'hedge' | 'retry'
    #: Cycle at which this leg's shard settled.  A leg whose own finish
    #: is later than this was cancelled mid-flight (hedge loser): its
    #: verdict never materialized and must not feed the breaker.
    resolved: int = 0

    @property
    def own_finish(self) -> int:
        return self.start + self.cycles


@dataclass(slots=True)
class ShardedExecution:
    """A resolved scatter/gather dispatch, queued for completion."""

    request: Request
    plan: ShardPlan
    legs: List[ShardLeg]
    dispatched: int
    finish: int
    status: str                  # 'ok' | 'partial' | 'deadline' | 'failed'
    digest: Optional[Tuple]
    partial: Optional[PartialResult]
    error: Optional[BaseException]
    hedges: int
    hedges_won: int
    retries: int
    lost: Tuple[int, ...]
    #: The partition set this execution covered (the full range for plain
    #: sharded queries; a predicate's partition set for cached ones).
    parts: Tuple[int, ...] = ()
    #: Partitions served from the semantic cache (never dispatched).
    prefilled: Tuple[int, ...] = ()
    #: Winning digest per dispatched-and-completed shard — harvested by
    #: the runtime into the partition cache.
    shard_digests: Dict[int, Tuple] = field(default_factory=dict)
    #: The CacheDecision behind this execution, or None when uncached.
    cached: Optional[object] = None


class ShardCoordinator:
    """Scatter/gather execution engine, driven by the serving runtime.

    The coordinator resolves one sharded request per call in virtual
    time: it places shards on the current fleet, serializes shards that
    share a replica through ``busy_until``, hedges stragglers, retries
    lost partitions on fresh replicas, and settles the gather.  All
    randomness is seeded; two runs of the same config produce identical
    leg schedules.
    """

    def __init__(self, runtime):
        self.runtime = runtime
        self.fleet_seed = derive_seed(runtime.seed, 0x51AD)
        self._plans: Dict[Tuple[str, int], ShardPlan] = {}

    # -- planning ----------------------------------------------------------

    def plan_for(self, job: ShardedJoinJob, n_shards: int) -> ShardPlan:
        key = (job.name, n_shards)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._plans[key] = plan_shards(job, n_shards)
        return plan

    def warm(self, job: ShardedJoinJob, n_shards: int) -> ShardPlan:
        """Build (and cache) the shard plan off the request path, the way
        :meth:`ServingWorkload.warm` precomputes goldens.  An unwarmed
        first request pays the plan's ``scatter_cycles`` itself — honest
        cold-start."""
        return self.plan_for(job, n_shards)

    def placeable(self, now: int) -> List[FabricReplica]:
        """Replicas shards may be placed on at ``now``: serviceable, and
        not behind an open breaker that is still cooling down."""
        out = []
        for r in self.runtime.replicas:
            if not r.serviceable(now):
                continue
            if r.breaker.state == "open" and now < r.breaker.retry_at():
                continue
            out.append(r)
        return out

    # -- execution ---------------------------------------------------------

    def run(self, request: Request, job: ShardedJoinJob, now: int, *,
            policy: Optional[ShardPolicy] = None,
            parts: Optional[Tuple[int, ...]] = None,
            prefilled: Optional[Dict[int, Tuple]] = None,
            extra_cycles: int = 0,
            cached=None) -> ShardedExecution:
        """Resolve one scatter/gather request.

        Plain sharded queries scatter all K partitions.  The semantic
        partition cache narrows that: ``parts`` restricts execution to the
        query's partition set, ``prefilled`` supplies cached fragment rows
        for partitions that need no fabric run (only ``parts`` minus
        ``prefilled`` is dispatched), ``extra_cycles`` prices the cache
        lookup into the scatter, and ``cached`` carries the CacheDecision
        through for the runtime's harvest/reporting.
        """
        runtime = self.runtime
        if policy is None:
            policy = runtime.policy.shard
        fresh = (job.name, policy.n_shards) not in self._plans
        plan = self.plan_for(job, policy.n_shards)
        K = plan.n_shards
        parts = tuple(range(K)) if parts is None else tuple(parts)
        prefilled = dict(prefilled or {})
        dispatch = [k for k in parts if k not in prefilled]
        deadline = request.deadline
        setup = plan.scatter_cycles if fresh else 0
        scatter_done = (now + setup + extra_cycles
                        + plan.dispatch_cost(len(dispatch)))
        merge_reserve = plan.merge_cost(len(parts))
        if deadline is not None:
            merge_reserve = max(merge_reserve,
                                int((deadline - now) * policy.merge_reserve))
        sub_deadline = None if deadline is None else deadline - merge_reserve
        legs: List[ShardLeg] = []
        results: Dict[int, ShardLeg] = {}
        lost: Dict[int, Tuple[int, BaseException]] = {}
        resolve_at: Dict[int, int] = {}
        hedges = hedges_won = retries = 0
        leg_seq = 0
        #: Per-request leg count per replica: placement is rendezvous
        #: affinity (:func:`~repro.fabric.place.shard_score`) balanced by
        #: this load, so K shards spread over K free replicas instead of
        #: piling onto one hot rendezvous favourite.
        load: Dict[int, int] = {}

        for k in dispatch:
            excluded: set = set()
            t = scatter_done
            rounds = 0
            last_error: Optional[BaseException] = None
            while True:
                pool = [r for r in self.placeable(t)
                        if r.index not in excluded]
                if not pool:
                    err = last_error if last_error is not None else ShardsLost(
                        f"no replica left for shard {k} of request "
                        f"{request.id}", tenant=request.tenant,
                        query=request.query, request_id=request.id,
                        lost=(k,), n_shards=K)
                    lost[k] = (t, err)
                    resolve_at[k] = t
                    break
                rep = min(pool, key=lambda r: (
                    load.get(r.index, 0), max(t, r.busy_until),
                    -shard_score(self.fleet_seed, k, r.index), r.index))
                start = max(t, rep.busy_until)
                if not rep.alive_at(start):
                    excluded.add(rep.index)
                    continue
                if sub_deadline is not None and start >= sub_deadline:
                    err = DeadlineExceeded(
                        f"shard {k} of request {request.id} out of "
                        f"sub-budget before dispatch at cycle {start}",
                        tenant=request.tenant, query=request.query,
                        request_id=request.id, deadline=sub_deadline,
                        cycle=start)
                    lost[k] = (start, err)
                    resolve_at[k] = start
                    break
                if not rep.breaker.allow(start):
                    excluded.add(rep.index)
                    continue
                load[rep.index] = load.get(rep.index, 0) + 1
                budget = (None if sub_deadline is None
                          else sub_deadline - start)
                kind = "retry" if rounds else "primary"
                leg = self._leg(request, plan.jobs[k], rep, start, budget,
                                k, leg_seq, kind)
                leg_seq += 1
                legs.append(leg)
                round_legs = [leg]
                # Straggler hedging: a leg running past its seeded,
                # reference-relative cutoff gets a second leg elsewhere.
                cutoff = plan.hedge_cutoff(k, policy, runtime.seed,
                                           request.id)
                if (cutoff is not None and leg.cycles > cutoff
                        and (sub_deadline is None
                             or start + cutoff < sub_deadline)):
                    hstart = start + cutoff
                    helper = self._hedge_replica(k, rep, excluded, hstart,
                                                 load)
                    if helper is not None:
                        hedges += 1
                        runtime.metrics.counter(
                            "serving.shards.hedges").inc()
                        hbudget = (None if sub_deadline is None
                                   else sub_deadline - hstart)
                        hleg = self._leg(request, plan.jobs[k], helper,
                                         hstart, hbudget, k, leg_seq,
                                         "hedge")
                        leg_seq += 1
                        legs.append(hleg)
                        round_legs.append(hleg)
                ok_legs = [l for l in round_legs if l.status == "ok"]
                if ok_legs:
                    winner = min(ok_legs, key=lambda l: l.own_finish)
                    resolve = winner.own_finish
                    if winner.kind == "hedge":
                        hedges_won += 1
                        runtime.metrics.counter(
                            "serving.shards.hedges_won").inc()
                    for l in round_legs:
                        l.resolved = resolve
                        l.replica.busy_until = min(l.own_finish, resolve)
                    results[k] = winner
                    resolve_at[k] = resolve
                    break
                # Every leg of this round failed: its verdicts all
                # materialized, so each replica is busy to its own finish.
                for l in round_legs:
                    l.resolved = l.own_finish
                    l.replica.busy_until = l.own_finish
                fault_legs = [l for l in round_legs
                              if l.status in ("fault", "error")]
                if not fault_legs:
                    # Sub-budget blown with no fault: the shard's deadline
                    # domain is exhausted — retrying cannot help.
                    first = min(round_legs, key=lambda l: l.own_finish)
                    lost[k] = (first.own_finish, first.error)
                    resolve_at[k] = first.own_finish
                    break
                for l in fault_legs:
                    excluded.add(l.replica.index)
                last_error = fault_legs[0].error
                rounds += 1
                if rounds > policy.shard_retries:
                    first = min(fault_legs, key=lambda l: l.own_finish)
                    lost[k] = (first.own_finish, first.error)
                    resolve_at[k] = first.own_finish
                    break
                retries += 1
                runtime.metrics.counter("serving.shards.retries").inc()
                t = min(l.own_finish for l in fault_legs)

        return self._gather(request, plan, policy, legs, results, lost,
                            resolve_at, now, scatter_done, deadline,
                            hedges, hedges_won, retries, parts, prefilled,
                            cached)

    def _hedge_replica(self, shard: int, primary: FabricReplica,
                       excluded: set, hstart: int,
                       load: Dict[int, int]) -> Optional[FabricReplica]:
        """Deterministic best free replica for a hedge leg, or None."""
        cand = [r for r in self.placeable(hstart)
                if r is not primary and r.index not in excluded
                and r.free_at(hstart)]
        for r in sorted(cand, key=lambda r: (
                load.get(r.index, 0),
                -shard_score(self.fleet_seed + 1, shard, r.index),
                r.index)):
            if r.breaker.allow(hstart):
                load[r.index] = load.get(r.index, 0) + 1
                return r
        return None

    def _leg(self, request: Request, shard_job: JoinShardJob,
             replica: FabricReplica, start: int, budget: Optional[int],
             shard: int, seq: int, kind: str) -> ShardLeg:
        runtime = self.runtime
        runtime.metrics.counter("serving.shards.legs").inc()
        replica.jobs_run += 1
        token = CancelToken(budget, tenant=request.tenant,
                            query=shard_job.name,
                            request_id=request.id)
        try:
            cycles, digest = replica.execute(shard_job, token=token)
            status, error = "ok", None
        except DeadlineExceeded as err:
            cycles, digest = err.cycle, None
            status, error = "deadline", err
        except FaultError as err:
            replica.faults_surfaced += 1
            cycles = err.cycle if err.cycle is not None else 1
            digest, status, error = None, "fault", err
        except SimulationError as err:
            cycles = err.cycle if err.cycle is not None else 1
            digest, status, error = None, "error", err
        cycles = max(1, cycles if cycles is not None else 1)
        # Flaky overlay: analytical shard jobs have no injector surface,
        # so a flaky replica's sickness manifests at the leg level — a
        # seeded draw per (replica, request, shard, leg) either faults the
        # leg partway or straggles it (which trips the hedge cutoff).
        if status == "ok" and replica.fault_seed is not None:
            draw = random.Random(derive_seed(
                replica.fault_seed, request.id, shard, seq))
            r = draw.random()
            frac = draw.random()
            if r < replica.fault_rate * 0.4:
                cycles = max(1, int(cycles * frac))
                digest = None
                status = "fault"
                error = FaultError(
                    f"shard leg {shard_job.name!r} faulted on flaky "
                    f"replica {replica.name} at cycle {start + cycles}",
                    kind="replica_fault", site=replica.name,
                    cycle=start + cycles)
                replica.faults_surfaced += 1
            elif r < replica.fault_rate:
                cycles = max(cycles + 1, int(cycles * (1.5 + 2.5 * frac)))
        if status == "ok" and budget is not None and cycles > budget:
            # A straggle that overruns the shard's sub-budget surfaces as
            # the shard's own deadline, at the sub-budget boundary.
            cycles = budget
            digest = None
            status = "deadline"
            error = DeadlineExceeded(
                f"shard leg {shard_job.name!r} exceeded its {budget}-cycle "
                f"sub-budget", tenant=request.tenant, query=request.query,
                request_id=request.id, deadline=budget, cycle=budget)
        if (replica.killed_at is not None
                and start + cycles > replica.killed_at):
            kill = max(start + 1, replica.killed_at)
            cycles = kill - start
            digest = None
            status = "fault"
            error = ReplicaLost(
                f"replica {replica.name} died at cycle "
                f"{replica.killed_at} mid-shard ({shard_job.name!r})",
                kind="replica_lost", site=replica.name,
                cycle=replica.killed_at)
            replica.faults_surfaced += 1
        return ShardLeg(shard=shard, replica=replica, start=start,
                        cycles=cycles, status=status, error=error,
                        digest=digest, kind=kind)

    # -- gather ------------------------------------------------------------

    def _gather(self, request, plan, policy, legs, results, lost,
                resolve_at, dispatched, scatter_done, deadline,
                hedges, hedges_won, retries, parts, prefilled,
                cached) -> ShardedExecution:
        K = plan.n_shards
        gather_at = max(resolve_at.values(), default=scatter_done)
        # A partition is present if its fabric leg won or the semantic
        # cache prefilled it; the merge runs over the partition set only.
        present = sorted(set(results) | set(prefilled))
        lost_idx = tuple(sorted(lost))
        finish = gather_at + plan.merge_cost(len(present))
        total_rows = sum(plan.rows[k] for k in parts)
        digest = partial = None

        def digest_of(k: int) -> Tuple:
            if k in prefilled:
                return (plan.jobs[k].name, prefilled[k])
            return results[k].digest

        if not lost_idx:
            merged = plan.job.merge_digests([digest_of(k) for k in parts])
            if deadline is not None and finish > deadline:
                status, finish = "deadline", deadline
                error = DeadlineExceeded(
                    f"request {request.id} blew its deadline in the "
                    f"gather/merge at cycle {deadline}",
                    tenant=request.tenant, query=request.query,
                    request_id=request.id, deadline=deadline,
                    cycle=deadline)
            else:
                status, error, digest = "ok", None, merged
        else:
            covered = sum(plan.rows[k] for k in present)
            coverage = (covered / total_rows if total_rows
                        else len(present) / max(1, len(parts)))
            shard_err = ShardsLost(
                f"request {request.id} lost shards {list(lost_idx)} of "
                f"{len(parts)} (coverage {coverage:.3f})",
                tenant=request.tenant, query=request.query,
                request_id=request.id, lost=lost_idx, n_shards=len(parts),
                coverage=coverage)
            if deadline is not None and finish > deadline:
                status, finish = "deadline", deadline
                error = DeadlineExceeded(
                    f"request {request.id} blew its deadline at cycle "
                    f"{deadline} with shards {list(lost_idx)} already "
                    f"lost", tenant=request.tenant, query=request.query,
                    request_id=request.id, deadline=deadline,
                    cycle=deadline)
            elif (policy.degrade.serve_partial
                    and coverage >= policy.degrade.min_coverage):
                partial = PartialResult(
                    coverage=coverage, rows_present=covered,
                    rows_expected=total_rows,
                    complete_shards=tuple(present),
                    lost_shards=lost_idx,
                    digest=plan.job.merge_digests(
                        [digest_of(k) for k in present]))
                status, error = "partial", shard_err
            else:
                status, error = "failed", shard_err
        return ShardedExecution(
            request=request, plan=plan, legs=legs, dispatched=dispatched,
            finish=finish, status=status, digest=digest, partial=partial,
            error=error, hedges=hedges, hedges_won=hedges_won,
            retries=retries, lost=lost_idx, parts=parts,
            prefilled=tuple(sorted(prefilled)),
            shard_digests={k: leg.digest for k, leg in results.items()},
            cached=cached)


class FleetManager:
    """Elastic replica-pool management, driven on every dispatch pass.

    Kill bookkeeping (a replica whose scheduled death has arrived is
    marked dead) is unconditional; growth, shrink, and quarantine need a
    :class:`FleetPolicy`.  All decisions read only virtual-clock state
    (queue depth, breaker transition logs, ``busy_until``), so the fleet
    trajectory is bit-reproducible from the run's seed.
    """

    def __init__(self, runtime, policy: Optional[FleetPolicy] = None):
        self.runtime = runtime
        self.policy = policy
        self.grows = 0
        self.shrinks = 0
        self.quarantines = 0
        self.revivals = 0
        self._last_scale: Optional[int] = None
        #: (cycle, action, replica-name) log — deterministic, assertable.
        self.events: List[Tuple[int, str, str]] = []

    # -- signals -----------------------------------------------------------

    @staticmethod
    def open_rate(replica: FabricReplica) -> int:
        """How many times this replica's breaker has opened (the
        quarantine signal)."""
        return sum(1 for __, state in replica.breaker.transitions
                   if state == "open")

    def active(self, now: int) -> List[FabricReplica]:
        return [r for r in self.runtime.replicas
                if r.state == ACTIVE and r.alive_at(now)]

    # -- the control loop --------------------------------------------------

    def autoscale(self, now: int) -> None:
        runtime = self.runtime
        for r in runtime.replicas:
            if (r.killed_at is not None and now >= r.killed_at
                    and r.state != DEAD):
                r.state = DEAD
                self.events.append((now, "killed", r.name))
                runtime.metrics.counter("serving.fleet.killed").inc()
        policy = self.policy
        if policy is None:
            return
        for r in runtime.replicas:
            if (r.state == ACTIVE
                    and self.open_rate(r) >= policy.quarantine_opens):
                self.quarantine(r, now)
        active = self.active(now)
        depth = runtime.admission.depth()
        if (self._last_scale is not None
                and now - self._last_scale < policy.scale_cooldown
                and len(active) >= policy.min_replicas):
            return
        if (len(active) < policy.min_replicas
                or (depth >= policy.grow_at_depth
                    and len(active) < policy.max_replicas)):
            if self._grow(now):
                self._last_scale = now
        elif (depth <= policy.shrink_below_depth
                and len(active) > policy.min_replicas):
            if self._shrink(now, active):
                self._last_scale = now

    def quarantine(self, replica: FabricReplica, now: int) -> None:
        """Pull a sick replica from placement; its shards re-place
        elsewhere on the next dispatch (rendezvous moves only them)."""
        replica.state = QUARANTINED
        self.quarantines += 1
        self.events.append((now, "quarantined", replica.name))
        self.runtime.metrics.counter("serving.fleet.quarantined").inc()

    def _grow(self, now: int) -> bool:
        runtime = self.runtime
        policy = self.policy
        if len(self.active(now)) >= policy.max_replicas:
            return False
        retired = [r for r in runtime.replicas if r.state == RETIRED]
        if retired:
            # Revive the most recently retired replica: its plan cache is
            # the warmest.
            replica = max(retired, key=lambda r: (r.spawned_at, r.index))
            replica.state = ACTIVE
            replica.busy_until = max(replica.busy_until, now)
            self.revivals += 1
            self.events.append((now, "revived", replica.name))
        else:
            replica = runtime._spawn_replica(now)
            self.events.append((now, "grown", replica.name))
        self.grows += 1
        runtime.metrics.counter("serving.fleet.grown").inc()
        return True

    def _shrink(self, now: int, active: List[FabricReplica]) -> bool:
        idle = [r for r in active if r.busy_until <= now]
        if not idle or len(active) <= self.policy.min_replicas:
            return False
        # Retire the newest idle replica (LIFO keeps the longest-warmed
        # plan caches serving).
        replica = max(idle, key=lambda r: (r.spawned_at, r.index))
        replica.state = RETIRED
        self.shrinks += 1
        self.events.append((now, "retired", replica.name))
        self.runtime.metrics.counter("serving.fleet.shrunk").inc()
        return True
