"""Bulkhead isolation: per-tenant and per-class concurrency limits.

One pathological tenant (or an unbounded batch backlog) must not occupy
every fabric replica and starve the pool.  A :class:`Bulkhead` caps how
many requests a tenant, and a priority class, may have *in flight*
simultaneously; requests over the cap stay queued (skipped by the
dispatcher, not shed) until a slot frees.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.serving.request import Request


class Bulkhead:
    """In-flight concurrency accounting."""

    def __init__(self, per_tenant: Optional[int] = None,
                 class_limits: Optional[Dict[str, int]] = None):
        self.per_tenant = per_tenant
        self.class_limits = dict(class_limits or {})
        self._tenant_active: Dict[str, int] = {}
        self._class_active: Dict[str, int] = {}
        #: Distinct dispatch skips due to a full bulkhead, maintained by
        #: the dispatcher (which knows how many unique requests it passed
        #: over, where this predicate may re-scan the same request).
        self.rejections = 0

    def admits(self, request: Request) -> bool:
        """True if dispatching ``request`` now stays within every limit.

        Pure: safe to call any number of times per request.
        """
        if (self.per_tenant is not None
                and self._tenant_active.get(request.tenant, 0)
                >= self.per_tenant):
            return False
        limit = self.class_limits.get(request.klass)
        if (limit is not None
                and self._class_active.get(request.klass, 0) >= limit):
            return False
        return True

    def acquire(self, request: Request) -> None:
        self._tenant_active[request.tenant] = (
            self._tenant_active.get(request.tenant, 0) + 1)
        self._class_active[request.klass] = (
            self._class_active.get(request.klass, 0) + 1)

    def release(self, request: Request) -> None:
        self._tenant_active[request.tenant] -= 1
        self._class_active[request.klass] -= 1

    def active(self, tenant: str) -> int:
        return self._tenant_active.get(tenant, 0)
