"""Fabric-level modeling: tile placement on the 20x20 grid and
interconnect accounting (the paper's place-and-route concern, §V-B)."""

from repro.fabric.place import (
    BISECTION_BYTES_PER_S,
    GRID_SIDE,
    GridPlacer,
    Placement,
    place_shards,
    placement_moves,
    placement_report,
    shard_score,
)

__all__ = [
    "BISECTION_BYTES_PER_S", "GRID_SIDE", "GridPlacer", "Placement",
    "place_shards", "placement_moves", "placement_report", "shard_score",
]
