"""Fabric-level modeling: tile placement on the 20x20 grid and
interconnect accounting (the paper's place-and-route concern, §V-B)."""

from repro.fabric.place import (
    BISECTION_BYTES_PER_S,
    GRID_SIDE,
    GridPlacer,
    Placement,
    placement_report,
)

__all__ = [
    "BISECTION_BYTES_PER_S", "GRID_SIDE", "GridPlacer", "Placement",
    "placement_report",
]
