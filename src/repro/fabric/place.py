"""Tile placement on the 20x20 fabric grid (§II-B, §V-B).

"A custom place and route tool maps these tiles onto the accelerator
fabric to account for the on-chip interconnect's latency and bandwidth."
This module is that tool's modeling core: it assigns each tile of a
dataflow graph to a grid coordinate (greedy BFS placement that keeps
connected tiles adjacent), then reports the interconnect figures the
paper's tool optimizes — per-stream Manhattan hop counts, total wire
length, and bisection-link traffic against the fabric's published
5.1 TB/s bisection bandwidth.

The cycle engine does not consume these latencies (Aurochs is latency-
tolerant by design — §III-A shows throughput is independent of on-chip
delay once enough threads are in flight, and the microbenchmarks verify
it); placement quality instead feeds resource/bandwidth feasibility
checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PlanError
from repro.dataflow.graph import Graph
from repro.dataflow.tile import Tile

#: Fabric grid side (20x20 tiles, §II-B).
GRID_SIDE = 20

#: Published bisection bandwidth of Gorgon's interconnect (§II-B).
BISECTION_BYTES_PER_S = 5.1e12

#: Per-hop link bandwidth: one 16-lane vector (64 B) per cycle at 1 GHz.
LINK_BYTES_PER_S = 64e9

Coord = Tuple[int, int]


@dataclass
class Placement:
    """A graph's tile-to-coordinate assignment plus interconnect stats."""

    coords: Dict[str, Coord] = field(default_factory=dict)
    hops: Dict[str, int] = field(default_factory=dict)   # per stream name

    @property
    def total_wire_length(self) -> int:
        return sum(self.hops.values())

    @property
    def max_hops(self) -> int:
        return max(self.hops.values(), default=0)

    def bisection_traffic_fraction(self, records_per_s: float,
                                   record_bytes: int = 64) -> float:
        """Fraction of bisection bandwidth used if every stream crossing
        the grid midline carries ``records_per_s`` vectors."""
        crossing = sum(
            1 for name, h in self.hops.items() if h > 0
        )
        traffic = crossing * records_per_s * record_bytes
        return traffic / BISECTION_BYTES_PER_S


class GridPlacer:
    """Greedy BFS placement: each tile lands as close as possible to the
    centroid of its already-placed neighbours."""

    def __init__(self, side: int = GRID_SIDE):
        self.side = side

    def place(self, graph: Graph) -> Placement:
        if len(graph.tiles) > self.side * self.side:
            raise PlanError(
                f"graph needs {len(graph.tiles)} tiles; the fabric has "
                f"{self.side * self.side}")
        placement = Placement()
        occupied: Dict[Coord, str] = {}
        # Deterministic order: tiles as added (sources first by
        # convention), so pipelines snake across the grid.
        for tile in graph.tiles:
            target = self._target(tile, placement)
            coord = self._nearest_free(target, occupied)
            placement.coords[tile.name] = coord
            occupied[coord] = tile.name
        for stream in graph.streams:
            a = placement.coords[stream.producer.name]
            b = placement.coords[stream.consumer.name]
            placement.hops[stream.name] = self._manhattan(a, b)
        return placement

    # -- helpers ------------------------------------------------------------

    def _target(self, tile: Tile, placement: Placement) -> Coord:
        """Centroid of placed neighbours; grid centre for the first tile."""
        neighbours: List[Coord] = []
        for stream in tile.inputs:
            producer = stream.producer
            if producer is not None and producer.name in placement.coords:
                neighbours.append(placement.coords[producer.name])
        for stream in tile.outputs:
            consumer = stream.consumer
            if consumer is not None and consumer.name in placement.coords:
                neighbours.append(placement.coords[consumer.name])
        if not neighbours:
            return (self.side // 2, self.side // 2)
        x = sum(c[0] for c in neighbours) // len(neighbours)
        y = sum(c[1] for c in neighbours) // len(neighbours)
        return (x, y)

    def _nearest_free(self, target: Coord,
                      occupied: Dict[Coord, str]) -> Coord:
        """Spiral outward from ``target`` to the first free cell."""
        if target not in occupied:
            return target
        for radius in range(1, 2 * self.side):
            for dx in range(-radius, radius + 1):
                for dy in (-radius + abs(dx), radius - abs(dx)):
                    c = (target[0] + dx, target[1] + dy)
                    if (0 <= c[0] < self.side and 0 <= c[1] < self.side
                            and c not in occupied):
                        return c
        raise PlanError("fabric grid full")

    @staticmethod
    def _manhattan(a: Coord, b: Coord) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])


# -- shard -> replica placement ---------------------------------------------
#
# The serving tier's scatter/gather subsystem partitions a query's dataset
# into K radix shards and fans them out over a *fleet* of fabric replicas.
# Placement there has the same job as tile placement above — a
# deterministic assignment that the rest of the system can reason about —
# plus one fleet-specific requirement: when a replica is quarantined or a
# new one joins, only the shards that must move do move (the rest of the
# assignment is undisturbed, so warmed per-replica plan caches stay hot).
# Rendezvous (highest-random-weight) hashing gives exactly that property.

_M64 = (1 << 64) - 1


def _mix64(*parts: int) -> int:
    """SplitMix64-style avalanche over the concatenated integer parts."""
    acc = 0x9E3779B97F4A7C15
    for p in parts:
        acc = (acc + (int(p) & _M64) + 0x9E3779B97F4A7C15) & _M64
        acc ^= acc >> 30
        acc = (acc * 0xBF58476D1CE4E5B9) & _M64
        acc ^= acc >> 27
        acc = (acc * 0x94D049BB133111EB) & _M64
        acc ^= acc >> 31
    return acc


def shard_score(seed: int, shard: int, replica: int) -> int:
    """Rendezvous weight of placing ``shard`` on ``replica``."""
    return _mix64(seed, shard, replica)


def place_shards(n_shards: int, replicas: "List[int]",
                 seed: int = 0) -> List[int]:
    """Deterministic shard→replica assignment by rendezvous hashing.

    ``replicas`` are stable integer replica ids (indices into the fleet —
    names are process-dependent, indices are not).  Returns one replica id
    per shard.  Properties the serving tier leans on:

    * same ``(seed, fleet)`` → identical assignment, independent of the
      order ``replicas`` is passed in;
    * removing a replica (quarantine, kill, retirement) moves **only**
      that replica's shards — every other shard keeps its placement;
    * adding a replica (elastic growth) moves only the shards that now
      score highest on the newcomer.
    """
    if n_shards < 0:
        raise PlanError("n_shards must be >= 0")
    pool = sorted(set(int(r) for r in replicas))
    if not pool:
        raise PlanError("no replicas available for shard placement")
    return [max(pool, key=lambda rep: (shard_score(seed, shard, rep), rep))
            for shard in range(n_shards)]


def placement_moves(before: "List[int]", after: "List[int]") -> List[int]:
    """Shard indices whose assignment changed between two placements."""
    if len(before) != len(after):
        raise PlanError("placements cover different shard counts")
    return [s for s, (a, b) in enumerate(zip(before, after)) if a != b]


def placement_report(graph: Graph, placement: Placement) -> str:
    """Human-readable placement summary."""
    lines = [f"placement of {graph.name!r}: {len(placement.coords)} tiles"]
    lines.append(f"  total wire length: {placement.total_wire_length} hops")
    lines.append(f"  longest stream: {placement.max_hops} hops")
    worst = sorted(placement.hops.items(), key=lambda kv: -kv[1])[:3]
    for name, hops in worst:
        lines.append(f"    {name}: {hops} hops")
    return "\n".join(lines)
