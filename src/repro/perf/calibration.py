"""Analytical-model validation against the cycle-level engine (§V-B).

The paper validates its analytical projection "against smaller cycle-level
simulations"; this module does the same: it runs a kernel's dataflow graph
through the cycle engine at small sizes, prices the identical workload
with the analytical model, and reports the cycle ratio.  Tests assert the
ratio stays within a band; the figure benches print it alongside the
projected points.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.dataflow import run_graph
from repro.perf.cost_model import CostModel
from repro.perf.kernels import hash_build_events, hash_probe_events
from repro.structures.hashtable import HashTableDataflow


@dataclass
class CalibrationPoint:
    """One size's cycle-sim vs analytical comparison."""

    kernel: str
    n: int
    simulated_cycles: int
    model_cycles: float

    @property
    def ratio(self) -> float:
        return self.simulated_cycles / self.model_cycles if self.model_cycles else 0.0


def calibrate_hash_build(sizes: List[int], seed: int = 11
                         ) -> List[CalibrationPoint]:
    """Cycle-simulate hash builds and compare to the analytical model."""
    rng = random.Random(seed)
    model = CostModel(parallel_streams=1)
    points = []
    for n in sizes:
        ht = HashTableDataflow(n_buckets=max(16, n), spad_node_capacity=2 * n)
        pairs = [(rng.randrange(4 * n), i) for i in range(n)]
        stats = run_graph(ht.build_graph(pairs))
        analytic = model.event_cycles(hash_build_events(n)).cycles
        points.append(CalibrationPoint("hash_build", n, stats.cycles,
                                       analytic))
    return points


def calibrate_hash_probe(sizes: List[int], seed: int = 13
                         ) -> List[CalibrationPoint]:
    """Cycle-simulate hash probes and compare to the analytical model."""
    rng = random.Random(seed)
    model = CostModel(parallel_streams=1)
    points = []
    for n in sizes:
        ht = HashTableDataflow(n_buckets=max(16, n), spad_node_capacity=2 * n)
        ht.load([(rng.randrange(n), i) for i in range(n)])
        queries = [(q, rng.randrange(2 * n)) for q in range(n)]
        stats = run_graph(ht.probe_graph(queries, emit_all=False))
        analytic = model.event_cycles(hash_probe_events(n)).cycles
        points.append(CalibrationPoint("hash_probe", n, stats.cycles,
                                       analytic))
    return points


def report(points: List[CalibrationPoint]) -> str:
    lines = ["calibration (cycle sim vs analytical model):"]
    for p in points:
        lines.append(
            f"  {p.kernel} n={p.n}: sim={p.simulated_cycles} "
            f"model={p.model_cycles:.0f} ratio={p.ratio:.2f}"
        )
    return "\n".join(lines)
