"""Analytical cost model: hardware events → Aurochs cycles → seconds.

The paper's method (§V-B): "Cycle-accurate simulation imposes practical
limits on table sizes, so we project performance at larger datasets using
an analytical model validated against smaller cycle-level simulations."
This module is that analytical model; ``repro.perf.calibration`` performs
the validation against the cycle engine.

An operator's cycles are the max of three pressure terms (tiles pipeline,
so the slowest resource bounds throughput):

* compute — records processed through 16-lane vector tiles, divided by the
  operator's stream-level parallelization (fig. 12's knob);
* scratchpad — SRAM accesses and RMW atomics at ≤ banks/cycle per tile,
  inflated by an expected bank-conflict factor for random addresses;
* DRAM — dense bytes at full bandwidth, sparse accesses at one DRAM burst
  (64 B) each regardless of useful payload.

Operators execute back-to-back (materialized between stages), so a query's
cycles are the sum over its trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.db.context import ExecutionContext, OpTrace
from repro.perf.params import AUROCHS, FabricParams
from repro.structures.common import StructureEvents

#: DRAM burst granularity: sparse requests pay a full burst.
BURST_BYTES = 64

#: Expected allocator rounds per access for uniformly random bank targets
#: (balls-into-bins expansion: with 16 lanes bidding 16 banks and depth-8
#: reordering, measured conflict overhead is ~1.25x; see calibration).
BANK_CONFLICT_FACTOR = 1.25


@dataclass
class CostBreakdown:
    """Cycles per pressure term for one operator or a whole query."""

    compute_cycles: float = 0.0
    spad_cycles: float = 0.0
    dram_cycles: float = 0.0

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.spad_cycles, self.dram_cycles)

    @property
    def bound(self) -> str:
        """Which resource limits this stage ('compute'|'spad'|'dram')."""
        terms = {"compute": self.compute_cycles, "spad": self.spad_cycles,
                 "dram": self.dram_cycles}
        return max(terms, key=terms.get)


#: Cycles of fixed overhead per operator stage: pipeline fill/drain across
#: the tile graph plus inter-stage materialization turnaround.
STAGE_OVERHEAD_CYCLES = 1000


class CostModel:
    """Prices event traces on a fabric configuration."""

    def __init__(self, fabric: FabricParams = AUROCHS,
                 parallel_streams: int = 4,
                 stage_overhead_cycles: int = STAGE_OVERHEAD_CYCLES):
        if parallel_streams < 1:
            raise ValueError("parallel_streams must be >= 1")
        self.fabric = fabric
        self.parallel_streams = parallel_streams
        self.stage_overhead_cycles = stage_overhead_cycles

    # -- per-event-set pricing ----------------------------------------------

    def event_cycles(self, events: StructureEvents,
                     rows: int = 0) -> CostBreakdown:
        """Price one operator's events into a cycle breakdown."""
        f = self.fabric
        p = self.parallel_streams
        records = max(events.records_processed, rows)
        compute = records / (f.lanes * p)

        spad_accesses = (events.spad_reads + events.spad_writes
                         + events.rmw_ops + events.rmw_retries)
        # Each parallel stream owns its scratchpad tile; banks serve up to
        # `banks` accesses/cycle, degraded by expected conflicts.
        spad = spad_accesses * BANK_CONFLICT_FACTOR / (f.banks * p)

        sparse_cost = events.dram_sparse_accesses * BURST_BYTES
        payload = events.dram_read_bytes + events.dram_write_bytes
        # Sparse accesses waste the rest of their burst; dense traffic
        # streams at full bandwidth.  DRAM is shared across streams.
        effective_bytes = max(payload, sparse_cost)
        dram = effective_bytes / f.bytes_per_cycle
        return CostBreakdown(compute, spad, dram)

    # -- trace pricing ----------------------------------------------------------

    def trace_cycles(self, traces: Iterable[OpTrace]) -> float:
        """Total cycles of a query's operator trace (sequential stages)."""
        total = 0.0
        for t in traces:
            total += (self.event_cycles(t.events, rows=t.rows_in).cycles
                      + self.stage_overhead_cycles)
        return total

    def query_runtime(self, ctx: ExecutionContext) -> float:
        """Seconds for a traced query execution."""
        return self.trace_cycles(ctx.traces) / self.fabric.clock_hz

    def query_breakdown(self, ctx: ExecutionContext):
        """Per-operator (trace, breakdown) pairs — which resource bounds
        each stage, for roofline-style analysis of a query."""
        return [(t, self.event_cycles(t.events, rows=t.rows_in))
                for t in ctx.traces]

    def runtime_seconds(self, events: StructureEvents, rows: int = 0) -> float:
        """Seconds for a single event set."""
        return self.event_cycles(events, rows).cycles / self.fabric.clock_hz

    # -- resource saturation (fig. 12) ----------------------------------------------

    def throughput_bytes_per_s(self, events: StructureEvents,
                               input_bytes: int) -> float:
        """Input bytes processed per second at this parallelization."""
        seconds = self.runtime_seconds(events)
        return input_bytes / seconds if seconds > 0 else float("inf")
