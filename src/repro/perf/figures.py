"""Programmatic figure series: every evaluation figure as a function.

The benchmarks print and assert these; this module is the library API so
downstream users can regenerate any figure's data without pytest — e.g.::

    from repro.perf import figures
    series = figures.fig11a_join_scaling()
    print(series["aurochs"])   # seconds per table size

Functions return plain dicts/lists of numbers, never formatted text.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.perf.cost_model import CostModel
from repro.perf.kernels import (
    gorgon_nlj_spatial_events,
    gorgon_spatial_events,
    hash_build_events,
    hash_join_events,
    hash_probe_events,
    partition_events,
    rtree_join_events,
    sort_merge_join_events,
)
from repro.perf.params import CPU, GPU

#: Default table sizes for the fig. 11 sweeps.
FIG11_SIZES = (10 ** 4, 10 ** 5, 10 ** 6, 10 ** 7, 10 ** 8)

#: Default parallelization for the "fully unrolled" Aurochs columns.
DEFAULT_STREAMS = 16


def fig11a_join_scaling(sizes: Sequence[int] = FIG11_SIZES,
                        streams: int = DEFAULT_STREAMS
                        ) -> Dict[str, List[float]]:
    """Equi-join runtime (s) per platform, per table size (fig. 11a)."""
    model = CostModel(parallel_streams=streams)
    out: Dict[str, List[float]] = {
        "sizes": list(sizes), "aurochs": [], "gorgon": [], "cpu": [],
        "gpu": [],
    }
    for n in sizes:
        out["aurochs"].append(
            model.runtime_seconds(hash_join_events(n, n)))
        out["gorgon"].append(
            model.runtime_seconds(sort_merge_join_events(n, n)))
        rows = 2 * n
        out["cpu"].append(max(
            rows / (CPU.cores * CPU.hash_join_rows_per_s),
            rows * 8 / CPU.dram_bw_bytes))
        out["gpu"].append(rows * 8 / GPU.join_bytes_per_s)
    return out


def fig11b_spatial_scaling(sizes: Sequence[int] = FIG11_SIZES,
                           n_fixed: int = 10 ** 5,
                           streams: int = DEFAULT_STREAMS
                           ) -> Dict[str, List[float]]:
    """Spatial join runtime (s) per platform (fig. 11b)."""
    model = CostModel(parallel_streams=streams)
    out: Dict[str, List[float]] = {
        "sizes": list(sizes), "aurochs": [], "gorgon_sort": [],
        "gorgon_nlj": [], "cpu": [], "gpu": [],
    }
    for n in sizes:
        out["aurochs"].append(
            model.runtime_seconds(rtree_join_events(n_fixed, n)))
        out["gorgon_sort"].append(
            model.runtime_seconds(gorgon_spatial_events(n_fixed, n)))
        out["gorgon_nlj"].append(
            model.runtime_seconds(gorgon_nlj_spatial_events(n_fixed, n)))
        probes = n * max(1.0, math.log2(n_fixed) / 8.0)
        out["cpu"].append(probes / (CPU.cores * CPU.spatial_pair_per_s))
        out["gpu"].append(n_fixed * n / GPU.spatial_pair_per_s)
    return out


def fig12_parallel_scaling(n: int = 10 ** 7,
                           streams: Sequence[int] = (1, 2, 4, 8, 16, 32)
                           ) -> Dict[str, List[float]]:
    """Kernel throughput (B/s) per stream-parallelism level (fig. 12)."""
    kernels = {
        "hash_join": (hash_join_events(n, n), 2 * n * 8),
        "hash_build": (hash_build_events(n), n * 8),
        "hash_probe": (hash_probe_events(n), n * 8),
        "partition": (partition_events(n), n * 8),
        "sort_merge_join": (sort_merge_join_events(n, n), 2 * n * 8),
    }
    out: Dict[str, List[float]] = {"streams": list(streams)}
    for name, (ev, nbytes) in kernels.items():
        out[name] = [
            CostModel(parallel_streams=p).throughput_bytes_per_s(ev, nbytes)
            for p in streams
        ]
    return out


def warp_efficiency(n: int = 1 << 14, hit_rate: float = 0.8,
                    seed: int = 77) -> Dict[str, float]:
    """§III-A's SIMT profile: build/probe warp efficiency + barrier view."""
    from repro.baselines.gpu_simt import SimtHashJoin
    rng = random.Random(seed)
    table = [rng.randrange(1 << 30) for __ in range(n)]
    probes = [rng.choice(table) if rng.random() < hit_rate
              else rng.randrange(1 << 30) for __ in range(n)]
    sim = SimtHashJoin()
    barrier = SimtHashJoin(block_barrier=True)
    return {
        "build": sim.build(table, n).warp_efficiency,
        "probe": sim.probe(probes, table, n).warp_efficiency,
        "probe_with_barrier": barrier.probe(probes, table, n).warp_efficiency,
    }


def fig14_queries(data=None, streams: int = DEFAULT_STREAMS
                  ) -> Dict[str, Dict[str, float]]:
    """Per-query runtime (s) on Aurochs/CPU/GPU (fig. 14's left half).

    Pass a generated :class:`~repro.workloads.rideshare.RideshareData`;
    defaults to a small configuration suitable for tests.
    """
    from repro.baselines import CpuModel, GpuModel
    from repro.db import ExecutionContext
    from repro.workloads import QUERIES, RideshareConfig, generate, run_query

    if data is None:
        data = generate(RideshareConfig())
    aurochs = CostModel(parallel_streams=streams)
    cpu, gpu = CpuModel(), GpuModel()
    out: Dict[str, Dict[str, float]] = {}
    for name in QUERIES:
        ctx = ExecutionContext()
        run_query(name, data, ctx)
        out[name] = {
            "aurochs": aurochs.query_runtime(ctx),
            "cpu": cpu.query_runtime(ctx),
            "gpu": gpu.query_runtime(ctx),
        }
    return out


def geomean_speedups(queries: Dict[str, Dict[str, float]]
                     ) -> Dict[str, float]:
    """Aggregate fig. 14 speedups from :func:`fig14_queries` output."""
    import statistics
    vs_cpu = [q["cpu"] / q["aurochs"] for q in queries.values()]
    vs_gpu = [q["gpu"] / q["aurochs"] for q in queries.values()]
    return {
        "vs_cpu": statistics.geometric_mean(vs_cpu),
        "vs_gpu": statistics.geometric_mean(vs_gpu),
    }
