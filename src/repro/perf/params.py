"""Architecture parameters for Aurochs and the baseline platforms.

Mirrors Table 1's platform inventory.  Aurochs/Gorgon numbers come from the
paper (§II-B: 20×20 tile grid at 1 GHz, 16-lane tiles, 256 KiB scratchpads,
5.1 TB/s bisection; §V: HBM, design power used for the energy comparison).
Baseline numbers are representative of the paper's testbed class (dual-
socket server CPU; V100-class GPU with ~900 GB/s HBM2 and 16 GiB capacity).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FabricParams:
    """The Aurochs/Gorgon reconfigurable dataflow fabric."""

    name: str = "Aurochs"
    clock_hz: float = 1e9
    grid: int = 20                       # 20 x 20 tiles
    lanes: int = 16
    banks: int = 16
    spad_bytes: int = 256 * 1024
    compute_tiles: int = 200             # half the grid
    memory_tiles: int = 200
    dram_bw_bytes: float = 1.0e12        # HBM, ~1 TB/s
    dram_latency_s: float = 100e-9
    power_w: float = 120.0               # design power (energy comparisons)

    @property
    def bytes_per_cycle(self) -> float:
        return self.dram_bw_bytes / self.clock_hz

    @property
    def tile_stream_bytes_per_s(self) -> float:
        # Each tile processes one 16-lane x 32-bit vector per cycle (§II-B:
        # 64 GB/s per compute tile).
        return self.lanes * 4 * self.clock_hz


@dataclass(frozen=True)
class CpuParams:
    """Multi-socket server CPU running a software time-series DB."""

    name: str = "CPU (2S server, software DB)"
    cores: int = 48
    clock_hz: float = 2.5e9
    dram_bw_bytes: float = 200e9
    llc_bytes: int = 70 * 1024 * 1024
    power_w: float = 400.0
    # Effective per-core operator rates (rows/s) for the PostgreSQL-family
    # software database of Table 1 (row store, interpreted executor); the
    # paper's constant-factor claim (~160x behind Aurochs) pins the
    # aggregate magnitude.
    hash_join_rows_per_s: float = 0.8e6
    sort_rows_per_s: float = 1.5e6
    scan_rows_per_s: float = 20e6
    index_probe_per_s: float = 0.5e6
    spatial_pair_per_s: float = 0.4e6


@dataclass(frozen=True)
class GpuParams:
    """V100-class GPU running CUDA database/geospatial/ML libraries."""

    name: str = "GPU (V100-class, CUDA libraries)"
    sms: int = 80
    warp_size: int = 32
    clock_hz: float = 1.4e9
    dram_bw_bytes: float = 900e9
    mem_bytes: int = 16 * 1024 ** 3
    power_w: float = 300.0
    # Paper §V: the GPU joins 100M-row tables at 4.5 GB/s.
    join_bytes_per_s: float = 4.5e9
    # Warp execution efficiency the paper profiles on hash join (§III-A).
    build_warp_efficiency: float = 0.62
    probe_warp_efficiency: float = 0.46
    scan_bytes_per_s: float = 600e9      # streaming scans near memory-bound
    sort_rows_per_s: float = 1.0e9
    spatial_pair_per_s: float = 2.0e9    # brute-force pair tests (no index)
    # Probes against a PRE-BUILT spatial index (§V-B gives the GPU
    # materialized stream tables with pre-built indices); tree walks
    # diverge, so this sits far below the GPU's dense throughput.
    spatial_probe_per_s: float = 4.0e8


AUROCHS = FabricParams()
GORGON = FabricParams(name="Gorgon (baseline fabric)")
CPU = CpuParams()
GPU = GpuParams()
