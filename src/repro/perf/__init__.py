"""Performance models: the analytical cost model (validated against the
cycle engine), kernel event composers for the scaling figures, the area
overhead accounting (fig. 10), and the energy estimator (fig. 14)."""

from repro.perf.params import AUROCHS, CPU, GORGON, GPU, FabricParams
from repro.perf.cost_model import (
    BANK_CONFLICT_FACTOR,
    BURST_BYTES,
    CostBreakdown,
    CostModel,
)
from repro.perf.area import (
    area_breakdown,
    chip_overhead_pct,
    scratchpad_overhead_pct,
)
from repro.perf.area import report as area_report
from repro.perf.energy import energy_joules, platform_power
from repro.perf import figures, kernels
from repro.perf.calibration import (
    CalibrationPoint,
    calibrate_hash_build,
    calibrate_hash_probe,
)

__all__ = [
    "AUROCHS", "CPU", "GORGON", "GPU", "FabricParams",
    "BANK_CONFLICT_FACTOR", "BURST_BYTES", "CostBreakdown", "CostModel",
    "area_breakdown", "chip_overhead_pct", "scratchpad_overhead_pct",
    "area_report",
    "energy_joules", "platform_power",
    "figures", "kernels",
    "CalibrationPoint", "calibrate_hash_build", "calibrate_hash_probe",
]
