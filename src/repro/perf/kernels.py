"""Analytical kernel event composers for the scaling figures.

Fig. 11 scales tables to 100M rows — far beyond what a Python
cycle-level (or even functional) execution can touch — so, exactly like
the paper, the large-size points come from an analytical model: these
functions compose the :class:`~repro.structures.common.StructureEvents`
each kernel *would* generate, with coefficients matching the functional
implementations (tests validate the two against each other at small n).

All kernels assume 8-byte tuples (the paper's fig. 11 workload).
"""

from __future__ import annotations

import math

from repro.structures.btree import LEAF_WORDS, SUMMARY_WORDS
from repro.structures.hashtable import NODE_WORDS
from repro.structures.rtree import CHILD_WORDS
from repro.db.operators.sortutil import charge_sort
from repro.structures.common import StructureEvents

#: fig. 11's tuple size.
ROW_BYTES = 8

#: Expected nodes visited per probe at load factor 1 (1 + alpha/2).
EXPECTED_CHAIN = 1.5


def hash_join_events(n_left: int, n_right: int,
                     row_bytes: int = ROW_BYTES) -> StructureEvents:
    """Radix-partitioned hash join: O(n) in both table sizes (§IV-A)."""
    ev = StructureEvents()
    n = n_left + n_right
    # Phase 1 — partition to DRAM: hash map, FAA slot reservation, sparse
    # scatter out, dense block read-back.
    ev.rmw_ops += n
    ev.dram_write_bytes += n * row_bytes
    ev.dram_sparse_accesses += n
    ev.dram_read_bytes += n * row_bytes
    ev.dram_dense_accesses += max(1, n * row_bytes // 64)
    # Phase 2 — on-chip build (CAS prepend) and probe (chain walk).
    ev.spad_reads += n_right                      # head read on insert
    ev.spad_writes += n_right * NODE_WORDS        # node scatter
    ev.rmw_ops += n_right                         # CAS prepend
    ev.spad_reads += int(n_left * (1 + EXPECTED_CHAIN * NODE_WORDS))
    ev.records_processed += 2 * n                 # both phases stream all rows
    return ev


def sort_merge_join_events(n_left: int, n_right: int,
                           row_bytes: int = ROW_BYTES) -> StructureEvents:
    """Gorgon's sort-merge join: O(n log n) in DRAM passes (§II-A)."""
    ev = StructureEvents()
    charge_sort(ev, n_left, row_bytes)
    charge_sort(ev, n_right, row_bytes)
    merge_bytes = (n_left + n_right) * row_bytes
    ev.dram_read_bytes += merge_bytes
    ev.dram_dense_accesses += max(1, merge_bytes // 64)
    ev.records_processed += n_left + n_right
    return ev


def hash_build_events(n_rows: int) -> StructureEvents:
    """On-chip hash table build alone (fig. 12's build kernel)."""
    ev = StructureEvents()
    ev.dram_read_bytes += n_rows * ROW_BYTES
    ev.dram_dense_accesses += max(1, n_rows * ROW_BYTES // 64)
    ev.spad_reads += n_rows
    ev.spad_writes += n_rows * NODE_WORDS
    ev.rmw_ops += n_rows
    ev.records_processed += n_rows
    return ev


def hash_probe_events(n_probes: int) -> StructureEvents:
    """On-chip hash probe alone (fig. 12's probe kernel)."""
    ev = StructureEvents()
    ev.dram_read_bytes += n_probes * ROW_BYTES
    ev.dram_dense_accesses += max(1, n_probes * ROW_BYTES // 64)
    ev.spad_reads += int(n_probes * (1 + EXPECTED_CHAIN * NODE_WORDS))
    ev.records_processed += n_probes
    return ev


def partition_events(n_rows: int, row_bytes: int = ROW_BYTES
                     ) -> StructureEvents:
    """Radix partitioning alone (fig. 12's partition kernel)."""
    ev = StructureEvents()
    ev.rmw_ops += n_rows
    ev.dram_write_bytes += n_rows * row_bytes
    ev.dram_sparse_accesses += n_rows
    ev.dram_read_bytes += n_rows * row_bytes   # stream the input in
    ev.dram_dense_accesses += max(1, n_rows * row_bytes // 64)
    ev.records_processed += n_rows
    return ev


def btree_probe_events(n_queries: int, n_rows: int,
                       fanout: int = 16) -> StructureEvents:
    """Index probes: O(log n) node gathers per query (§IV-B)."""
    ev = StructureEvents()
    height = max(1, math.ceil(math.log(max(2, n_rows), fanout)))
    ev.dram_sparse_accesses += n_queries * height
    ev.dram_read_bytes += n_queries * height * fanout * SUMMARY_WORDS * 4
    ev.dram_read_bytes += n_queries * fanout * LEAF_WORDS * 4
    ev.dram_dense_accesses += n_queries
    ev.records_processed += n_queries * height
    return ev


def table_scan_events(n_rows: int, row_bytes: int = ROW_BYTES
                      ) -> StructureEvents:
    """Brute-force scan: the index-less baseline for range queries."""
    ev = StructureEvents()
    ev.dram_read_bytes += n_rows * row_bytes
    ev.dram_dense_accesses += max(1, n_rows * row_bytes // 64)
    ev.records_processed += n_rows
    return ev


def rtree_join_events(n_indexed: int, n_probes: int,
                      fanout: int = 16,
                      hits_per_probe: float = 2.0) -> StructureEvents:
    """Spatial join as streamed index probes: O(m log n) total (§IV-C).

    The fixed side's R-tree upper levels are cached in scratchpads and the
    probe stream is Z-sorted, so consecutive probes share leaf blocks:
    node tests are vectorized compute, DRAM sees both tables streamed
    densely plus the (small) index once.
    """
    ev = StructureEvents()
    height = max(1, math.ceil(math.log(max(2, n_indexed), fanout)))
    per_probe_nodes = height + hits_per_probe
    # Vectorized bounding-box tests while descending / emitting hits.
    ev.records_processed += int(n_probes * per_probe_nodes)
    ev.spad_reads += int(n_probes * height)     # cached node accesses
    # Stream the probe table in and the index's leaf level once.
    ev.dram_read_bytes += n_probes * ROW_BYTES
    ev.dram_read_bytes += n_indexed * CHILD_WORDS * 4
    ev.dram_dense_accesses += max(
        1, (n_probes * ROW_BYTES + n_indexed * CHILD_WORDS * 4) // 64)
    return ev


def gorgon_spatial_events(n_fixed: int, n_scaled: int,
                          row_bytes: int = ROW_BYTES) -> StructureEvents:
    """Gorgon's spatial strategy: presort the scaled table (O(n log n)),
    then merge-scan it against the fixed table (fig. 11b's baseline)."""
    ev = StructureEvents()
    charge_sort(ev, n_scaled, row_bytes)
    scan_bytes = (n_scaled + n_fixed) * row_bytes
    ev.dram_read_bytes += scan_bytes
    ev.dram_dense_accesses += max(1, scan_bytes // 64)
    ev.records_processed += n_scaled + n_fixed
    return ev


def gorgon_nlj_spatial_events(n_fixed: int, n_scaled: int
                              ) -> StructureEvents:
    """Gorgon without any index: all-to-all comparisons (the paper calls
    this "impractical for real-world datasets")."""
    ev = StructureEvents()
    pairs = n_fixed * n_scaled
    ev.records_processed += pairs
    ev.dram_read_bytes += n_scaled * ROW_BYTES
    ev.dram_dense_accesses += max(1, n_scaled * ROW_BYTES // 64)
    return ev
