"""Energy model (fig. 14's right half).

The paper estimates energy "by multiplying runtime with design power"; we
do exactly the same, with platform powers from ``repro.perf.params``.
"""

from __future__ import annotations

from repro.perf.params import AUROCHS, CPU, GPU, CpuParams, FabricParams, GpuParams


def energy_joules(runtime_s: float, power_w: float) -> float:
    """Runtime × design power — the paper's estimator."""
    if runtime_s < 0:
        raise ValueError("runtime must be non-negative")
    return runtime_s * power_w


def platform_power(platform: str) -> float:
    """Design power for 'aurochs' | 'gorgon' | 'cpu' | 'gpu'."""
    return {
        "aurochs": AUROCHS.power_w,
        "gorgon": AUROCHS.power_w,
        "cpu": CPU.power_w,
        "gpu": GPU.power_w,
    }[platform]
