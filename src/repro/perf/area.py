"""Area model: the sparse reordering pipeline's overhead (fig. 10, §V-A).

The paper synthesizes its Chisel RTL with a 15 nm predictive PDK and
reports: the additions increase *scratchpad* area by 15%, which is a 5%
increase in *total* chip area, with the allocator itself only a small
portion.  We cannot re-run Synopsys DC here, so this module reproduces the
accounting: a per-component breakdown calibrated to those published
totals, with component shares derived from their relative register/logic
content (issue-queue request storage dominates; the combinational
allocator is tiny).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.memory.issue_queue import DEPTH_AUROCHS
from repro.memory.scratchpad import BANKS
from repro.dataflow.record import LANES

#: Fraction of Gorgon die area occupied by scratchpad tiles: the paper's
#: 15%-of-scratchpad == 5%-of-chip identity implies one third.
SCRATCHPAD_CHIP_FRACTION = 1 / 3

#: Published totals (percent of the baseline Gorgon scratchpad area).
SCRATCHPAD_OVERHEAD_PCT = 15.0
CHIP_OVERHEAD_PCT = 5.0


@dataclass(frozen=True)
class AreaComponent:
    """One added block, with its estimated register-bit content."""

    name: str
    description: str
    bits: int


def _components() -> List[AreaComponent]:
    """Register-bit inventory of the additions (both ports, per tile)."""
    ports = 2
    addr_bits = 32
    data_bits = 32
    bank_bits = 4
    queue_entries = LANES * DEPTH_AUROCHS * ports
    return [
        AreaComponent(
            "issue queue register file",
            "address/data payload of queued requests (register file)",
            queue_entries * (addr_bits + data_bits)),
        AreaComponent(
            "issue queue bank tags",
            "per-slot bank ids in registers for parallel allocator readout",
            queue_entries * (bank_bits + 1)),
        AreaComponent(
            "crossbars",
            "lane-to-bank request and response crossbars (both ports)",
            ports * LANES * BANKS * 8),
        AreaComponent(
            "allocator",
            "single-cycle lane-bank matching logic (combinational)",
            ports * LANES * BANKS * 2),
        AreaComponent(
            "rmw fusion + forwarding",
            "RMW ALUs, write-to-read forwarding path, port-fusion control",
            BANKS * (data_bits * 3)),
    ]


def area_breakdown() -> List[Tuple[str, str, float]]:
    """Per-component overhead as percent of baseline scratchpad area.

    Shares are proportional to register-bit content, normalized so they
    sum to the published 15% scratchpad overhead.
    """
    comps = _components()
    total_bits = sum(c.bits for c in comps)
    return [
        (c.name, c.description,
         SCRATCHPAD_OVERHEAD_PCT * c.bits / total_bits)
        for c in comps
    ]


def scratchpad_overhead_pct() -> float:
    """Total added area as percent of the Gorgon scratchpad (paper: 15%)."""
    return sum(pct for __, __, pct in area_breakdown())


def chip_overhead_pct() -> float:
    """Total added area as percent of the whole chip (paper: 5%)."""
    return scratchpad_overhead_pct() * SCRATCHPAD_CHIP_FRACTION


def report() -> str:
    """fig. 10-style text table."""
    lines = ["Component overhead (% of baseline scratchpad area):"]
    for name, desc, pct in area_breakdown():
        lines.append(f"  {name:<28} {pct:5.2f}%   {desc}")
    lines.append(f"  {'total (scratchpad)':<28} {scratchpad_overhead_pct():5.2f}%")
    lines.append(f"  {'total (chip)':<28} {chip_overhead_pct():5.2f}%")
    return "\n".join(lines)
