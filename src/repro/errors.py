"""Exception hierarchy for the Aurochs reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single handler.

The reliability layer (``repro.reliability``) adds the :class:`FaultError`
branch: typed, structured errors raised when an injected (or real) hardware
fault is *detected* — by a stream checksum mismatch, the engine watchdog, or
a failed scratchpad bank.  Fault errors always carry the fault ``kind``, the
``site`` (tile or stream name) and the ``cycle`` of detection so recovery
code and tests can dispatch on them without parsing messages.
"""

from typing import Optional, Sequence, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A record did not match its stream's schema, or a schema operation
    referenced an unknown field."""


class GraphError(ReproError):
    """A dataflow graph was structurally invalid (unconnected port, duplicate
    connection, illegal cycle, ...)."""


class SimulationError(ReproError):
    """The cycle-level engine detected an unrecoverable condition, such as
    deadlock (no progress while work remains) or exceeding a cycle budget.

    Structured fields let retry layers and tests assert on the failure
    without parsing the message:

    * ``graph`` — name of the graph being simulated;
    * ``cycle`` — cycle at which the condition was detected;
    * ``kind`` — ``"deadlock"`` or ``"overrun"`` (empty for other causes);
    * ``stuck_tiles`` — names of tiles holding in-flight state;
    * ``stuck_streams`` — names of streams with buffered vectors.
    """

    def __init__(self, message: str, *, graph: str = "",
                 cycle: Optional[int] = None, kind: str = "",
                 stuck_tiles: Sequence[str] = (),
                 stuck_streams: Sequence[str] = ()):
        super().__init__(message)
        self.graph = graph
        self.cycle = cycle
        self.kind = kind
        self.stuck_tiles: Tuple[str, ...] = tuple(stuck_tiles)
        self.stuck_streams: Tuple[str, ...] = tuple(stuck_streams)


class CapacityError(ReproError):
    """A fixed-capacity hardware structure (scratchpad, issue queue, DRAM
    overflow buffer) was asked to hold more than it can."""


class PlanError(ReproError):
    """A query plan was invalid or could not be mapped onto the fabric."""


class FaultError(ReproError):
    """A hardware fault was detected.

    ``kind`` is the fault class (a :class:`repro.reliability.FaultKind`
    value, stored as its string form), ``site`` the tile or stream where it
    was detected, ``cycle`` the detection cycle, and ``detail`` free text.
    """

    def __init__(self, message: str, *, kind: str = "", site: str = "",
                 cycle: Optional[int] = None, detail: str = ""):
        super().__init__(message)
        self.kind = str(kind)
        self.site = site
        self.cycle = cycle
        self.detail = detail


class ChecksumError(FaultError):
    """End-to-end stream integrity check failed: the records popped from a
    stream do not checksum to the records pushed (corruption or loss)."""


class StallError(FaultError):
    """The engine watchdog attributed a lack of forward progress to a
    stalled tile (an injected stall outlasting the deadlock window)."""


class BankFailureError(FaultError):
    """A scratchpad bank (or DRAM channel) access hit a failed bank."""
