"""Exception hierarchy for the Aurochs reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single handler.

The reliability layer (``repro.reliability``) adds the :class:`FaultError`
branch: typed, structured errors raised when an injected (or real) hardware
fault is *detected* — by a stream checksum mismatch, the engine watchdog, or
a failed scratchpad bank.  Fault errors always carry the fault ``kind``, the
``site`` (tile or stream name) and the ``cycle`` of detection so recovery
code and tests can dispatch on them without parsing messages.

The serving layer (``repro.serving``) adds the :class:`ServingError`
branch: typed errors for requests the serving tier rejects or abandons —
shed under overload (:class:`Overloaded`), cancelled at a deadline
(:class:`DeadlineExceeded`, distinct from the engine watchdog), refused by
an open circuit breaker (:class:`CircuitOpen`), or cooperatively cancelled
(:class:`Cancelled`).  Mirroring the :class:`FaultError` conventions, every
serving error carries the ``tenant`` and ``query`` it belongs to plus its
class-specific structured fields, and has a stable, field-complete
``repr`` so chaos-harness logs are reproducible bit-for-bit from a seed.
"""

from typing import Optional, Sequence, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DependencyError(ReproError):
    """A required third-party dependency is missing or unusable.

    Raised with a message naming the dependency and the feature that needs
    it (e.g. numpy for ``scheduler="vector"``), so callers can distinguish
    an environment problem from a usage error.
    """


class SchemaError(ReproError):
    """A record did not match its stream's schema, or a schema operation
    referenced an unknown field."""


class GraphError(ReproError):
    """A dataflow graph was structurally invalid (unconnected port, duplicate
    connection, illegal cycle, ...)."""


class SimulationError(ReproError):
    """The cycle-level engine detected an unrecoverable condition, such as
    deadlock (no progress while work remains) or exceeding a cycle budget.

    Structured fields let retry layers and tests assert on the failure
    without parsing the message:

    * ``graph`` — name of the graph being simulated;
    * ``cycle`` — cycle at which the condition was detected;
    * ``kind`` — ``"deadlock"`` or ``"overrun"`` (empty for other causes);
    * ``stuck_tiles`` — names of tiles holding in-flight state;
    * ``stuck_streams`` — names of streams with buffered vectors.
    """

    def __init__(self, message: str, *, graph: str = "",
                 cycle: Optional[int] = None, kind: str = "",
                 stuck_tiles: Sequence[str] = (),
                 stuck_streams: Sequence[str] = ()):
        super().__init__(message)
        self.graph = graph
        self.cycle = cycle
        self.kind = kind
        self.stuck_tiles: Tuple[str, ...] = tuple(stuck_tiles)
        self.stuck_streams: Tuple[str, ...] = tuple(stuck_streams)


class CapacityError(ReproError):
    """A fixed-capacity hardware structure (scratchpad, issue queue, DRAM
    overflow buffer) was asked to hold more than it can."""


class PlanError(ReproError):
    """A query plan was invalid or could not be mapped onto the fabric."""


class FaultError(ReproError):
    """A hardware fault was detected.

    ``kind`` is the fault class (a :class:`repro.reliability.FaultKind`
    value, stored as its string form), ``site`` the tile or stream where it
    was detected, ``cycle`` the detection cycle, and ``detail`` free text.
    """

    def __init__(self, message: str, *, kind: str = "", site: str = "",
                 cycle: Optional[int] = None, detail: str = ""):
        super().__init__(message)
        self.kind = str(kind)
        self.site = site
        self.cycle = cycle
        self.detail = detail


class ServingError(ReproError):
    """Base class for serving-tier rejections and cancellations.

    ``tenant`` and ``query`` identify the request the serving runtime was
    handling; subclasses add their own structured fields.  The ``repr`` is
    stable (message plus sorted structured fields, no object ids) so a
    seeded load test reproduces identical error logs.
    """

    def __init__(self, message: str, *, tenant: str = "", query: str = "",
                 request_id: Optional[int] = None):
        super().__init__(message)
        self.tenant = tenant
        self.query = query
        self.request_id = request_id

    def _fields(self) -> Tuple[Tuple[str, object], ...]:
        """Structured fields, in declaration order, for the stable repr."""
        return (("tenant", self.tenant), ("query", self.query),
                ("request_id", self.request_id))

    def __repr__(self) -> str:
        parts = [repr(self.args[0] if self.args else "")]
        parts.extend(f"{name}={value!r}" for name, value in self._fields()
                     if value not in ("", None))
        return f"{type(self).__name__}({', '.join(parts)})"


class Overloaded(ServingError):
    """The serving tier shed this request instead of queueing it.

    ``depth`` is the admission-queue occupancy when the request was shed
    and ``limit`` the configured bound; ``evicted`` is True when the
    request was admitted but later displaced by a higher-priority arrival.
    """

    def __init__(self, message: str, *, tenant: str = "", query: str = "",
                 request_id: Optional[int] = None, depth: int = 0,
                 limit: int = 0, evicted: bool = False):
        super().__init__(message, tenant=tenant, query=query,
                         request_id=request_id)
        self.depth = depth
        self.limit = limit
        self.evicted = evicted

    def _fields(self):
        return super()._fields() + (("depth", self.depth),
                                    ("limit", self.limit),
                                    ("evicted", self.evicted or None))


class DeadlineExceeded(ServingError):
    """A request's end-to-end deadline expired (in queue or mid-run).

    ``deadline`` is the cycle budget the request was given and ``cycle``
    the simulated cycle at which it was cancelled — for an in-flight
    simulation these are equal by construction (cooperative cancellation
    fires at exactly the budget boundary); for a request cancelled while
    still queued, ``cycle`` is the virtual time of the queue sweep.
    """

    def __init__(self, message: str, *, tenant: str = "", query: str = "",
                 request_id: Optional[int] = None,
                 deadline: Optional[int] = None, cycle: Optional[int] = None):
        super().__init__(message, tenant=tenant, query=query,
                         request_id=request_id)
        self.deadline = deadline
        self.cycle = cycle

    def _fields(self):
        return super()._fields() + (("deadline", self.deadline),
                                    ("cycle", self.cycle))


class CircuitOpen(ServingError):
    """A dependency's circuit breaker is open; the call was not attempted.

    ``replica`` names the fabric replica whose breaker tripped,
    ``failures`` the consecutive-failure count that opened it, and
    ``retry_at`` the virtual cycle at which a half-open probe becomes
    eligible.
    """

    def __init__(self, message: str, *, tenant: str = "", query: str = "",
                 request_id: Optional[int] = None, replica: str = "",
                 failures: int = 0, retry_at: Optional[int] = None):
        super().__init__(message, tenant=tenant, query=query,
                         request_id=request_id)
        self.replica = replica
        self.failures = failures
        self.retry_at = retry_at

    def _fields(self):
        return super()._fields() + (("replica", self.replica),
                                    ("failures", self.failures),
                                    ("retry_at", self.retry_at))


class Cancelled(ServingError):
    """A request was cooperatively cancelled (not by its own deadline) —
    e.g. the losing leg of a hedged pair, or an explicit caller cancel.

    ``cycle`` is the simulated cycle the engine observed the cancellation;
    ``reason`` is free text (``"hedge_lost"``, ``"shutdown"``, ...).
    """

    def __init__(self, message: str, *, tenant: str = "", query: str = "",
                 request_id: Optional[int] = None,
                 cycle: Optional[int] = None, reason: str = ""):
        super().__init__(message, tenant=tenant, query=query,
                         request_id=request_id)
        self.cycle = cycle
        self.reason = reason

    def _fields(self):
        return super()._fields() + (("cycle", self.cycle),
                                    ("reason", self.reason))


class ShardsLost(ServingError):
    """A sharded scatter/gather query permanently lost shard fault domains.

    Carried by ``partial`` outcomes (the degrade policy admitted the loss
    and served a typed partial result) and by ``failed`` outcomes (the
    policy refused partial service, or coverage fell below its floor).
    ``lost`` is the tuple of lost shard indices, ``n_shards`` the scatter
    fan-out, and ``coverage`` the fraction of input rows still covered by
    the shards that completed.
    """

    def __init__(self, message: str, *, tenant: str = "", query: str = "",
                 request_id: Optional[int] = None,
                 lost: Tuple[int, ...] = (), n_shards: int = 0,
                 coverage: float = 0.0):
        super().__init__(message, tenant=tenant, query=query,
                         request_id=request_id)
        self.lost = tuple(lost)
        self.n_shards = n_shards
        self.coverage = coverage

    def _fields(self):
        return super()._fields() + (("lost", self.lost),
                                    ("n_shards", self.n_shards),
                                    ("coverage", round(self.coverage, 6)))


class ChecksumError(FaultError):
    """End-to-end stream integrity check failed: the records popped from a
    stream do not checksum to the records pushed (corruption or loss)."""


class StallError(FaultError):
    """The engine watchdog attributed a lack of forward progress to a
    stalled tile (an injected stall outlasting the deadlock window)."""


class BankFailureError(FaultError):
    """A scratchpad bank (or DRAM channel) access hit a failed bank."""


class ReplicaLost(FaultError):
    """A fabric replica died mid-execution (chaos kill, power loss).

    Every leg in flight on the replica surfaces this fault at the kill
    cycle; the replica never serves again (permanent, unlike the
    transient per-execution fault schedules flaky replicas draw)."""
