"""Exception hierarchy for the Aurochs reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single handler.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A record did not match its stream's schema, or a schema operation
    referenced an unknown field."""


class GraphError(ReproError):
    """A dataflow graph was structurally invalid (unconnected port, duplicate
    connection, illegal cycle, ...)."""


class SimulationError(ReproError):
    """The cycle-level engine detected an unrecoverable condition, such as
    deadlock (no progress while work remains) or exceeding a cycle budget."""


class CapacityError(ReproError):
    """A fixed-capacity hardware structure (scratchpad, issue queue, DRAM
    overflow buffer) was asked to hold more than it can."""


class PlanError(ReproError):
    """A query plan was invalid or could not be mapped onto the fabric."""
