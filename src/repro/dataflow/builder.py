"""Schema-tracked pipeline construction.

Raw :class:`~repro.dataflow.graph.Graph` wiring indexes record fields by
position — fine for the hand-mapped kernels the paper describes (§III-A:
"we map the database kernels ourselves"), but error-prone for new users.
:class:`PipelineBuilder` layers named fields on top: each stage declares
its schema effect, the builder threads a
:class:`~repro.dataflow.record.Schema` through the pipeline, and field
references are resolved (and validated) at build time.

Loops are expressed with :meth:`loop`, which inserts the merge tile and
returns a handle whose :meth:`LoopHandle.continue_with` closes the
loop-back edge with the required priority.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.errors import GraphError
from repro.dataflow.compute import (
    FilterTile,
    ForkTile,
    MapTile,
    MergeTile,
    StampTile,
)
from repro.dataflow.graph import Graph
from repro.dataflow.record import Record, Schema
from repro.dataflow.tile import SinkTile, SourceTile, Tile


class Pipe:
    """A point in the pipeline: a producing tile port plus its schema."""

    __slots__ = ("builder", "tile", "port", "schema")

    def __init__(self, builder: "PipelineBuilder", tile: Tile, port: int,
                 schema: Schema):
        self.builder = builder
        self.tile = tile
        self.port = port
        self.schema = schema

    # -- stages -----------------------------------------------------------

    def map(self, name: str, fn: Callable[[dict], dict],
            out_fields: Optional[Sequence[str]] = None) -> "Pipe":
        """Apply ``fn`` over records as dicts; returns the new pipe.

        ``out_fields`` declares the output schema; omitted means the
        schema is unchanged.  Returning ``None`` from ``fn`` kills the
        thread.
        """
        in_schema = self.schema
        out_schema = Schema(out_fields) if out_fields else in_schema

        def raw(record: Record):
            result = fn(in_schema.asdict(record))
            if result is None:
                return None
            return out_schema.make(**result)

        tile = self.builder.graph.add(MapTile(name, raw))
        self.builder.graph.connect(self.tile, tile,
                                   producer_port=self.port)
        return Pipe(self.builder, tile, 0, out_schema)

    def select(self, name: str, *fields: str) -> "Pipe":
        """Project the record onto ``fields`` (drop/permute)."""
        proj = self.schema.projector(fields)
        tile = self.builder.graph.add(MapTile(name, proj))
        self.builder.graph.connect(self.tile, tile,
                                   producer_port=self.port)
        return Pipe(self.builder, tile, 0, self.schema.select(*fields))

    def where(self, name: str, pred: Callable[[dict], bool]
              ) -> "tuple[Pipe, Pipe]":
        """Split on a predicate; returns ``(pass_pipe, fail_pipe)``."""
        schema = self.schema

        def raw(record: Record) -> bool:
            return pred(schema.asdict(record))

        tile = self.builder.graph.add(FilterTile(name, raw))
        self.builder.graph.connect(self.tile, tile,
                                   producer_port=self.port)
        return (Pipe(self.builder, tile, 0, schema),
                Pipe(self.builder, tile, 1, schema))

    def fork(self, name: str, fn: Callable[[dict], Sequence[dict]],
             out_fields: Optional[Sequence[str]] = None) -> "Pipe":
        """Spawn child threads: ``fn`` returns dicts for each child."""
        in_schema = self.schema
        out_schema = Schema(out_fields) if out_fields else in_schema

        def raw(record: Record):
            return [out_schema.make(**child)
                    for child in fn(in_schema.asdict(record))]

        tile = self.builder.graph.add(ForkTile(name, raw))
        self.builder.graph.connect(self.tile, tile,
                                   producer_port=self.port)
        return Pipe(self.builder, tile, 0, out_schema)

    def stamp(self, name: str, field: str, start: int = 0) -> "Pipe":
        """Append a unique incrementing counter field."""
        tile = self.builder.graph.add(StampTile(name, start))
        self.builder.graph.connect(self.tile, tile,
                                   producer_port=self.port)
        return Pipe(self.builder, tile, 0, self.schema.extend(field))

    def drop(self) -> None:
        """Terminate these threads (a kill side of a filter)."""
        packers = getattr(self.tile, "_packers", None)
        if packers is None:
            raise GraphError("drop() requires a compute tile port")
        self.tile.drop_output(self.port)

    def sink(self, name: str) -> SinkTile:
        """Collect this stream's records."""
        tile = self.builder.graph.add(SinkTile(name))
        self.builder.graph.connect(self.tile, tile,
                                   producer_port=self.port)
        self.builder.sinks[name] = tile
        return tile

    def loop(self, name: str) -> "LoopHandle":
        """Open a cyclic region: inserts the merge tile (fig. 5a)."""
        merge = self.builder.graph.add(MergeTile(name))
        self.builder.graph.connect(self.tile, merge,
                                   producer_port=self.port)
        return LoopHandle(Pipe(self.builder, merge, 0, self.schema), merge)


class LoopHandle:
    """A cyclic region's entry merge; close it with :meth:`continue_with`."""

    def __init__(self, body: Pipe, merge: MergeTile):
        self.body = body
        self._merge = merge

    def continue_with(self, pipe: Pipe) -> None:
        """Wire ``pipe`` back into the loop entry with priority (the
        deadlock-avoidance rule of §III-A)."""
        if pipe.schema != self.body.schema:
            raise GraphError(
                f"loop-back schema {pipe.schema} does not match loop "
                f"body schema {self.body.schema}")
        pipe.builder.graph.connect(pipe.tile, self._merge,
                                   producer_port=pipe.port, priority=True)


class PipelineBuilder:
    """Builds a :class:`Graph` from named-field stage declarations."""

    def __init__(self, name: str):
        self.graph = Graph(name)
        self.sinks: dict = {}

    def source(self, name: str, fields: Sequence[str],
               rows: Sequence[Sequence]) -> Pipe:
        """A record source; ``rows`` are tuples matching ``fields``."""
        schema = Schema(fields)
        records: List[Record] = []
        for row in rows:
            schema.validate(tuple(row))
            records.append(tuple(row))
        tile = self.graph.add(SourceTile(name, records, schema))
        return Pipe(self, tile, 0, schema)

    def results(self, sink_name: str, as_dicts: bool = False):
        """Records collected by a named sink."""
        sink = self.sinks[sink_name]
        if not as_dicts:
            return list(sink.records)
        # Find the schema from the sink's producer pipe is not tracked;
        # callers wanting dicts should keep the Pipe's schema themselves.
        raise GraphError("as_dicts requires the caller's schema; use "
                         "Pipe.schema with Schema.asdict")
