"""Sorted-stream merging on the fabric: Gorgon's merge kernel (§II-B).

Gorgon sorts with merge networks; Aurochs inherits the kernel for LSM
compaction and the sort-based baselines.  :class:`SortedMergeTile`
merges two key-ordered input streams into one ordered output stream —
unlike the threading tiles, this kernel is *order-preserving*: it pops
the smaller head record, so streams must arrive sorted.

:func:`merge_sort_graph` builds a full binary merge tree over pre-sorted
runs, the spatial unrolling of one DRAM merge pass.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.dataflow.expr import scalar_of
from repro.dataflow.graph import Graph
from repro.dataflow.record import LANES, Record
from repro.dataflow.stats import TileStats
from repro.dataflow.tile import Packer, SinkTile, SourceTile, Tile


class SortedMergeTile(Tile):
    """Two sorted input streams -> one sorted output stream.

    ``key`` extracts the sort key from a record.  Each cycle the tile
    fills up to one output vector by repeatedly taking the smaller head
    record — the comparator tree of a hardware merge network, at
    vector-per-cycle throughput.
    """

    def __init__(self, name: str, key: Callable[[Record], object]):
        super().__init__(name)
        self.key = key
        self._key = scalar_of(key)
        self._heads: List[List[Record]] = [[], []]   # staged records
        self._packer = Packer(None)

    def lowering_contract(self):
        """Merge semantics are fixed; subclasses customizing only ``key``
        inherit the fused kernel (override to ``None`` if tick changes)."""
        return "sorted_merge"

    def attach_output(self, stream, port: int = 0) -> None:  # type: ignore[override]
        stream.producer = self
        self.outputs.append(stream)
        self._packer.stream = stream

    def _refill(self, side: int) -> None:
        if not self._heads[side] and self.inputs[side].can_pop():
            self._heads[side] = list(self.inputs[side].pop())

    def tick(self, cycle: int) -> bool:
        moved = False
        emitted = 0
        while emitted < LANES and self._packer.has_room(1):
            self._refill(0)
            self._refill(1)
            a, b = self._heads
            a_ready, b_ready = bool(a), bool(b)
            a_done = not a_ready and self.inputs[0].closed()
            b_done = not b_ready and self.inputs[1].closed()
            if a_ready and b_ready:
                if self._key(a[0]) <= self._key(b[0]):
                    self._packer.push(a.pop(0))
                else:
                    self._packer.push(b.pop(0))
            elif a_ready and b_done:
                self._packer.push(a.pop(0))
            elif b_ready and a_done:
                self._packer.push(b.pop(0))
            else:
                # An input is merely *stalled* (open but empty): emitting
                # from the other side could violate ordering — wait.
                break
            emitted += 1
            moved = True
        if self._packer.flush(self.stats, force_partial=emitted == 0):
            moved = True
        if moved:
            self.stats.busy_cycles += 1
        else:
            self.stats.idle_cycles += 1
        self.maybe_close()
        return moved

    def idle(self) -> bool:
        return not any(self._heads) and self._packer.empty()

    def sched_poll(self, cycle: int) -> tuple:
        in0, in1 = self.inputs
        if self._packer.has_room(1):
            # A tick would stage input into the head buffers (a pop, which
            # frees upstream backpressure) even if ordering blocks a merge.
            if ((not self._heads[0] and in0.can_pop())
                    or (not self._heads[1] and in1.can_pop())):
                return ("ready",)
            avail0, avail1 = bool(self._heads[0]), bool(self._heads[1])
            done0 = not avail0 and in0.closed()
            done1 = not avail1 and in1.closed()
            if (avail0 and (avail1 or done1)) or (avail1 and done0):
                return ("ready",)       # the comparator can emit
        packer = self._packer
        if packer.pending and (packer.stream is None
                               or packer.stream.can_push()):
            return ("ready",)
        return ("sleep", "idle_cycles")


def merge_sort_graph(name: str, runs: Sequence[Sequence[Record]],
                     key: Callable[[Record], object]) -> Graph:
    """A binary merge tree over pre-sorted runs; results land in the
    ``out`` sink, fully ordered."""
    g = Graph(name)
    level = [g.add(SourceTile(f"run{i}", list(run)))
             for i, run in enumerate(runs)]
    depth = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            merge = g.add(SortedMergeTile(f"merge{depth}_{i // 2}", key))
            g.connect(level[i], merge)
            g.connect(level[i + 1], merge)
            nxt.append(merge)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        depth += 1
    sink = g.add(SinkTile("out"))
    g.connect(level[0], sink)
    return g
