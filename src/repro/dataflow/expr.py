"""Expression IR + batch compiler for tile callables.

Aurochs tiles execute *configured* dataflow operators, not interpreted
code (§III): an address generator or a predicate is a fixed circuit, not
a Python closure.  This module is the software analogue — a small,
introspectable expression IR over record fields (arith, compare, hash,
in-set, range, select) that every graph builder can hand to a tile in
place of an opaque ``lambda``.

Two execution forms share one source of truth:

* :meth:`Expr.evaluate` — an interpreted tree walk, the semantic
  reference.  The differential fuzz suite pins the compiled forms
  against it.
* :meth:`Expr.scalar` / :meth:`Expr.compile_batch` — generated Python
  source.  Both forms render the *same* expression string, so scalar
  and batch results are identical by construction; the batch form
  amortizes the per-record call into one function call per vector,
  which is what the columnar backend's lambda-fused kernels consume.

Why generated Python and not numpy ufuncs: fabric vectors are LANES=16
records wide, where numpy's per-ufunc dispatch overhead exceeds the
arithmetic it saves; and numpy's fixed-width int64 wraps on overflow
while the simulator's semantics are Python's arbitrary-precision ints
(the fuzz suite exercises overflow explicitly).  A listcomp over 16
records with the expression inlined beats both a ufunc chain and a
per-record lambda call.

``Expr`` instances are also plain callables (``__call__`` compiles and
caches a scalar), so every legacy call site — serving evaluators, the
functional operators, non-vector schedulers — works unchanged.  Legacy
lambdas remain accepted everywhere an ``Expr`` is; they simply keep
paying the per-record call inside lowered windows (the documented
escape hatch for non-expressible callables such as RMW closures or the
ML distance kernels in workloads/queries.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Tuple

__all__ = [
    "Expr", "Const", "Arg", "Field", "BinOp", "Cmp", "Hash32", "InSet",
    "InRange", "Select", "Tup", "Concat", "All", "AnyOf", "Not",
    "bucket_expr", "radix_expr", "scalar_of", "is_expr",
]

#: MurmurHash3 finalizer constants — must match structures/hashing.py
#: bit-for-bit (pinned by tests/test_expr.py).
_M32 = 0xFFFFFFFF
_MUR1 = 0x85EBCA6B
_MUR2 = 0xC2B2AE35


def _hash32_ref(key) -> int:
    """Reference murmur3 finalizer, identical to ``hashing.hash32``.

    Re-stated locally (6 lines) rather than imported so the dataflow
    package keeps zero dependencies on ``repro.structures``.
    """
    x = (key if isinstance(key, int) else hash(key)) & _M32
    x ^= x >> 16
    x = (x * _MUR1) & _M32
    x ^= x >> 13
    x = (x * _MUR2) & _M32
    x ^= x >> 16
    return x


class _Ctx:
    """Codegen context: constant pool + unique temp names."""

    __slots__ = ("ns", "n")

    def __init__(self):
        self.ns: Dict[str, object] = {}
        self.n = 0

    def temp(self) -> str:
        self.n += 1
        return f"_t{self.n}"

    def bind(self, value) -> str:
        self.n += 1
        name = f"_c{self.n}"
        self.ns[name] = value
        return name


#: Process-wide ``compile()`` cache.  Code objects are namespace-free,
#: so two structurally identical expressions (same rendered source) can
#: share one; each ``exec`` binds the function against its own constant
#: pool.  Fresh graph builds re-render the same sources every run —
#: without this the bytecode compiler dominates lowering build time.
_CODE_CACHE: Dict[Tuple[str, str], object] = {}


def _compile(ctx: _Ctx, name: str, src: str) -> Callable:
    code = _CODE_CACHE.get((name, src))
    if code is None:
        code = _CODE_CACHE[(name, src)] = compile(
            src, f"<repro.expr:{name}>", "exec")
    exec(code, ctx.ns)
    fn = ctx.ns[name]
    fn.__expr_source__ = src
    return fn


@dataclass(frozen=True)
class Expr:
    """Base expression node.

    Arithmetic and ordering operators build new nodes (``Field(0) + 1``,
    ``Field(2) < 100``).  ``==`` stays *structural* (dataclass equality,
    needed for hashing/caching); build equality comparisons with
    :meth:`eq` / :meth:`ne`.
    """

    # -- node protocol (overridden by every subclass) -----------------------

    def _eval(self, args):
        raise NotImplementedError

    def _emit(self, ctx: _Ctx) -> str:
        raise NotImplementedError

    def _arity(self) -> int:
        return 0

    # -- public API ---------------------------------------------------------

    @property
    def arity(self) -> int:
        return max(1, self._arity())

    def evaluate(self, *args):
        """Interpreted reference evaluation (the semantic ground truth)."""
        return self._eval(args)

    def __call__(self, *args):
        return self.scalar(len(args))(*args)

    # -- compiled forms -----------------------------------------------------

    def _cache(self) -> dict:
        cache = self.__dict__.get("_compiled")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_compiled", cache)
        return cache

    def scalar(self, arity: Optional[int] = None) -> Callable:
        """Compile to ``f(a0[, a1, ...])`` returning the expression value.

        ``arity`` may request extra (ignored) parameters so an ``Expr``
        can stand in for e.g. a two-argument combine that ignores the
        memory word.
        """
        n = self.arity if arity is None else max(arity, self.arity)
        cache = self._cache()
        fn = cache.get(("scalar", n))
        if fn is None:
            ctx = _Ctx()
            params = ", ".join(f"a{i}" for i in range(n))
            src = f"def _f({params}):\n    return {self._emit(ctx)}\n"
            fn = cache[("scalar", n)] = _compile(ctx, "_f", src)
        return fn

    def compile_batch(self, skip_none: bool = False,
                      arity: Optional[int] = None) -> Callable:
        """Compile to ``f(batch) -> list`` evaluating every record.

        Arity 1 takes a list of records; arity 2 a list of
        ``(record, value)`` pairs.  ``skip_none`` drops ``None`` results
        (the MapTile/combine convention for "no output record").
        """
        n = self.arity if arity is None else max(arity, self.arity)
        cache = self._cache()
        fn = cache.get(("batch", n, skip_none))
        if fn is None:
            ctx = _Ctx()
            binder = "a0" if n == 1 else ", ".join(f"a{i}" for i in range(n))
            body = self._emit(ctx)
            if skip_none:
                comp = (f"[_v for {binder} in _batch"
                        f" if (_v := {body}) is not None]")
            else:
                comp = f"[{body} for {binder} in _batch]"
            src = f"def _f(_batch):\n    return {comp}\n"
            fn = cache[("batch", n, skip_none)] = _compile(ctx, "_f", src)
        return fn

    def compile_filter(self) -> Callable:
        """Compile a predicate to ``f(rows) -> [row for row if pred]``."""
        cache = self._cache()
        fn = cache.get("filter")
        if fn is None:
            ctx = _Ctx()
            src = (f"def _f(_batch):\n"
                   f"    return [a0 for a0 in _batch if {self._emit(ctx)}]\n")
            fn = cache["filter"] = _compile(ctx, "_f", src)
        return fn

    def filter_batch(self, rows):
        """Evaluate this predicate over ``rows``, keeping matches."""
        return self.compile_filter()(rows)

    def compile_split(self) -> Callable:
        """Compile a predicate to ``f(batch) -> (passed, failed)``."""
        cache = self._cache()
        fn = cache.get("split")
        if fn is None:
            ctx = _Ctx()
            src = (f"def _f(_batch):\n"
                   f"    _p = []\n"
                   f"    _fl = []\n"
                   f"    _pa = _p.append\n"
                   f"    _fa = _fl.append\n"
                   f"    for a0 in _batch:\n"
                   f"        if {self._emit(ctx)}:\n"
                   f"            _pa(a0)\n"
                   f"        else:\n"
                   f"            _fa(a0)\n"
                   f"    return _p, _fl\n")
            fn = cache["split"] = _compile(ctx, "_f", src)
        return fn

    @staticmethod
    def _bank_src(base: int, banks: int) -> str:
        """Render ``(base + _ix) % banks`` with the strength reductions a
        configured address unit would get in hardware: the ``+ 0`` base
        elided, and a power-of-two bank count folded to a bit-and."""
        ix = f"({base} + _ix)" if base else "_ix"
        if banks & (banks - 1) == 0:
            return f"({ix} & {banks - 1})"
        return f"({ix} % {banks})"

    def compile_requests(self, base: int, banks: int) -> Callable:
        """Compile an address expression to a scratchpad request builder:
        ``f(batch) -> [((base + index) % banks, index, record), ...]``.
        """
        cache = self._cache()
        fn = cache.get(("requests", base, banks))
        if fn is None:
            ctx = _Ctx()
            body = self._emit(ctx)
            src = (f"def _f(_batch):\n"
                   f"    _out = []\n"
                   f"    _a = _out.append\n"
                   f"    for a0 in _batch:\n"
                   f"        _ix = {body}\n"
                   f"        _a(({self._bank_src(base, banks)},"
                   f" _ix, a0))\n"
                   f"    return _out\n")
            fn = cache[("requests", base, banks)] = _compile(ctx, "_f", src)
        return fn

    def compile_enqueue(self, base: int, banks: int,
                        depth: int) -> Callable:
        """Compile an address expression to an all-or-nothing lane-striped
        enqueue: ``f(batch, slots, masks) -> bool`` appends
        ``(1 << ((base + index) % banks), index, record)`` to ``slots[i]``
        for the i-th record — the bank stored pre-shifted as a one-hot
        bit so the allocator scan tests it against its taken mask without
        a shift per consideration — and ORs the bit into ``masks[i]``,
        the per-lane bank-occupancy mask the scan uses to skip fully
        blocked lanes.  Appends nothing and returns False when any
        target lane is at ``depth``.  One call replaces the lowered
        allocator's room scan, request building, and lane striping — the
        form the columnar read kernels consume.
        """
        cache = self._cache()
        fn = cache.get(("enqueue", base, banks, depth))
        if fn is None:
            ctx = _Ctx()
            body = self._emit(ctx)
            src = (f"def _f(_batch, _slots, _masks):\n"
                   f"    for _i in range(len(_batch)):\n"
                   f"        if len(_slots[_i]) >= {depth}:\n"
                   f"            return False\n"
                   f"    _i = 0\n"
                   f"    for a0 in _batch:\n"
                   f"        _ix = {body}\n"
                   f"        _b = 1 << {self._bank_src(base, banks)}\n"
                   f"        _slots[_i].append((_b, _ix, a0))\n"
                   f"        _masks[_i] |= _b\n"
                   f"        _i += 1\n"
                   f"    return True\n")
            fn = cache[("enqueue", base, banks, depth)] = _compile(
                ctx, "_f", src)
        return fn

    # -- pickling: drop compiled caches (regenerated on demand) -------------

    def __getstate__(self):
        return {k: v for k, v in self.__dict__.items()
                if not k.startswith("_")}

    # -- operator sugar -----------------------------------------------------

    def __add__(self, other):
        return BinOp("+", self, _coerce(other))

    def __radd__(self, other):
        return BinOp("+", _coerce(other), self)

    def __sub__(self, other):
        return BinOp("-", self, _coerce(other))

    def __rsub__(self, other):
        return BinOp("-", _coerce(other), self)

    def __mul__(self, other):
        return BinOp("*", self, _coerce(other))

    def __rmul__(self, other):
        return BinOp("*", _coerce(other), self)

    def __floordiv__(self, other):
        return BinOp("//", self, _coerce(other))

    def __mod__(self, other):
        return BinOp("%", self, _coerce(other))

    def __and__(self, other):
        return BinOp("&", self, _coerce(other))

    def __or__(self, other):
        return BinOp("|", self, _coerce(other))

    def __xor__(self, other):
        return BinOp("^", self, _coerce(other))

    def __lshift__(self, other):
        return BinOp("<<", self, _coerce(other))

    def __rshift__(self, other):
        return BinOp(">>", self, _coerce(other))

    def __lt__(self, other):
        return Cmp("<", self, _coerce(other))

    def __le__(self, other):
        return Cmp("<=", self, _coerce(other))

    def __gt__(self, other):
        return Cmp(">", self, _coerce(other))

    def __ge__(self, other):
        return Cmp(">=", self, _coerce(other))

    def eq(self, other):
        """Equality *comparison* node (``==`` is structural equality)."""
        return Cmp("==", self, _coerce(other))

    def ne(self, other):
        return Cmp("!=", self, _coerce(other))


def _coerce(value) -> Expr:
    return value if isinstance(value, Expr) else Const(value)


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Const(Expr):
    """A literal value."""

    value: object = None

    def _eval(self, args):
        return self.value

    def _emit(self, ctx):
        v = self.value
        # Safe-to-inline literals; everything else goes to the constant
        # pool (float repr of nan/inf is not valid source, strings need
        # no escaping headaches, tuples stay shared).
        if v is None or v is True or v is False or type(v) is int:
            return repr(v)
        return ctx.bind(v)


@dataclass(frozen=True)
class Arg(Expr):
    """The ``index``-th argument itself (arity-2 combines use Arg(1))."""

    index: int = 0

    def _eval(self, args):
        return args[self.index]

    def _emit(self, ctx):
        return f"a{self.index}"

    def _arity(self):
        return self.index + 1


@dataclass(frozen=True)
class Field(Expr):
    """``args[arg][index]`` — a column of the record."""

    index: int
    arg: int = 0

    def _eval(self, args):
        return args[self.arg][self.index]

    def _emit(self, ctx):
        return f"a{self.arg}[{self.index}]"

    def _arity(self):
        return self.arg + 1


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------

_BIN_OPS = frozenset({"+", "-", "*", "//", "%", "&", "|", "^", "<<", ">>"})
_CMP_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})

_BIN_EVAL = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic/bitwise operator."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _BIN_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def _eval(self, args):
        return _BIN_EVAL[self.op](self.left._eval(args),
                                  self.right._eval(args))

    def _emit(self, ctx):
        return (f"({self.left._emit(ctx)} {self.op} "
                f"{self.right._emit(ctx)})")

    def _arity(self):
        return max(self.left._arity(), self.right._arity())


@dataclass(frozen=True)
class Cmp(Expr):
    """Binary comparison operator."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _CMP_OPS:
            raise ValueError(f"unknown comparison op {self.op!r}")

    _eval = BinOp._eval
    _emit = BinOp._emit
    _arity = BinOp._arity


@dataclass(frozen=True)
class Hash32(Expr):
    """MurmurHash3 32-bit finalizer of ``key`` — hashing.hash32 inlined.

    The generated source walks the finalizer with walrus temporaries, so
    the compiled form has *zero* call-frame overhead (matching the
    deliberate inlining in ``structures/hashing.py``).
    """

    key: Expr

    def _eval(self, args):
        return _hash32_ref(self.key._eval(args))

    def _emit(self, ctx):
        k = ctx.temp()
        h = (f"(({k} if isinstance(({k} := {self.key._emit(ctx)}), int)"
             f" else hash({k})) & {_M32})")
        for shift, mult in ((16, _MUR1), (13, _MUR2), (16, None)):
            t = ctx.temp()
            h = f"(({t} := {h}) ^ ({t} >> {shift}))"
            if mult is not None:
                t = ctx.temp()
                h = f"((({t} := {h}) * {mult}) & {_M32})"
        return h

    def _arity(self):
        return self.key._arity()


@dataclass(frozen=True)
class InSet(Expr):
    """Membership in a fixed value set."""

    item: Expr
    values: FrozenSet

    def __post_init__(self):
        if not isinstance(self.values, frozenset):
            object.__setattr__(self, "values", frozenset(self.values))

    def _eval(self, args):
        return self.item._eval(args) in self.values

    def _emit(self, ctx):
        return f"({self.item._emit(ctx)} in {ctx.bind(self.values)})"

    def _arity(self):
        return self.item._arity()


@dataclass(frozen=True)
class InRange(Expr):
    """Half-open range test ``lo <= item < hi`` (None = unbounded side).

    Emitted as ``item >= lo and item < hi`` in exactly the operand order
    of ``planner._range_contains`` so NaN semantics match the
    interpreter bit-for-bit.
    """

    item: Expr
    lo: object = None
    hi: object = None

    def _eval(self, args):
        value = self.item._eval(args)
        if self.lo is not None and not value >= self.lo:
            return False
        if self.hi is not None and not value < self.hi:
            return False
        return True

    def _emit(self, ctx):
        body = self.item._emit(ctx)
        lo = None if self.lo is None else Const(self.lo)._emit(ctx)
        hi = None if self.hi is None else Const(self.hi)._emit(ctx)
        if lo is not None and hi is not None:
            t = ctx.temp()
            return f"((({t} := {body}) >= {lo}) and ({t} < {hi}))"
        if lo is not None:
            return f"({body} >= {lo})"
        if hi is not None:
            return f"({body} < {hi})"
        return "True"

    def _arity(self):
        return self.item._arity()


@dataclass(frozen=True)
class Select(Expr):
    """``then if cond else other``."""

    cond: Expr
    then: Expr
    other: Expr

    def _eval(self, args):
        if self.cond._eval(args):
            return self.then._eval(args)
        return self.other._eval(args)

    def _emit(self, ctx):
        return (f"(({self.then._emit(ctx)}) if ({self.cond._emit(ctx)})"
                f" else ({self.other._emit(ctx)}))")

    def _arity(self):
        return max(self.cond._arity(), self.then._arity(),
                   self.other._arity())


@dataclass(frozen=True)
class Tup(Expr):
    """Build an output record (tuple) from item expressions."""

    items: Tuple[Expr, ...]

    def __post_init__(self):
        object.__setattr__(
            self, "items", tuple(_coerce(x) for x in self.items))

    def _eval(self, args):
        return tuple(x._eval(args) for x in self.items)

    def _emit(self, ctx):
        if not self.items:
            return "()"
        inner = ", ".join(x._emit(ctx) for x in self.items)
        return f"({inner},)" if len(self.items) == 1 else f"({inner})"

    def _arity(self):
        return max((x._arity() for x in self.items), default=0)


@dataclass(frozen=True)
class Concat(Expr):
    """Tuple concatenation (``record + (extra,)`` combines)."""

    left: Expr
    right: Expr

    def _eval(self, args):
        return self.left._eval(args) + self.right._eval(args)

    def _emit(self, ctx):
        return f"({self.left._emit(ctx)} + {self.right._emit(ctx)})"

    def _arity(self):
        return max(self.left._arity(), self.right._arity())


@dataclass(frozen=True)
class All(Expr):
    """Short-circuit conjunction (empty = True)."""

    terms: Tuple[Expr, ...]

    def _eval(self, args):
        for term in self.terms:
            if not term._eval(args):
                return False
        return True

    def _emit(self, ctx):
        if not self.terms:
            return "True"
        return "(" + " and ".join(t._emit(ctx) for t in self.terms) + ")"

    def _arity(self):
        return max((t._arity() for t in self.terms), default=0)


@dataclass(frozen=True)
class AnyOf(Expr):
    """Short-circuit disjunction (empty = False)."""

    terms: Tuple[Expr, ...]

    def _eval(self, args):
        for term in self.terms:
            if term._eval(args):
                return True
        return False

    def _emit(self, ctx):
        if not self.terms:
            return "False"
        return "(" + " or ".join(t._emit(ctx) for t in self.terms) + ")"

    def _arity(self):
        return max((t._arity() for t in self.terms), default=0)


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    term: Expr

    def _eval(self, args):
        return not self.term._eval(args)

    def _emit(self, ctx):
        return f"(not {self.term._emit(ctx)})"

    def _arity(self):
        return self.term._arity()


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def bucket_expr(key: Expr, n_buckets: int) -> Expr:
    """``hashing.bucket_of(key, n_buckets)`` as an expression."""
    return Hash32(_coerce(key)) % n_buckets


def radix_expr(key: Expr, n_partitions: int) -> Expr:
    """``hashing.radix_of(key, n_partitions)`` as an expression."""
    return Hash32(_coerce(key)) & (n_partitions - 1)


def is_expr(fn) -> bool:
    return isinstance(fn, Expr)


def scalar_of(fn, arity: Optional[int] = None):
    """A plain callable for ``fn``: compiled scalar for ``Expr``,
    ``fn`` itself otherwise.  Tiles resolve callables through this at
    construction so the per-record schedulers never pay ``Expr.__call__``
    dispatch on the hot path."""
    if isinstance(fn, Expr):
        return fn.scalar(arity)
    return fn
