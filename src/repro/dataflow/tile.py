"""Tile base classes: the units of Aurochs' spatial fabric.

Gorgon (and therefore Aurochs) is a grid of homogeneous, reconfigurable
compute and scratchpad tiles connected by streams (§II-B).  This module
defines the abstract :class:`Tile` protocol the cycle engine drives, the
:class:`Packer` that models thread compaction (§III-A's shuffle network +
barrel shifter collapsing empty lanes), and the boundary tiles
(:class:`SourceTile`, :class:`SinkTile`).

Thread compaction matters because record streams carry *threads*: when a
filter kills or diverts threads, the surviving lanes are sparse.  The packer
accumulates survivors densely so downstream tiles see full vectors, which is
exactly how Aurochs keeps hardware active during divergence.  To avoid
starving cyclic pipelines, a packer emits a partial vector whenever its tile
received no new input that cycle (opportunistic forwarding).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.dataflow.record import LANES, Record, Schema
from repro.dataflow.stats import TileStats
from repro.dataflow.stream import Stream, Vector
from repro.observability.events import StallReason


class Packer:
    """Dense lane compaction buffer feeding one output stream.

    Records pushed in arbitrary (sparse) order are emitted as dense vectors
    of up to ``LANES`` records.  ``spill_limit`` bounds how many records the
    packer may hold before the tile must stop accepting input (models the
    record buffers at the head of the downstream tile's pipeline).
    """

    __slots__ = ("stream", "pending", "spill_limit")

    def __init__(self, stream: Optional[Stream], spill_limit: int = 4 * LANES):
        self.stream = stream
        self.pending: List[Record] = []
        self.spill_limit = spill_limit

    def push(self, record: Record) -> None:
        self.pending.append(record)

    def extend(self, records: Iterable[Record]) -> None:
        self.pending.extend(records)

    def has_room(self, n: int = LANES) -> bool:
        """True if ``n`` more records fit without exceeding the spill limit."""
        return len(self.pending) + n <= self.spill_limit

    def flush(self, stats: TileStats, force_partial: bool) -> bool:
        """Emit at most one vector this cycle.

        A full vector is emitted whenever available; a partial vector only
        when ``force_partial`` (input starvation or stream wind-down).
        Returns True if a vector was emitted.
        """
        pending = self.pending
        if not pending:
            return False
        stream = self.stream
        if stream is None:
            # Dropped output (e.g. a filter's kill side): discard records.
            pending.clear()
            return True
        if len(pending) < LANES and not force_partial:
            return False
        if len(stream._fifo) >= stream.capacity:
            return False
        vector = pending[:LANES]
        del pending[:LANES]
        stream.push(vector)
        # TileStats.record_output, inlined (hot path).
        stats.vectors_out += 1
        stats.records_out += len(vector)
        return True

    def empty(self) -> bool:
        return not self.pending


class Tile:
    """Abstract fabric tile.

    Subclasses implement :meth:`tick`, called once per simulated cycle, and
    :meth:`idle`, which reports whether the tile holds any in-flight state
    (used for quiescence detection and EOS propagation).

    Tiles deliberately do **not** define ``__slots__``: tests (and debugging
    sessions) monkeypatch instance-level ``tick``/``idle`` to wedge a tile,
    which needs a ``__dict__``.  The hot per-cycle objects (streams, packers,
    requests, issue queues, stats) are all slotted instead.

    Event-scheduler protocol (used by ``Engine(scheduler="event")``): after
    a tick that moved nothing, the engine calls :meth:`sched_poll`, which
    returns one of

    * ``("ready",)`` — the next tick may do work; keep ticking every cycle;
    * ``("sleep", counter)`` — every future tick is *inert* (its only effect
      would be ``stats.<counter> += 1``) until one of this tile's streams is
      pushed, popped, or closed;
    * ``("timer", wake_cycle, counter)`` — inert like ``sleep``, but
      internal state (a latency delay line) independently needs a tick at
      ``wake_cycle``.

    While a tile sleeps the engine skips its ticks entirely and later calls
    :meth:`sched_skip` to apply the skipped ticks' counter increments in
    one step, keeping ``SimStats`` bit-identical to the exhaustive engine.
    The base implementation of :meth:`sched_poll` returns ``("ready",)``:
    a subclass that doesn't opt in is simply ticked every cycle, which is
    always equivalent.

    Observability protocol: when a :class:`~repro.observability.Tracer` is
    armed (``self.tracer`` set by the engine; the class default ``None``
    keeps the hook zero-cost), the engine calls the tracer after every
    real tick, and the tracer consults :meth:`stall_reason` on the first
    non-moving tick to classify the stall.  ``stall_reason`` must be a
    *pure* function of the tile's frozen state — it is evaluated once at
    the stall transition, and the event scheduler's skipped inert ticks
    rely on the classification not changing while the tile sleeps.

    Lowering contract (``Engine(scheduler="vector")``): inside a
    saturated window, ``repro.dataflow.vector.lower`` replaces a tile's
    :meth:`tick` with a fused kernel over its captured streams/packers/
    delay line, deferring its ``TileStats`` deltas until window
    settlement.  Dispatch keys on ``type(tile)`` (exact class) plus
    shape and hook checks (an instance-level ``tick`` monkeypatch among
    them) for the stock tile classes; a *subclass* may additionally opt
    in by returning a contract name from :meth:`lowering_contract` —
    a promise that its tick semantics are exactly those of the named
    kernel family (see ``SortedMergeTile``).  Any tile the lowering
    cannot prove falls back to calling its own ``tick`` per cycle
    inside the window.  Between windows (and on every non-vector
    scheduler) tiles are ticked exactly as documented above.
    """

    #: Observability hook; the class default covers subclasses that skip
    #: ``super().__init__`` (the instance copy keeps the hot-path lookup
    #: a single dict hit).
    tracer = None

    def __init__(self, name: str):
        self.name = name
        self.inputs: List[Stream] = []
        self.outputs: List[Stream] = []
        self.stats = TileStats(name)
        self.tracer = None

    # -- wiring (called by Graph) ----------------------------------------

    def attach_input(self, stream: Stream) -> None:
        stream.consumer = self
        self.inputs.append(stream)

    def attach_output(self, stream: Stream) -> None:
        stream.producer = self
        self.outputs.append(stream)

    # -- simulation -------------------------------------------------------

    def tick(self, cycle: int) -> bool:
        """Advance one cycle.  Returns True if any data moved (progress)."""
        raise NotImplementedError

    def idle(self) -> bool:
        """True when the tile buffers no in-flight records internally."""
        raise NotImplementedError

    def inputs_closed(self) -> bool:
        for s in self.inputs:
            if not s.eos or s._fifo:
                return False
        return True

    def close_outputs(self) -> None:
        for s in self.outputs:
            s.close()

    def maybe_close(self) -> None:
        """Propagate EOS: close outputs once inputs are done and we drained."""
        for s in self.outputs:
            if not s.eos:
                break
        else:
            return          # every output already closed (or none exist)
        if self.inputs_closed() and self.idle():
            self.close_outputs()

    # -- vector-lowering protocol ------------------------------------------

    def lowering_contract(self):
        """Name the fused-kernel family this tile's tick implements.

        The vector backend's kernel dispatch is exact-class for the
        stock tiles (a subclass overriding ``_process`` must not inherit
        a fused kernel it no longer matches).  A subclass whose tick
        semantics *are* exactly a known kernel's — e.g.
        ``SortedMergeTile`` and subclasses that only customize the sort
        key — declares it by returning the contract name here; returning
        a name is a correctness promise, so a subclass that overrides
        ``tick``/``_process`` must also override this to return ``None``.
        The conservative default opts out.
        """
        return None

    # -- event-scheduler protocol -----------------------------------------

    def sched_poll(self, cycle: int) -> tuple:
        """Classify the tile's next tick for the event scheduler.

        Conservative default: always ready (tick every cycle).
        """
        return ("ready",)

    def sched_skip(self, n: int, counter: str) -> None:
        """Apply the effects of ``n`` skipped inert ticks in one step."""
        setattr(self.stats, counter, getattr(self.stats, counter) + n)

    # -- burst-execution protocol ------------------------------------------

    def burst_plan(self):
        """Offer a steady-state burst role to the engine, or ``None``.

        Called by the event engine (burst mode, no hooks armed) when the
        ready set has been stable for several cycles.  A tile that can
        prove its next ticks follow a fixed per-cycle pattern returns a
        role tuple — ``("produce", max_cycles, rate)``, ``("relay1",)`` or
        ``("drain",)`` — and the engine cross-validates the roles against
        the graph wiring before committing a window.  The conservative
        default opts out, which falls back to normal per-cycle ticking.
        """
        return None

    def tick_burst(self, cycle: int, n: int, feed=None):
        """Run ``n`` cycles' worth of ticks in one call.

        Only called for a window the engine validated via
        :meth:`burst_plan`; implementations must leave tile state, stats
        and stream contents bit-identical to ``n`` interleaved per-cycle
        ticks.  ``feed`` is the input stream's push schedule from the
        producer's burst (a sorted list of push cycles, or ``None`` for
        one-vector-per-cycle / not applicable); the return value is this
        tile's own push schedule for its output, in the same format.

        The default is a plain loop — correct only for a tile whose ticks
        are independent of other tiles' progress during the window (the
        engine never selects such a tile without a specialised plan; the
        fallback exists for tests and subclasses that opt in explicitly).
        """
        for k in range(n):
            self.tick(cycle + k)
        return None

    # -- observability protocol --------------------------------------------

    def stall_reason(self) -> StallReason:
        """Classify why the last tick moved nothing (tracing only).

        Generic classification from the streams alone: input waiting that
        we could not consume means downstream backpressure reached us;
        in-flight internal state blocked on a full output is likewise
        backpressure; everything else is starvation.  Subclasses with
        latency delay lines or DRAM queues refine this.
        """
        for stream in self.inputs:
            if stream.can_pop():
                return StallReason.BACKPRESSURE
        if not self.idle():
            for stream in self.outputs:
                if not stream.can_push():
                    return StallReason.BACKPRESSURE
        return StallReason.STARVED

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class SourceTile(Tile):
    """Feeds a record sequence into the fabric, ``LANES`` records per cycle.

    Models the head of a pipeline: a DRAM streaming read or an upstream
    operator's output.  ``rate`` throttles emission to fewer records per
    cycle to model slower producers.
    """

    def __init__(self, name: str, records: Sequence[Record],
                 schema: Optional[Schema] = None, rate: int = LANES):
        super().__init__(name)
        self.schema = schema
        self._records = list(records)
        self._pos = 0
        self.rate = max(1, min(rate, LANES))

    def tick(self, cycle: int) -> bool:
        out = self.outputs[0]
        if self._pos >= len(self._records):
            out.close()
            self.stats.idle_cycles += 1
            return False
        if not out.can_push():
            self.stats.stall_cycles += 1
            return False
        vector = self._records[self._pos:self._pos + self.rate]
        self._pos += len(vector)
        out.push(vector)
        self.stats.record_output(len(vector))
        self.stats.busy_cycles += 1
        if self._pos >= len(self._records):
            out.close()
        return True

    def idle(self) -> bool:
        return self._pos >= len(self._records)

    def done(self) -> bool:
        return self.idle()

    def sched_poll(self, cycle: int) -> tuple:
        out = self.outputs[0]
        if self._pos >= len(self._records):
            if not out.eos:
                return ("ready",)       # next tick issues the close
            return ("sleep", "idle_cycles")
        if not out.can_push():
            return ("sleep", "stall_cycles")   # woken when the output drains
        return ("ready",)

    def burst_plan(self):
        # Steady emission: one full-rate vector per cycle.  The window is
        # capped one vector short of exhaustion so the EOS transition (and
        # the partial final vector, if any) happens under normal ticking.
        if (type(self) is not SourceTile or len(self.outputs) != 1
                or "tick" in self.__dict__):
            return None     # instance-patched ticks must really run
        max_b = (len(self._records) - self._pos - 1) // self.rate
        if max_b < 1:
            return None
        return ("produce", max_b, self.rate)

    def tick_burst(self, cycle: int, n: int, feed=None):
        records = self._records
        rate = self.rate
        pos = self._pos
        self._pos = pos + n * rate
        self.outputs[0].push_n(
            [records[pos + k * rate: pos + (k + 1) * rate]
             for k in range(n)])
        stats = self.stats
        stats.vectors_out += n
        stats.records_out += n * rate
        stats.busy_cycles += n
        return None


class SinkTile(Tile):
    """Collects a stream's records off the fabric (e.g. a DRAM write-back)."""

    def __init__(self, name: str):
        super().__init__(name)
        self.records: List[Record] = []
        self.completion_cycle: Optional[int] = None

    def tick(self, cycle: int) -> bool:
        moved = False
        for stream in self.inputs:
            if stream.can_pop():
                vector = stream.pop()
                self.records.extend(vector)
                self.stats.record_output(len(vector))
                moved = True
        if moved:
            self.stats.busy_cycles += 1
        else:
            self.stats.idle_cycles += 1
        if self.completion_cycle is None and self.inputs_closed():
            self.completion_cycle = cycle
        return moved

    def idle(self) -> bool:
        return True

    def sched_poll(self, cycle: int) -> tuple:
        for stream in self.inputs:
            if stream.can_pop():
                return ("ready",)
        if self.completion_cycle is None and self.inputs_closed():
            return ("ready",)           # next tick records completion
        return ("sleep", "idle_cycles")

    def burst_plan(self):
        # Pure drain: pop one vector per cycle as they arrive.  Requires a
        # single open input so no completion event can land in the window.
        if (type(self) is not SinkTile or len(self.inputs) != 1
                or self.inputs[0].eos or "tick" in self.__dict__):
            return None
        return ("drain",)

    def tick_burst(self, cycle: int, n: int, feed=None):
        stream = self.inputs[0]
        if feed is None:
            # Producer pushes every cycle; a push at cycle c is popped at
            # c + 1 (the sink ticks before the producer in tick order), so
            # the only cycle without a pop is the first — unless a vector
            # was already buffered at window start.
            m = n if stream._fifo else n - 1
        else:
            end = cycle + n - 1
            m = 0
            for c in feed:
                if c < end:
                    m += 1
                else:
                    break
        records = self.records
        stats = self.stats
        for vector in stream.pop_n(m):
            records.extend(vector)
            stats.vectors_out += 1
            stats.records_out += len(vector)
        stats.busy_cycles += m
        stats.idle_cycles += n - m
        return None
