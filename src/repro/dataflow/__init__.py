"""Aurochs' dataflow-thread substrate: records, streams, tiles, and the
cycle-level engine.

This package is the paper's primary contribution in executable form — the
threading model of §III where per-thread state lives in records that stream
through spatial pipelines, with filter/merge/map/fork as the only
primitives and lane compaction keeping hardware full under divergence.
"""

from repro.dataflow.record import FIELD_BITS, LANES, Record, Schema, as_i32, as_u32
from repro.dataflow.stream import DEFAULT_CAPACITY, Stream, Vector
from repro.dataflow.stats import DramStats, ScratchpadStats, SimStats, TileStats
from repro.dataflow.tile import Packer, SinkTile, SourceTile, Tile
from repro.dataflow.compute import (
    PIPELINE_DEPTH,
    CopyTile,
    FilterTile,
    ForkTile,
    MapTile,
    MergeTile,
    StampTile,
)
from repro.dataflow.graph import Graph
from repro.dataflow.engine import Engine, run_graph
from repro.dataflow.functional import FunctionalEngine, run_functional
from repro.dataflow.builder import LoopHandle, Pipe, PipelineBuilder
from repro.dataflow.mergesort import SortedMergeTile, merge_sort_graph
from repro.dataflow.visualize import to_ascii, to_dot

__all__ = [
    "FIELD_BITS", "LANES", "Record", "Schema", "as_i32", "as_u32",
    "DEFAULT_CAPACITY", "Stream", "Vector",
    "DramStats", "ScratchpadStats", "SimStats", "TileStats",
    "Packer", "SinkTile", "SourceTile", "Tile",
    "PIPELINE_DEPTH", "CopyTile", "FilterTile", "ForkTile", "MapTile",
    "MergeTile", "StampTile",
    "Graph", "Engine", "run_graph",
    "FunctionalEngine", "run_functional",
    "LoopHandle", "Pipe", "PipelineBuilder",
    "SortedMergeTile", "merge_sort_graph",
    "to_ascii", "to_dot",
]
