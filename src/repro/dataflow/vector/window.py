"""Vector window entry/exit: run saturated windows on the lowered kernels.

:func:`run_window` is the vector-mode replacement for the burst engine's
hoisted exhaustive loop.  The engine calls it after performing exactly
the same window entry it performs for a ``"fabric"`` window — sleep-skip
credit settled, every tile marked ready with a generation bump, stream
scheduler hooks detached — so on entry the object model is in the same
state a per-cycle run would be in at this cycle.

The loop body replicates the hoisted loop's check order statement for
statement: cancellation check on every cycle after the first, progress
bookkeeping, quiescence/deadlock on a no-move cycle, the cycle-limit
check, then a throughput-decay exit.  The only difference is that each
fabric cycle runs through the lowering's fused kernels instead of
``tick`` calls.

The decay exit is where vector windows earn their keep relative to the
``"fabric"`` windows of plain burst mode.  A fabric window exits as soon
as progress drops to a quarter of its own peak, because per-cycle
exhaustive ticking of a winding-down fabric is pure overhead against the
ready-set machinery.  A fused-kernel sweep is much cheaper: an idle tile
costs one early-out check, so when *every* tile lowered to a fused
kernel the window stays resident until fewer than 1/16 of the fabric
moves in a cycle (never, for fabrics under 16 tiles — they run to the
first fully idle cycle).  That keeps the drain ramp — which never idles
long enough for the event engine to fast-forward, but whose ready set is
too small to re-trigger saturation — on the vectorized path.  When the
lowering contains fallback (plain ``tick``) kernels the conservative
peak-based exit is kept, since idle fallbacks still pay full tick cost.
A fully idle cycle always exits the window: that is exactly the state
the event engine's timer fast-forward exists for.

Settlement discipline: the engine's quiescence, deadlock, and overrun
inspectors read the *object model* (``SourceTile.done()`` reads
``_pos``, ``_stuck_report`` reads stats and stream state), while the
kernels hold a few scalars and all counters in closure locals.  So the
lowering settles **before** any of those checks can run or raise — on
the first no-move cycle, before an overrun raise on a moved cycle, and
in a ``finally`` so a cancellation raised by ``tok.check`` (or any
kernel error) never leaves half-settled state behind.  ``settle`` is
idempotent per window, so the redundant ``finally`` settle after a
normal exit is a no-op.
"""

from __future__ import annotations

import gc
from time import perf_counter
from typing import Optional, Tuple

from repro.dataflow.vector.lower import Lowering


def run_window(engine, tiles, cycle: int, last_progress: int,
               wkey: str = "vector",
               limit: Optional[int] = None) -> Tuple[int, int, bool]:
    """Run one lowered window; return ``(cycle, last_progress, quiesced)``.

    ``wkey`` names the window shape for ``engine.burst_windows`` /
    ``engine.window_wall`` attribution ("vector" for saturated windows,
    "ramp" for the fixed-width pre-saturation windows).  ``limit`` caps
    the window at that many cycles — ramp windows use a short fixed
    width so the event scheduler re-evaluates the (still growing) ready
    set between windows.  A capped exit settles through the same
    ``finally`` discipline as every other exit path.

    Raises whatever the per-cycle engine would raise (deadline,
    cancellation, deadlock, overrun) at the identical cycle, with the
    object model fully settled first.
    """
    t0 = perf_counter()
    lowering = engine._vector_lowering
    if lowering is None or lowering.tiles is not tiles:
        lowering = engine._vector_lowering = Lowering(engine, tiles)
        # The one-time dispatch + expression-compile cost is attributed
        # to its own ``window_wall`` key: the benchmark's ramp-fraction
        # gate must measure ramp *execution*, not the build that happens
        # to land inside the first (usually ramp) window.
        t1 = perf_counter()
        wall = engine.window_wall
        wall["lower"] = wall.get("lower", 0.0) + (t1 - t0)
        t0 = t1
    lowering.begin()
    run_cycle = (lowering.run_cycle if engine.tick_profile is None
                 else lowering.profiled_cycle)
    tok = engine.cancel
    max_cycles = engine.max_cycles
    deadlock_window = engine.deadlock_window
    # Fully fused fabrics idle cheaply, so the window stays resident
    # down to a 1/16 moving fraction (0 = sticky for small fabrics);
    # with fallback kernels (decay -1) the peak-decay exit applies.
    decay = len(tiles) // 16 if lowering.fallbacks == 0 else -1
    enter = cycle
    peak = 0
    quiesced = False
    # The kernels allocate short-lived tuples and lists at a rate that
    # trips several generation-0 collections per window; none of those
    # allocations form reference cycles, so collection is deferred to
    # window exit.  Restored in the ``finally`` with the settle, so an
    # error inside the window never leaks a disabled collector.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        while True:
            if tok is not None and cycle > enter:
                tok.check(cycle)
            moved_n = run_cycle(cycle)
            cycle += 1
            if moved_n:
                last_progress = cycle
                if cycle >= max_cycles:
                    lowering.settle()
                    engine._raise_overrun(cycle)
                if decay >= 0:
                    if moved_n < decay:
                        break
                elif moved_n > peak:
                    peak = moved_n
                elif moved_n <= 2 or moved_n < peak // 4:
                    break
                if limit is not None and cycle - enter >= limit:
                    break
            else:
                # First stalled cycle: every further engine check reads
                # the object model, so settle now (final for this
                # window — all exits below leave the loop).
                lowering.settle()
                if engine._quiescent():
                    quiesced = True
                    break
                if cycle - last_progress > deadlock_window:
                    engine._raise_deadlock(cycle, None)
                if cycle >= max_cycles:
                    engine._raise_overrun(cycle)
                break                   # decay exit: moved_n (= 0) <= 2
    finally:
        if gc_was_enabled:
            gc.enable()
        lowering.settle()
        wall = engine.window_wall
        wall[wkey] = wall.get(wkey, 0.0) + (perf_counter() - t0)
    return cycle, last_progress, quiesced
