"""Columnar vector backend: numpy-lowered saturated fabric windows.

``Engine(scheduler="vector")`` behaves exactly like the event scheduler
with burst execution until it detects a steady-state *saturated window*
(nearly every tile ready for several consecutive rounds — the same
trigger PR 5's burst engine uses).  At that point, instead of dropping to
the hoisted exhaustive loop, the engine *lowers* the live tile set into a
:class:`~repro.dataflow.vector.lower.Lowering`: one fused kernel closure
per tile over columnar state, plus numpy counter matrices
(tiles × counters, streams × counters, banks-facing scratchpad columns)
that defer every statistics update to a single vectorized settlement at
window exit.  See ``lower.py`` for the layout, ``kernels.py`` for the
per-tile-class kernels, and ``window.py`` for entry/exit and read-back.

numpy is a hard dependency of the mode (and declared in
``pyproject.toml``); :func:`require_numpy` raises a typed
:class:`~repro.errors.DependencyError` with an actionable message when it
is missing, so ``scheduler="vector"`` fails at engine construction, not
mid-run.
"""

from __future__ import annotations

try:
    import numpy as _numpy
except ImportError:        # pragma: no cover - exercised via monkeypatch
    _numpy = None

#: True when numpy imported successfully.  Tests monkeypatch this to
#: exercise the missing-dependency path without uninstalling numpy.
HAVE_NUMPY = _numpy is not None


def require_numpy():
    """Return the numpy module, or raise a typed :class:`DependencyError`."""
    if not HAVE_NUMPY or _numpy is None:
        from repro.errors import DependencyError
        raise DependencyError(
            "scheduler='vector' requires numpy (the columnar vector "
            "backend lowers fabric windows into numpy counter matrices); "
            "install it with `pip install numpy` or use "
            "scheduler='event'/'exhaustive' instead")
    return _numpy


__all__ = ["HAVE_NUMPY", "require_numpy"]
