"""Columnar lowering of a live tile set for vector windows.

A :class:`Lowering` is built once per engine run (on the first saturated
window) and reused for every later window.  It walks the tile list in
tick order and, per tile, either *lowers* the tile to a fused kernel
closure from :mod:`repro.dataflow.vector.kernels` or falls back to the
tile's own bound ``tick``.  Alongside the kernels it allocates the
columnar counter state:

* ``tile_counts``  — tiles × (busy, stall, idle, vectors_out,
  records_out): the deferred ``TileStats`` deltas;
* ``spad_counts``  — lowered memory tiles × (requests, grants,
  bank_conflicts, considered_bids, queue_full_stalls, active_cycles):
  the deferred ``ScratchpadStats`` deltas, covering both scratchpad
  banks and DRAM channel queues;
* ``dram_counts``  — lowered DRAM tiles × (read_bytes, dense_bursts,
  sparse_bursts): the deferred ``DramStats`` deltas;
* ``stream_counts`` — produced streams × (pushed_vectors,
  pushed_records): the deferred ``Stream`` push counters.

During a window the kernels accumulate into plain per-row int cells
(closure-local ints flushed to the rows at settlement) — Python ints
are free inside the per-cycle loop, where a numpy scalar operation
would cost a ufunc dispatch per touch.  :meth:`settle` then folds every
row into the numpy matrices in one vectorized add per matrix (the
columnar record of what each window did, used by benchmarks and the
profiler) and applies the same deltas to the live ``SimStats`` objects,
restoring exact object-model state before the event scheduler resumes.

Lowering eligibility is deliberately conservative: any instance-patched
``tick``, armed tracer, monitored/traced stream, fault injector, or
wiring shape a kernel does not model drops that tile to the fallback
kernel, which is the real ``tick`` and therefore exact by definition.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.dataflow.vector import require_numpy
from repro.dataflow.vector import kernels as K
from repro.dataflow.expr import Expr
from repro.dataflow.mergesort import SortedMergeTile
from repro.dataflow.tile import SinkTile, SourceTile
from repro.dataflow.compute import (CopyTile, FilterTile, ForkTile, MapTile,
                                    MergeTile, StampTile)
from repro.memory.dram import DramTile
from repro.memory.spad_tile import ScratchpadTile

#: Column layouts of the settlement matrices, in row order.
TILE_COLS = ("busy_cycles", "stall_cycles", "idle_cycles",
             "vectors_out", "records_out")
SPAD_COLS = ("requests", "grants", "bank_conflicts", "considered_bids",
             "queue_full_stalls", "active_cycles")
DRAM_COLS = ("read_bytes", "dense_bursts", "sparse_bursts")
STREAM_COLS = ("pushed_vectors", "pushed_records")


def _hooks_armed(tile) -> bool:
    """True when per-tick/per-op hooks force the fallback kernel."""
    if "tick" in tile.__dict__ or tile.tracer is not None:
        return True
    for stream in tile.inputs:
        if stream._mt:
            return True
    for stream in tile.outputs:
        if stream._mt:
            return True
    return False


def _expr_tag(*callables) -> str:
    """``"+expr"`` when any of the tile's callables batch-compiles.

    The suffix feeds the profiler's compiled-vs-interpreted attribution
    (``repro microbench --profile``) and the benchmark's per-window-shape
    breakdown; dispatch itself treats tagged and untagged kinds alike.
    """
    return "+expr" if any(isinstance(c, Expr) for c in callables) else ""


class Lowering:
    """Columnar kernel set + settlement matrices for one tile list."""

    def __init__(self, engine, tiles):
        np = require_numpy()
        self._np = np
        self._engine = engine
        self.tiles = tiles
        n = len(tiles)
        #: Per-tile kernel kind label ("source", "spad_read", "fallback"...).
        self.kinds: List[str] = []
        #: Per-tile cycle kernels, in tick order.
        self.kernels: List[Callable[[int], bool]] = []
        #: Number of tiles running the fallback (real ``tick``) kernel.
        self.fallbacks = 0
        self._begins: List[Callable[[], None]] = []
        self._settles: List[Callable[[], None]] = []
        # Working rows: plain int lists the kernels' settles add into;
        # folded into the numpy matrices (and zeroed) at settlement.
        self._tile_rows = [[0] * len(TILE_COLS) for __ in range(n)]
        self._spad_rows: List[Tuple[object, List[int]]] = []
        self._dram_rows: List[Tuple[object, List[int]]] = []
        self._stream_rows: Dict[int, List[int]] = {}
        self._streams: List[Tuple[object, List[int]]] = []
        self._settled = True
        profiling = engine.tick_profile is not None
        self._k_time: Optional[List[float]] = [0.0] * n if profiling else None
        self._k_calls: Optional[List[int]] = [0] * n if profiling else None
        for i, tile in enumerate(tiles):
            kern, begin, settle = self._lower_tile(tile, self._tile_rows[i])
            self.kernels.append(kern)
            if begin is not None:
                self._begins.append(begin)
            if settle is not None:
                self._settles.append(settle)
        # Dispatch memo: what each tile looked like when its kernel was
        # chosen.  ``revalidate`` compares against this instead of
        # re-running the dispatch chain, so the lowering survives across
        # engine runs (and the matrices accumulate across them).
        self._sigs = [self._tile_sig(t) for t in tiles]
        #: Cumulative columnar settlement matrices across all windows.
        self.tile_counts = np.zeros((n, len(TILE_COLS)), dtype=np.int64)
        self.spad_counts = np.zeros((len(self._spad_rows), len(SPAD_COLS)),
                                    dtype=np.int64)
        self.dram_counts = np.zeros((len(self._dram_rows), len(DRAM_COLS)),
                                    dtype=np.int64)
        self.stream_counts = np.zeros((len(self._streams), len(STREAM_COLS)),
                                      dtype=np.int64)

    # -- per-tile dispatch -------------------------------------------------

    def _stream_row(self, stream) -> List[int]:
        row = self._stream_rows.get(id(stream))
        if row is None:
            row = self._stream_rows[id(stream)] = [0, 0]
            self._streams.append((stream, row))
        return row

    def _spad_row(self, tile) -> List[int]:
        row = [0] * len(SPAD_COLS)
        self._spad_rows.append((tile, row))
        return row

    def _dram_row(self, tile) -> List[int]:
        row = [0] * len(DRAM_COLS)
        self._dram_rows.append((tile, row))
        return row

    def _lower_tile(self, tile, trow):
        """Pick the fused kernel for ``tile``, or the exact fallback."""
        cls = type(tile)
        if not _hooks_armed(tile):
            if cls is SourceTile and len(tile.outputs) == 1:
                self.kinds.append("source")
                return K.source_kernel(tile, trow,
                                       self._stream_row(tile.outputs[0]))
            if cls is SinkTile:
                self.kinds.append("sink")
                return K.sink_kernel(tile, trow)
            if cls is MapTile and len(tile.inputs) == 1 \
                    and len(tile._packers) == 1:
                self.kinds.append("map" + _expr_tag(tile.fn))
                return K.map_kernel(tile, trow, self._stream_row)
            if cls is FilterTile and len(tile.inputs) == 1 \
                    and len(tile._packers) == 2:
                self.kinds.append("filter" + _expr_tag(tile.predicate))
                return K.filter_kernel(tile, trow, self._stream_row)
            if cls is MergeTile and len(tile.inputs) >= 1 \
                    and len(tile._packers) == 1:
                self.kinds.append("merge")
                return K.merge_kernel(tile, trow, self._stream_row)
            if cls is CopyTile and len(tile.inputs) == 1 \
                    and len(tile._packers) == 2:
                self.kinds.append("copy")
                process, pb, es = K.copy_process(tile)
                return K.pipelined_kernel(tile, trow, self._stream_row,
                                          process, pb, es)
            if cls is StampTile and len(tile.inputs) == 1 \
                    and len(tile._packers) == 1:
                self.kinds.append("stamp")
                process, pb, es = K.stamp_process(tile)
                return K.pipelined_kernel(tile, trow, self._stream_row,
                                          process, pb, es)
            if cls is ForkTile and len(tile.inputs) == 1 \
                    and len(tile._packers) == 1:
                self.kinds.append("fork")
                process, pb, es = K.fork_process(tile)
                return K.pipelined_kernel(tile, trow, self._stream_row,
                                          process, pb, es)
            if (cls is ScratchpadTile and tile._plain_read
                    and tile.fault_injector is None
                    and len(tile.inputs) == 1
                    and tile.ports[0].input is tile.inputs[0]
                    and tile.ports[0].packer.stream is not None):
                cfg = tile.ports[0].config
                self.kinds.append(
                    "spad_read" + _expr_tag(cfg.addr, cfg.combine))
                return K.spad_read_kernel(
                    tile, trow, self._spad_row(tile), self._stream_row)
            if (cls is DramTile and tile._single
                    and tile.ports[0].config.mode == "read"
                    and tile.fault_injector is None
                    and len(tile.inputs) == 1
                    and tile.ports[0].input is tile.inputs[0]
                    and tile.ports[0].packer.stream is not None):
                cfg = tile.ports[0].config
                self.kinds.append(
                    "dram_read" + _expr_tag(cfg.addr, cfg.combine))
                return K.dram_read_kernel(
                    tile, trow, self._spad_row(tile), self._dram_row(tile),
                    self._stream_row)
            # Contract dispatch: subclasses opt in by *declaring* which
            # fused-kernel family their tick implements, so the exact-
            # class gates above stay conservative while a SortedMergeTile
            # subclass customizing only the key still lowers.
            if (tile.lowering_contract() == "sorted_merge"
                    and isinstance(tile, SortedMergeTile)
                    and len(tile.inputs) == 2):
                self.kinds.append("sorted_merge" + _expr_tag(tile.key))
                return K.sorted_merge_kernel(tile, trow, self._stream_row)
        self.kinds.append("fallback")
        self.fallbacks += 1
        return K.fallback_kernel(tile)

    # -- cross-run reuse ---------------------------------------------------

    @staticmethod
    def _tile_sig(tile):
        """Everything the dispatch decision (and the closures) depend on
        that a caller could legally mutate between engine runs."""
        sig = (type(tile), _hooks_armed(tile),
               getattr(tile, "fault_injector", None) is not None,
               tuple(id(s) for s in tile.inputs),
               tuple(id(s) for s in tile.outputs))
        if type(tile) is SourceTile:
            sig += (id(tile._records), len(tile._records), tile.rate)
        return sig

    def revalidate(self, tiles) -> bool:
        """True when this lowering is still exact for ``tiles``.

        The kernels close over the tile instances, their streams, and
        their callables, so reuse requires the *same* tile objects in
        the same order with unchanged dispatch signatures (hooks, wiring,
        injector, source record list).  On success the new list object is
        adopted (``run_window`` compares list identity); any mismatch
        reports False and the engine rebuilds from scratch — the fix for
        re-running the whole dispatch chain on every run.
        """
        mine = self.tiles
        if len(tiles) != len(mine):
            return False
        for a, b in zip(mine, tiles):
            if a is not b:
                return False
        for tile, sig in zip(tiles, self._sigs):
            if self._tile_sig(tile) != sig:
                return False
        self.tiles = tiles
        return True

    # -- window execution --------------------------------------------------

    def begin(self) -> None:
        """Arm the kernels at window entry: load deferred scalars."""
        self._settled = False
        for fn in self._begins:
            fn()

    def run_cycle(self, cycle: int) -> int:
        """Advance every tile one cycle; return the moved-tile count."""
        moved = 0
        for kern in self.kernels:
            if kern(cycle):
                moved += 1
        return moved

    def profiled_cycle(self, cycle: int) -> int:
        """``run_cycle`` with per-kernel wall-clock columns."""
        moved = 0
        k_time = self._k_time
        k_calls = self._k_calls
        kernels = self.kernels
        for k in range(len(kernels)):
            t0 = perf_counter()
            if kernels[k](cycle):
                moved += 1
            k_time[k] += perf_counter() - t0
            k_calls[k] += 1
        return moved

    def settle(self) -> None:
        """Fold the window into the matrices and the object model.

        Idempotent per window (the engine calls it on every exit path,
        including mid-window errors, and ``begin`` re-arms it).  After
        settlement the ``SimStats``/``Stream`` counters, the deferred
        scalar registers, and the cumulative numpy matrices all reflect
        every cycle the window ran, bit-identically to per-cycle ticks.
        """
        if self._settled:
            return
        self._settled = True
        for fn in self._settles:
            fn()
        np = self._np
        rows = self._tile_rows
        self.tile_counts += np.asarray(rows, dtype=np.int64)
        for tile, row in zip(self.tiles, rows):
            if row[0] or row[1] or row[2] or row[3] or row[4]:
                st = tile.stats
                st.busy_cycles += row[0]
                st.stall_cycles += row[1]
                st.idle_cycles += row[2]
                st.vectors_out += row[3]
                st.records_out += row[4]
                row[0] = row[1] = row[2] = row[3] = row[4] = 0
        if self._spad_rows:
            srows = [row for __, row in self._spad_rows]
            self.spad_counts += np.asarray(srows, dtype=np.int64)
            for tile, row in self._spad_rows:
                if any(row):
                    st = tile.spad_stats
                    st.requests += row[0]
                    st.grants += row[1]
                    st.bank_conflicts += row[2]
                    st.considered_bids += row[3]
                    st.queue_full_stalls += row[4]
                    st.active_cycles += row[5]
                    row[:] = [0] * len(SPAD_COLS)
        if self._dram_rows:
            drows = [row for __, row in self._dram_rows]
            self.dram_counts += np.asarray(drows, dtype=np.int64)
            for tile, row in self._dram_rows:
                if any(row):
                    st = tile.dram_stats
                    st.read_bytes += row[0]
                    st.dense_bursts += row[1]
                    st.sparse_bursts += row[2]
                    row[:] = [0] * len(DRAM_COLS)
        if self._streams:
            vrows = [row for __, row in self._streams]
            self.stream_counts += np.asarray(vrows, dtype=np.int64)
            for stream, row in self._streams:
                if row[0]:
                    stream.pushed_vectors += row[0]
                    stream.pushed_records += row[1]
                    row[0] = row[1] = 0
        if self._k_time is not None:
            self._fold_profile()

    def _fold_profile(self) -> None:
        """Credit window kernel time to the engine's profile tables."""
        engine = self._engine
        tick_prof = engine.tick_profile
        vec_prof = engine.vector_profile
        k_time = self._k_time
        k_calls = self._k_calls
        for i, tile in enumerate(self.tiles):
            calls = k_calls[i]
            if not calls:
                continue
            secs = k_time[i]
            name = type(tile).__name__
            entry = tick_prof.get(name)
            if entry is None:
                entry = tick_prof[name] = [0, 0.0]
            entry[0] += calls
            entry[1] += secs
            kind = self.kinds[i]
            entry = vec_prof.get(kind)
            if entry is None:
                entry = vec_prof[kind] = [0, 0.0]
            entry[0] += calls
            entry[1] += secs
            k_calls[i] = 0
            k_time[i] = 0.0

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Columnar totals across every settled window (numpy reductions)."""
        kind_counts: Dict[str, int] = {}
        for kind in self.kinds:
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
        return {
            "tiles": len(self.tiles),
            "fallbacks": self.fallbacks,
            "kinds": kind_counts,
            "tile_totals": dict(zip(
                TILE_COLS, self.tile_counts.sum(axis=0).tolist())),
            "spad_totals": dict(zip(
                SPAD_COLS, self.spad_counts.sum(axis=0).tolist())),
            "dram_totals": dict(zip(
                DRAM_COLS, self.dram_counts.sum(axis=0).tolist())),
            "stream_totals": dict(zip(
                STREAM_COLS, self.stream_counts.sum(axis=0).tolist())),
        }
