"""Fused per-tile kernels for columnar vector windows.

Each factory takes one live tile plus the counter-row views the
:class:`~repro.dataflow.vector.lower.Lowering` allocated for it and
returns ``(kern, begin, settle)``:

* ``kern(cycle) -> bool`` advances the tile one fabric cycle and reports
  whether data moved.  It is the tile's ``tick`` with every method call
  inlined — retire, enqueue, bank arbitration, packer flush, EOS
  propagation — over state captured as closure locals (stream FIFOs,
  packer pending lists, issue-queue slots, delay deques) and counters
  kept as plain local ints.  Structural state stays *live* (the real
  deques and lists mutate in place), so mid-window quiescence and
  deadlock inspection see the truth; only counters and a handful of
  scalar registers (source position, allocator rotor, DRAM last-index,
  stamp counter) are deferred.

* ``begin()`` re-arms the kernel at window entry: it loads the deferred
  scalar registers from the object model and zeroes the deferred
  counters.  Lowerings are built once per run and reused across
  windows, so the (comparatively expensive) closure construction is
  amortised while ``begin`` stays a few loads per tile.

* ``settle()`` writes the deferred scalars back into the object model
  and adds the accumulated counters into the lowering's column rows;
  the Lowering then folds all rows into its numpy settlement matrices
  and the live ``SimStats`` objects in one pass at window exit.

Exactness: every kernel is a statement-for-statement restatement of the
tile's ``tick`` path under the window's standing preconditions — no
injector, no tracer, no stream monitor, stream ``sched`` hooks detached
(the engine detaches them at window entry, exactly as the burst engine's
hoisted exhaustive loop does).  Under those preconditions ``stream.push``
is ``fifo.append`` plus two counters, ``stream.pop`` is ``popleft``, and
``stream.close`` is ``eos = True``; the kernels inline those forms.
Tiles whose class, wiring, or hooks fall outside a kernel's precondition
get the *fallback kernel* — the bound ``tile.tick`` itself — which is
trivially exact.

Bank arbitration stays a fused Python bitmask scan rather than a numpy
expression on purpose: at ``LANES=16`` the whole rotating-priority scan
is a handful of loop iterations on closure locals, far below the fixed
per-call cost of a numpy ufunc dispatch.  numpy earns its keep on the
axes where the window is long, not wide: the counter settlement matrices
and the per-kernel profile columns in ``lower.py``.

Expression fusion: when a tile's callable is an :class:`Expr`
(``repro.dataflow.expr``), the kernel swaps the per-record call loop for
the expression's batch-compiled form — one generated-comprehension call
per consumed vector instead of one Python call per record.  Map tiles
use ``compile_batch(skip_none=True)``, filters ``compile_split``, and
memory address generators ``compile_requests`` (which emits the window's
``(bank, index, record)`` tuples directly).  A memory port whose
``combine`` is an Expr additionally defers response construction: grants
collect ``(record, data)`` pairs during the allocator scan and one
``compile_batch(arity=2, skip_none=True)`` call turns them into a single
*batched* delay entry ``(ready, 1, [responses])`` — distinguished from
singles ``(ready, 0, response)`` by the middle tag, expanded back to
singles at settlement so the object model only ever sees the per-record
format.  Legacy (non-Expr) callables keep the original per-record loops
bit-for-bit, including inline per-grant combine calls (a legacy combine
may be impure, so its call order is preserved exactly).
"""

from __future__ import annotations

from repro.dataflow.expr import Expr
from repro.dataflow.record import LANES
from repro.memory.issue_queue import Request
from repro.memory.scratchpad import BANKS


def fallback_kernel(tile):
    """The bound ``tick``: exact for any tile, no deferred state."""
    return tile.tick, None, None


def source_kernel(tile, trow, srow):
    """Fused ``SourceTile.tick``: slice, push, close at exhaustion."""
    out = tile.outputs[0]
    fifo = out._fifo
    capacity = out.capacity
    records = tile._records
    n_records = len(records)
    rate = tile.rate
    pos = 0
    busy = stall = idle = vout = rout = 0
    pv = pr = 0

    def begin():
        nonlocal pos, busy, stall, idle, vout, rout, pv, pr
        pos = tile._pos
        busy = stall = idle = vout = rout = pv = pr = 0

    def kern(cycle):
        nonlocal pos, busy, stall, idle, vout, rout, pv, pr
        if pos >= n_records:
            if not out.eos:
                out.eos = True          # close(), hooks detached
            idle += 1
            return False
        if len(fifo) >= capacity:
            stall += 1
            return False
        vector = records[pos:pos + rate]
        pos += len(vector)
        fifo.append(vector)             # push(), hooks detached
        pv += 1
        pr += len(vector)
        vout += 1
        rout += len(vector)
        busy += 1
        if pos >= n_records:
            out.eos = True
        return True

    def settle():
        tile._pos = pos
        trow[0] += busy
        trow[1] += stall
        trow[2] += idle
        trow[3] += vout
        trow[4] += rout
        srow[0] += pv
        srow[1] += pr

    return kern, begin, settle


def sink_kernel(tile, trow):
    """Fused ``SinkTile.tick``: pop-all, completion-cycle latch."""
    streams = list(tile.inputs)
    fifos = [s._fifo for s in streams]
    n_in = len(fifos)
    extend = tile.records.extend
    busy = idle = vout = rout = 0
    done = False

    def begin():
        nonlocal busy, idle, vout, rout, done
        busy = idle = vout = rout = 0
        done = tile.completion_cycle is not None

    def kern(cycle):
        nonlocal busy, idle, vout, rout, done
        moved = False
        for k in range(n_in):
            fifo = fifos[k]
            if fifo:
                vector = fifo.popleft()
                extend(vector)
                vout += 1
                rout += len(vector)
                moved = True
        if moved:
            busy += 1
        else:
            idle += 1
        if not done:
            for s in streams:           # inputs_closed(), inlined
                if not s.eos or s._fifo:
                    break
            else:
                tile.completion_cycle = cycle
                done = True
        return moved

    def settle():
        trow[0] += busy
        trow[2] += idle
        trow[3] += vout
        trow[4] += rout

    return kern, begin, settle


def _flush_specs(tile, stream_row):
    """Per-packer flush columns: ``(pending, fifo|None, capacity, counts)``.

    ``fifo`` is None for dropped/unattached outputs (records are
    discarded, as ``Packer.flush`` does); ``counts`` accumulates the
    owned stream's ``(pushed_vectors, pushed_records)`` and the returned
    ``settle_streams`` pairs each counts cell with its lowering row.
    """
    specs = []
    settle_streams = []
    for packer in tile._packers:
        stream = packer.stream
        if stream is None:
            specs.append((packer.pending, None, 0, None))
        else:
            counts = [0, 0]
            specs.append((packer.pending, stream._fifo, stream.capacity,
                          counts))
            settle_streams.append((stream_row(stream), counts))
    return specs, settle_streams


def map_kernel(tile, trow, stream_row):
    """Fused ``MapTile.tick``: retire → fn over the vector → flush."""
    in_stream = tile.inputs[0]
    in_fifo = in_stream._fifo
    if isinstance(tile.fn, Expr):
        produce = tile.fn.compile_batch(skip_none=True)
    else:
        fn = tile._fn

        def produce(vector):
            return [r for rec in vector if (r := fn(rec)) is not None]

    latency = tile.latency
    delay = tile._delay
    delay_append = delay.append
    packer = tile._packers[0]
    pending = packer.pending
    spill = packer.spill_limit
    out = packer.stream
    out_fifo = out._fifo if out is not None else None
    out_cap = out.capacity if out is not None else 0
    srow = stream_row(out) if out is not None else None
    maybe_close = tile.maybe_close
    # ``close_outputs`` closes every attached output together, so one
    # stream's ``eos`` tells whether EOS propagation already happened —
    # cached as ``shut`` to skip the ``maybe_close`` call on every cycle
    # after the close (it would early-return unseen).
    out0 = tile.outputs[0] if tile.outputs else None
    shut = out0 is None
    busy = stall = idle = vout = rout = 0
    pv = pr = 0

    def begin():
        nonlocal busy, stall, idle, vout, rout, pv, pr, shut
        busy = stall = idle = vout = rout = pv = pr = 0
        shut = out0 is None or out0.eos

    def kern(cycle):
        nonlocal busy, stall, idle, vout, rout, pv, pr, shut
        if not in_fifo and not delay and not pending:
            # Drained-tile fast path: the full body would take exactly
            # this branch structure and only bump the idle counter.
            idle += 1
            if not shut and in_stream.eos:
                maybe_close()
                shut = out0.eos
            return False
        moved = False
        if delay and delay[0][0] <= cycle:
            while delay and delay[0][0] <= cycle:
                recs = delay.popleft()[1][0]
                if recs:
                    pending.extend(recs)
            moved = True
        consumed = False
        if in_fifo and len(pending) + LANES <= spill:
            vector = in_fifo.popleft()
            delay_append((cycle + latency, (produce(vector),)))
            consumed = True
            moved = True
        if pending:
            if out is None:
                pending.clear()
                moved = True
            elif len(pending) >= LANES or not consumed:
                if len(out_fifo) < out_cap:
                    vector = pending[:LANES]
                    del pending[:LANES]
                    out_fifo.append(vector)
                    nv = len(vector)
                    pv += 1
                    pr += nv
                    vout += 1
                    rout += nv
                    moved = True
        if moved:
            busy += 1
        elif in_fifo:
            stall += 1
        else:
            idle += 1
        if not shut and in_stream.eos:
            maybe_close()
            shut = out0.eos
        return moved

    def settle():
        trow[0] += busy
        trow[1] += stall
        trow[2] += idle
        trow[3] += vout
        trow[4] += rout
        if srow is not None:
            srow[0] += pv
            srow[1] += pr

    return kern, begin, settle


def filter_kernel(tile, trow, stream_row):
    """Fused ``FilterTile.tick``: predicate split across two ports.

    When the fail port is unattached (the common drop-filter) the kernel
    specializes via :func:`_filter_drop_kernel`: the predicate compiles
    to a keep-only batch filter — no failed-side list is ever built,
    since ``Packer.flush`` would discard it unseen — and the flush loop
    collapses to the single pass-side packer.
    """
    in_stream = tile.inputs[0]
    in_fifo = in_stream._fifo
    p0, p1 = tile._packers
    if p1.stream is None and p0.stream is not None:
        return _filter_drop_kernel(tile, trow, stream_row)
    if isinstance(tile.predicate, Expr):
        split = tile.predicate.compile_split()
    else:
        predicate = tile._pred

        def split(vector):
            passed = []
            failed = []
            pa = passed.append
            fa = failed.append
            for rec in vector:
                if predicate(rec):
                    pa(rec)
                else:
                    fa(rec)
            return passed, failed

    latency = tile.latency
    delay = tile._delay
    delay_append = delay.append
    p0, p1 = tile._packers
    pend0, pend1 = p0.pending, p1.pending
    spill0, spill1 = p0.spill_limit, p1.spill_limit
    specs, settle_streams = _flush_specs(tile, stream_row)
    maybe_close = tile.maybe_close
    # ``close_outputs`` closes every attached output together; one
    # stream's ``eos`` caches whether the close already happened.
    out0 = tile.outputs[0] if tile.outputs else None
    shut = out0 is None
    busy = stall = idle = vout = rout = 0

    def begin():
        nonlocal busy, stall, idle, vout, rout, shut
        busy = stall = idle = vout = rout = 0
        shut = out0 is None or out0.eos
        for __, counts in settle_streams:
            counts[0] = counts[1] = 0

    def kern(cycle):
        nonlocal busy, stall, idle, vout, rout, shut
        if not in_fifo and not delay and not pend0 and not pend1:
            idle += 1
            if not shut and in_stream.eos:
                maybe_close()
                shut = out0.eos
            return False
        moved = False
        if delay and delay[0][0] <= cycle:
            while delay and delay[0][0] <= cycle:
                routed = delay.popleft()[1]
                if routed[0]:
                    pend0.extend(routed[0])
                if routed[1]:
                    pend1.extend(routed[1])
            moved = True
        consumed = False
        if (in_fifo and len(pend0) + LANES <= spill0
                and len(pend1) + LANES <= spill1):
            vector = in_fifo.popleft()
            delay_append((cycle + latency, split(vector)))
            consumed = True
            moved = True
        for pending, fifo, cap, counts in specs:
            if pending:
                if fifo is None:
                    pending.clear()
                    moved = True
                elif len(pending) >= LANES or not consumed:
                    if len(fifo) < cap:
                        vector = pending[:LANES]
                        del pending[:LANES]
                        fifo.append(vector)
                        nv = len(vector)
                        counts[0] += 1
                        counts[1] += nv
                        vout += 1
                        rout += nv
                        moved = True
        if moved:
            busy += 1
        elif in_fifo:
            stall += 1
        else:
            idle += 1
        if not shut and in_stream.eos:
            maybe_close()
            shut = out0.eos
        return moved

    def settle():
        trow[0] += busy
        trow[1] += stall
        trow[2] += idle
        trow[3] += vout
        trow[4] += rout
        for srow, counts in settle_streams:
            srow[0] += counts[0]
            srow[1] += counts[1]

    return kern, begin, settle


def _filter_drop_kernel(tile, trow, stream_row):
    """``filter_kernel`` specialized for an unattached fail port.

    Exactness: the generic path builds the failed list, extends the fail
    packer's pending at retire, and immediately clears it (fail stream
    None) — the cycle is already marked moved by the retire itself, so
    never materializing the failed records changes no counter and no
    stream.  Residual delay entries are converted at the window boundary
    like the scratchpad kernels' request tuples: ``begin`` unwraps the
    object model's ``(ready, (passed, failed))`` pairs (dropping failed
    records the object model would also have discarded, at retire
    instead of at flush), ``settle`` rewraps with an empty failed side.
    """
    in_stream = tile.inputs[0]
    in_fifo = in_stream._fifo
    if isinstance(tile.predicate, Expr):
        keep = tile.predicate.compile_filter()
    else:
        predicate = tile._pred

        def keep(vector):
            return [rec for rec in vector if predicate(rec)]

    latency = tile.latency
    delay = tile._delay
    delay_append = delay.append
    p0 = tile._packers[0]
    pend0 = p0.pending
    pend0_extend = pend0.extend
    spill0 = p0.spill_limit
    out = p0.stream
    out_fifo = out._fifo
    out_cap = out.capacity
    srow = stream_row(out)
    maybe_close = tile.maybe_close
    shut = False                # out is attached; see map_kernel
    busy = stall = idle = vout = rout = 0
    pv = pr = 0

    def begin():
        nonlocal busy, stall, idle, vout, rout, pv, pr, shut
        busy = stall = idle = vout = rout = pv = pr = 0
        shut = out.eos
        if delay:
            for i in range(len(delay)):
                e = delay[i]
                if type(e[1]) is tuple:
                    delay[i] = (e[0], e[1][0])

    def kern(cycle):
        nonlocal busy, stall, idle, vout, rout, pv, pr, shut
        if not in_fifo and not delay and not pend0:
            idle += 1
            if not shut and in_stream.eos:
                maybe_close()
                shut = out.eos
            return False
        moved = False
        if delay and delay[0][0] <= cycle:
            while delay and delay[0][0] <= cycle:
                routed = delay.popleft()[1]
                if routed:
                    pend0_extend(routed)
            moved = True
        consumed = False
        if in_fifo and len(pend0) + LANES <= spill0:
            delay_append((cycle + latency, keep(in_fifo.popleft())))
            consumed = True
            moved = True
        if pend0:
            if len(pend0) >= LANES or not consumed:
                if len(out_fifo) < out_cap:
                    vector = pend0[:LANES]
                    del pend0[:LANES]
                    out_fifo.append(vector)
                    nv = len(vector)
                    pv += 1
                    pr += nv
                    vout += 1
                    rout += nv
                    moved = True
        if moved:
            busy += 1
        elif in_fifo:
            stall += 1
        else:
            idle += 1
        if not shut and in_stream.eos:
            maybe_close()
            shut = out.eos
        return moved

    def settle():
        if delay:
            for i in range(len(delay)):
                e = delay[i]
                if type(e[1]) is not tuple:
                    delay[i] = (e[0], (e[1], []))
        trow[0] += busy
        trow[1] += stall
        trow[2] += idle
        trow[3] += vout
        trow[4] += rout
        srow[0] += pv
        srow[1] += pr

    return kern, begin, settle


def merge_kernel(tile, trow, stream_row):
    """Fused ``MergeTile.tick``: priority-ordered gather into one vector."""
    in_streams = list(tile.inputs)
    in0 = in_streams[0]
    fifos = [s._fifo for s in in_streams]
    n_in = len(fifos)
    latency = tile.latency
    delay = tile._delay
    delay_append = delay.append
    packer = tile._packers[0]
    pending = packer.pending
    spill = packer.spill_limit
    out = packer.stream
    out_fifo = out._fifo if out is not None else None
    out_cap = out.capacity if out is not None else 0
    srow = stream_row(out) if out is not None else None
    maybe_close = tile.maybe_close
    out0 = tile.outputs[0] if tile.outputs else None
    shut = out0 is None
    busy = stall = idle = vout = rout = 0
    pv = pr = 0

    def begin():
        nonlocal busy, stall, idle, vout, rout, pv, pr, shut
        busy = stall = idle = vout = rout = pv = pr = 0
        shut = out0 is None or out0.eos

    def kern(cycle):
        nonlocal busy, stall, idle, vout, rout, pv, pr, shut
        if not delay and not pending:
            for fifo in fifos:
                if fifo:
                    break
            else:
                idle += 1
                if not shut and in0.eos:
                    maybe_close()
                    shut = out0.eos
                return False
        moved = False
        if delay and delay[0][0] <= cycle:
            while delay and delay[0][0] <= cycle:
                recs = delay.popleft()[1][0]
                if recs:
                    pending.extend(recs)
            moved = True
        consumed = False
        if len(pending) + LANES <= spill:
            taken = []
            for k in range(n_in):       # priority order
                if len(taken) >= LANES:
                    break
                fifo = fifos[k]
                if fifo:
                    taken.extend(fifo.popleft())
            if taken:
                delay_append((cycle + latency, (taken,)))
                consumed = True
                moved = True
        if pending:
            if out is None:
                pending.clear()
                moved = True
            elif len(pending) >= LANES or not consumed:
                if len(out_fifo) < out_cap:
                    vector = pending[:LANES]
                    del pending[:LANES]
                    out_fifo.append(vector)
                    nv = len(vector)
                    pv += 1
                    pr += nv
                    vout += 1
                    rout += nv
                    moved = True
        if moved:
            busy += 1
        else:
            for fifo in fifos:
                if fifo:
                    stall += 1
                    break
            else:
                idle += 1
        if not shut and in0.eos:
            maybe_close()
            shut = out0.eos
        return moved

    def settle():
        trow[0] += busy
        trow[1] += stall
        trow[2] += idle
        trow[3] += vout
        trow[4] += rout
        if srow is not None:
            srow[0] += pv
            srow[1] += pr

    return kern, begin, settle


def pipelined_kernel(tile, trow, stream_row, process, proc_begin=None,
                     extra_settle=None):
    """Generic fused ``_PipelinedTile.tick`` around a ``process`` closure.

    Used for the rarer pipelined classes (Copy/Stamp/Fork): the shared
    retire/flush/stats/EOS machinery is inlined here and the class's
    ``_process`` body is the one remaining inner call.
    """
    in_streams = list(tile.inputs)
    in0 = in_streams[0]
    in_fifos = [s._fifo for s in in_streams]
    delay = tile._delay
    pendings = [p.pending for p in tile._packers]
    n_ports = len(pendings)
    specs, settle_streams = _flush_specs(tile, stream_row)
    maybe_close = tile.maybe_close
    out0 = tile.outputs[0] if tile.outputs else None
    shut = out0 is None
    busy = stall = idle = vout = rout = 0

    def begin():
        nonlocal busy, stall, idle, vout, rout, shut
        busy = stall = idle = vout = rout = 0
        shut = out0 is None or out0.eos
        for __, counts in settle_streams:
            counts[0] = counts[1] = 0
        if proc_begin is not None:
            proc_begin()

    def kern(cycle):
        nonlocal busy, stall, idle, vout, rout, shut
        if not delay:
            # Drained-tile fast path: every process body only consumes
            # from its input fifos, so with no retirements, no waiting
            # input and nothing pending the tick is an idle no-op.
            for seq in in_fifos:
                if seq:
                    break
            else:
                for seq in pendings:
                    if seq:
                        break
                else:
                    idle += 1
                    if not shut and in0.eos:
                        maybe_close()
                        shut = out0.eos
                    return False
        moved = False
        if delay and delay[0][0] <= cycle:
            while delay and delay[0][0] <= cycle:
                routed = delay.popleft()[1]
                for port in range(n_ports):
                    recs = routed[port]
                    if recs:
                        pendings[port].extend(recs)
            moved = True
        consumed = process(cycle)
        if consumed:
            moved = True
        for pending, fifo, cap, counts in specs:
            if pending:
                if fifo is None:
                    pending.clear()
                    moved = True
                elif len(pending) >= LANES or not consumed:
                    if len(fifo) < cap:
                        vector = pending[:LANES]
                        del pending[:LANES]
                        fifo.append(vector)
                        nv = len(vector)
                        counts[0] += 1
                        counts[1] += nv
                        vout += 1
                        rout += nv
                        moved = True
        if moved:
            busy += 1
        else:
            for fifo in in_fifos:
                if fifo:
                    stall += 1
                    break
            else:
                idle += 1
        if not shut and in0.eos:
            maybe_close()
            shut = out0.eos
        return moved

    def settle():
        trow[0] += busy
        trow[1] += stall
        trow[2] += idle
        trow[3] += vout
        trow[4] += rout
        for srow, counts in settle_streams:
            srow[0] += counts[0]
            srow[1] += counts[1]
        if extra_settle is not None:
            extra_settle()

    return kern, begin, settle


def copy_process(tile):
    """``CopyTile._process``: duplicate one vector to both ports."""
    in_fifo = tile.inputs[0]._fifo
    p0, p1 = tile._packers
    latency = tile.latency
    delay_append = tile._delay.append

    def process(cycle):
        if (not in_fifo or len(p0.pending) + LANES > p0.spill_limit
                or len(p1.pending) + LANES > p1.spill_limit):
            return False
        vector = in_fifo.popleft()
        delay_append((cycle + latency, (list(vector), list(vector))))
        return True

    return process, None, None


def stamp_process(tile):
    """``StampTile._process``: append the running counter to each record."""
    in_fifo = tile.inputs[0]._fifo
    packer = tile._packers[0]
    pending = packer.pending
    spill = packer.spill_limit
    latency = tile.latency
    delay_append = tile._delay.append
    counter = 0

    def proc_begin():
        nonlocal counter
        counter = tile.counter

    def process(cycle):
        nonlocal counter
        if not in_fifo or len(pending) + LANES > spill:
            return False
        vector = in_fifo.popleft()
        out = []
        for rec in vector:
            out.append(rec + (counter,))
            counter += 1
        delay_append((cycle + latency, (out,)))
        return True

    def extra_settle():
        tile.counter = counter

    return process, proc_begin, extra_settle


def fork_process(tile):
    """``ForkTile._process``: expand each record via ``fn``."""
    in_fifo = tile.inputs[0]._fifo
    packer = tile._packers[0]
    pending = packer.pending
    spill = packer.spill_limit
    fn = tile._fn
    latency = tile.latency
    delay_append = tile._delay.append
    headroom = 4 * LANES                # ForkTile._can_accept

    def process(cycle):
        if not in_fifo or len(pending) + headroom > spill:
            return False
        vector = in_fifo.popleft()
        out = []
        for rec in vector:
            out.extend(fn(rec))
        delay_append((cycle + latency, (out,)))
        return True

    return process, None, None


def spad_read_kernel(tile, trow, sprow, stream_row):
    """Fused plain-read ``ScratchpadTile.tick``.

    Retire, enqueue, and the ``_plain_read`` fused allocator round
    (rotating lane priority, first live request with a free bank wins,
    losers are conflicts, rotor advances every round) in one closure.
    The rotor is a deferred scalar.  Requests live as plain
    ``(bank_bit, index, record)`` tuples while the window runs — a tuple
    literal costs a fraction of a ``Request`` construction and most
    requests are born and granted inside the same window — and
    ``begin``/``settle`` convert residual slot entries between the two
    representations so the queues always hold real ``Request`` objects
    whenever per-cycle code can see them.  The bank is stored pre-shifted
    (``1 << bank``) and each lane keeps an OR-mask of its queued bank
    bits: a lane whose whole mask is covered by the round's taken mask
    is fully blocked, so its conflicts are counted in one int test
    instead of a per-entry scan — the dominant case in a conflict-heavy
    backlog.  Valid only for Aurochs invalidate-on-grant queues
    (``_plain_read`` guarantees it), where the ``granted`` flag is never
    set.

    Expr fusion (see module docstring): an Expr ``addr`` enqueues a
    whole vector through one ``compile_requests`` call; an Expr
    ``combine`` defers responses into one batched delay entry per cycle.
    """
    port = tile.ports[0]
    in_stream = port.input
    in_fifo = in_stream._fifo
    cfg = port.config
    addr = cfg.addr_fn
    combine = cfg.combine_fn
    data = cfg.region._data
    base = cfg.region.base_entry
    fused = isinstance(cfg.combine, Expr)
    comb_batch = (cfg.combine.compile_batch(arity=2, skip_none=True)
                  if fused else None)
    takes = []
    takes_append = takes.append
    lane_slots = [q.slots for q in port.queues]
    depth = port.queues[0].depth
    enqueue = (cfg.addr.compile_enqueue(base, BANKS, depth)
               if isinstance(cfg.addr, Expr) else None)
    n_lanes = len(lane_slots)
    # Scan order per rotor value, precomputed as lane indices (the scan
    # needs the index to reach both the slot list and its bank mask).
    orders = [[(r + o) % n_lanes for o in range(n_lanes)]
              for r in range(n_lanes)]
    #: Per-lane OR of queued bank bits; 0 iff the lane is empty.
    masks = [0] * n_lanes
    alloc = tile._alloc
    rotor = 0
    latency = tile.latency
    delay = tile._delay
    delay_append = delay.append
    packer = port.packer
    pending = packer.pending
    pend_append = pending.append
    pend_extend = pending.extend
    out = packer.stream
    out_fifo = out._fifo
    out_cap = out.capacity
    srow = stream_row(out)
    maybe_close = tile.maybe_close
    shut = False                # out is attached; see map_kernel
    busy = idle = vout = rout = 0
    pv = pr = 0
    req_c = grant_c = consid_c = qfull_c = active_c = 0
    queued = 0

    def begin():
        nonlocal rotor, busy, idle, vout, rout, pv, pr, queued, shut
        nonlocal req_c, grant_c, consid_c, qfull_c, active_c
        rotor = alloc._rotor
        shut = out.eos
        queued = 0
        for li in range(n_lanes):
            slots = lane_slots[li]
            queued += len(slots)
            m = 0
            for i in range(len(slots)):
                req = slots[i]
                if type(req) is not tuple:
                    req = slots[i] = (1 << req.bank, req.index,
                                      req.record)
                m |= req[0]
            masks[li] = m
        del takes[:]
        busy = idle = vout = rout = pv = pr = 0
        req_c = grant_c = consid_c = qfull_c = active_c = 0

    def kern(cycle):
        nonlocal rotor, busy, idle, vout, rout, pv, pr, queued, shut
        nonlocal req_c, grant_c, consid_c, qfull_c, active_c
        if (not queued and not in_fifo and not pending
                and (not delay or delay[0][0] > cycle)):
            # Drained-tile fast path: the real tick would only advance
            # the allocator rotor (it spins every round, even grant-free
            # ones) and bump the idle counter.
            rotor = rotor + 1 if rotor + 1 < n_lanes else 0
            idle += 1
            if not shut and in_stream.eos:
                maybe_close()
                shut = out.eos
            return False
        moved = False
        if delay and delay[0][0] <= cycle:
            while delay and delay[0][0] <= cycle:
                e = delay.popleft()
                if e[1]:                # batched (Expr combine) entry
                    pend_extend(e[2])
                else:
                    pend_append(e[2])
            moved = True
        if in_fifo:                     # _enqueue, one port
            vector = in_fifo[0]
            if enqueue is not None:
                # Compiled room scan + address eval + lane striping +
                # mask update in one call; False = some lane at depth.
                if enqueue(vector, lane_slots, masks):
                    in_fifo.popleft()
                    nv = len(vector)
                    req_c += nv
                    queued += nv
                    moved = True
                else:
                    qfull_c += 1
            else:
                nv = len(vector)
                room = True
                for slots in lane_slots[:nv]:
                    if len(slots) >= depth:
                        room = False
                        break
                if room:
                    in_fifo.popleft()
                    li = 0
                    for record in vector:
                        index = addr(record)
                        bit = 1 << ((base + index) % BANKS)
                        lane_slots[li].append((bit, index, record))
                        masks[li] |= bit
                        li += 1
                    req_c += nv
                    queued += nv
                    moved = True
                else:
                    qfull_c += 1
        grants_n = 0
        if queued:
            # Conflict accounting is derived, not accumulated: the scan
            # visits every non-empty lane and bids its whole queue, so
            # the round's considered bids equal ``queued``, and every
            # considered bid either wins a grant or conflicts — settle
            # recovers conflicts as ``considered - grants``.  That
            # leaves the per-lane loop with only the mask tests.  Every
            # closure variable the loop touches repeatedly is aliased to
            # a local first (LOAD_FAST vs LOAD_DEREF).
            consid_c += queued
            l_masks = masks
            l_slots_all = lane_slots
            l_data = data
            l_takes = takes_append
            order = orders[rotor]       # rotor advances every round
            rotor = rotor + 1 if rotor + 1 < n_lanes else 0
            taken = 0
            ready = cycle + latency
            for li in order:
                mask = l_masks[li]
                if not mask or not mask & ~taken:
                    # Empty lane, or every queued bank already granted
                    # this round (whole lane conflicts).  The mask may
                    # hold stale bits (grants leave their bit set),
                    # which only makes the test conservative: a superset
                    # covered by ``taken`` still proves the true bank
                    # set is covered.
                    continue
                # The mask says a grant may exist: first entry with a
                # free bank wins.
                slots = l_slots_all[li]
                request = slots[0]
                bit = request[0]
                if not taken & bit:
                    del slots[0]
                    if not slots:
                        l_masks[li] = 0     # drained: exact for free
                else:
                    for i in range(1, len(slots)):
                        request = slots[i]
                        bit = request[0]
                        if not taken & bit:
                            del slots[i]
                            break
                    else:
                        # Stale-mask false positive — no live entry had
                        # a free bank.  Refresh to the exact mask so the
                        # following rounds fast-path this lane again.
                        m = 0
                        for e in slots:
                            m |= e[0]
                        l_masks[li] = m
                        continue
                taken |= bit
                grants_n += 1
                if fused:
                    l_takes((request[2], l_data[request[1]]))
                else:
                    response = combine(request[2], l_data[request[1]])
                    if response is not None:
                        delay_append((ready, 0, response))
        else:
            rotor = rotor + 1 if rotor + 1 < n_lanes else 0
        if grants_n:
            queued -= grants_n
            grant_c += grants_n
            active_c += 1
            moved = True
            if takes:
                # One batched combine call for the cycle's grants, in
                # grant order; retire expands the entry in that order.
                responses = comb_batch(takes)
                del takes[:]
                if responses:
                    delay_append((ready, 1, responses))
        if pending:
            if len(pending) >= LANES or not grants_n:
                if len(out_fifo) < out_cap:
                    vector = pending[:LANES]
                    del pending[:LANES]
                    out_fifo.append(vector)
                    nv = len(vector)
                    pv += 1
                    pr += nv
                    vout += 1
                    rout += nv
                    moved = True
        if moved:
            busy += 1
        else:
            idle += 1
        if not shut and in_stream.eos:
            maybe_close()
            shut = out.eos
        return moved

    def settle():
        alloc._rotor = rotor
        tile._last_rmw = ()             # every plain-read round clears it
        for slots in lane_slots:
            for i in range(len(slots)):
                req = slots[i]
                if type(req) is tuple:
                    slots[i] = Request(req[0].bit_length() - 1,
                                       req[1], req[2])
        if fused and delay:
            _expand_batched(delay)
        trow[0] += busy
        trow[2] += idle
        trow[3] += vout
        trow[4] += rout
        sprow[0] += req_c
        sprow[1] += grant_c
        sprow[2] += consid_c - grant_c    # every losing bid conflicts
        sprow[3] += consid_c
        sprow[4] += qfull_c
        sprow[5] += active_c
        srow[0] += pv
        srow[1] += pr

    return kern, begin, settle


def _expand_batched(delay) -> None:
    """Rewrite residual batched delay entries ``(ready, 1, [r...])`` into
    the object model's per-record singles ``(ready, 0, r)``, in order."""
    for e in delay:
        if e[1]:
            break
    else:
        return
    expanded = []
    for e in delay:
        if e[1]:
            ready = e[0]
            for r in e[2]:
                expanded.append((ready, 0, r))
        else:
            expanded.append(e)
    delay.clear()
    delay.extend(expanded)


def dram_read_kernel(tile, trow, sprow, drow, stream_row):
    """Fused single-read-port ``DramTile.tick``.

    The scratchpad read kernel (same tuple-represented requests, same
    precomputed rotor orders) plus, per grant in grant order: read
    bytes, the dense/sparse classification against the running
    ``_last_index``, and the busy-cycle high-water assignment — exactly
    ``DramTile._execute`` folded into the allocator scan.  Folding
    execution into the scan is equivalent because the scan visits each
    lane once and a grant never changes another lane's slots.  The
    tuple representation is safe because ``DramTile.__init__`` hardcodes
    Aurochs invalidate-on-grant queues (``in_order_dequeue=False``), and
    the dispatch gate requires the exact class.

    Expr fusion as in :func:`spad_read_kernel`; the per-grant DRAM
    bookkeeping (read bytes, dense/sparse, busy high-water) stays inline
    either way since it feeds off the granted index, not the combine.
    """
    port = tile.ports[0]
    in_stream = port.input
    in_fifo = in_stream._fifo
    cfg = port.config
    addr = cfg.addr_fn
    combine = cfg.combine_fn
    data = cfg.region._data
    base = cfg.region.base_entry
    fused = isinstance(cfg.combine, Expr)
    comb_batch = (cfg.combine.compile_batch(arity=2, skip_none=True)
                  if fused else None)
    takes = []
    takes_append = takes.append
    nbytes = cfg.region.words_per_entry * 4
    lane_slots = [q.slots for q in port.queues]
    depth = port.queues[0].depth
    enqueue = (cfg.addr.compile_enqueue(base, BANKS, depth)
               if isinstance(cfg.addr, Expr) else None)
    n_lanes = len(lane_slots)
    orders = [[(r + o) % n_lanes for o in range(n_lanes)]
              for r in range(n_lanes)]
    masks = [0] * n_lanes
    alloc = tile._alloc
    rotor = 0
    latency = tile.latency
    delay = tile._delay
    delay_append = delay.append
    packer = port.packer
    pending = packer.pending
    pend_append = pending.append
    pend_extend = pending.extend
    out = packer.stream
    out_fifo = out._fifo
    out_cap = out.capacity
    srow = stream_row(out)
    maybe_close = tile.maybe_close
    shut = False                # out is attached; see map_kernel
    last_index = None
    last_busy = -1
    busy = idle = vout = rout = 0
    pv = pr = 0
    req_c = grant_c = consid_c = qfull_c = active_c = 0
    read_b = dense_c = sparse_c = 0
    queued = 0

    def begin():
        nonlocal rotor, last_index, last_busy, busy, idle, vout, rout, pv, pr
        nonlocal req_c, grant_c, consid_c, qfull_c, active_c
        nonlocal read_b, dense_c, sparse_c, queued, shut
        rotor = alloc._rotor
        shut = out.eos
        queued = 0
        for li in range(n_lanes):
            slots = lane_slots[li]
            queued += len(slots)
            m = 0
            for i in range(len(slots)):
                req = slots[i]
                if type(req) is not tuple:
                    req = slots[i] = (1 << req.bank, req.index,
                                      req.record)
                m |= req[0]
            masks[li] = m
        last_index = tile._last_index[0]
        last_busy = -1
        del takes[:]
        busy = idle = vout = rout = pv = pr = 0
        req_c = grant_c = consid_c = qfull_c = active_c = 0
        read_b = dense_c = sparse_c = 0

    def kern(cycle):
        nonlocal rotor, busy, idle, vout, rout, pv, pr, queued, shut
        nonlocal req_c, grant_c, consid_c, qfull_c, active_c
        nonlocal last_index, last_busy, read_b, dense_c, sparse_c
        if (not queued and not in_fifo and not pending
                and (not delay or delay[0][0] > cycle)):
            rotor = rotor + 1 if rotor + 1 < n_lanes else 0
            idle += 1
            if not shut and in_stream.eos:
                maybe_close()
                shut = out.eos
            return False
        moved = False
        if delay and delay[0][0] <= cycle:
            while delay and delay[0][0] <= cycle:
                e = delay.popleft()
                if e[1]:                # batched (Expr combine) entry
                    pend_extend(e[2])
                else:
                    pend_append(e[2])
            moved = True
        if in_fifo:
            vector = in_fifo[0]
            if enqueue is not None:
                if enqueue(vector, lane_slots, masks):
                    in_fifo.popleft()
                    nv = len(vector)
                    req_c += nv
                    queued += nv
                    moved = True
                else:
                    qfull_c += 1
            else:
                nv = len(vector)
                room = True
                for slots in lane_slots[:nv]:
                    if len(slots) >= depth:
                        room = False
                        break
                if room:
                    in_fifo.popleft()
                    li = 0
                    for record in vector:
                        index = addr(record)
                        bit = 1 << ((base + index) % BANKS)
                        lane_slots[li].append((bit, index, record))
                        masks[li] |= bit
                        li += 1
                    req_c += nv
                    queued += nv
                    moved = True
                else:
                    qfull_c += 1
        grants_n = 0
        if queued:
            # Derived conflict accounting and local-alias discipline as
            # in spad_read_kernel's scan: considered bids for the round
            # are ``queued``, conflicts fall out at settle.
            consid_c += queued
            l_masks = masks
            l_slots_all = lane_slots
            l_data = data
            l_takes = takes_append
            l_last = last_index
            l_dense = l_sparse = 0
            order = orders[rotor]
            rotor = rotor + 1 if rotor + 1 < n_lanes else 0
            taken = 0
            ready = cycle + latency
            for li in order:
                mask = l_masks[li]
                if not mask or not mask & ~taken:
                    # Empty lane, or fully blocked (one conservative
                    # superset-mask test, as in spad_read_kernel).
                    continue
                slots = l_slots_all[li]
                request = slots[0]
                bit = request[0]
                if not taken & bit:
                    del slots[0]
                    if not slots:
                        l_masks[li] = 0     # drained: exact for free
                else:
                    for i in range(1, len(slots)):
                        request = slots[i]
                        bit = request[0]
                        if not taken & bit:
                            del slots[i]
                            break
                    else:
                        # Stale-mask false positive: refresh so later
                        # rounds fast-path this lane again.
                        m = 0
                        for e in slots:
                            m |= e[0]
                        l_masks[li] = m
                        continue
                taken |= bit
                grants_n += 1
                index = request[1]
                if (l_last is not None
                        and -1 <= index - l_last <= 1):
                    l_dense += 1
                else:
                    l_sparse += 1
                l_last = index
                if fused:
                    l_takes((request[2], l_data[index]))
                else:
                    response = combine(request[2], l_data[index])
                    if response is not None:
                        delay_append((ready, 0, response))
            dense_c += l_dense
            sparse_c += l_sparse
            last_index = l_last
            read_b += nbytes * grants_n
        else:
            rotor = rotor + 1 if rotor + 1 < n_lanes else 0
        if grants_n:
            queued -= grants_n
            grant_c += grants_n
            active_c += 1
            last_busy = cycle
            moved = True
            if takes:
                responses = comb_batch(takes)
                del takes[:]
                if responses:
                    delay_append((ready, 1, responses))
        if pending:
            if len(pending) >= LANES or not grants_n:
                if len(out_fifo) < out_cap:
                    vector = pending[:LANES]
                    del pending[:LANES]
                    out_fifo.append(vector)
                    nv = len(vector)
                    pv += 1
                    pr += nv
                    vout += 1
                    rout += nv
                    moved = True
        if moved:
            busy += 1
        else:
            idle += 1
        if not shut and in_stream.eos:
            maybe_close()
            shut = out.eos
        return moved

    def settle():
        alloc._rotor = rotor
        tile._last_rmw = ()
        for slots in lane_slots:
            for i in range(len(slots)):
                req = slots[i]
                if type(req) is tuple:
                    slots[i] = Request(req[0].bit_length() - 1,
                                       req[1], req[2])
        if fused and delay:
            _expand_batched(delay)
        tile._last_index[0] = last_index
        if last_busy >= 0:
            tile.dram_stats.busy_cycles = last_busy
        trow[0] += busy
        trow[2] += idle
        trow[3] += vout
        trow[4] += rout
        sprow[0] += req_c
        sprow[1] += grant_c
        sprow[2] += consid_c - grant_c    # every losing bid conflicts
        sprow[3] += consid_c
        sprow[4] += qfull_c
        sprow[5] += active_c
        drow[0] += read_b
        drow[1] += dense_c
        drow[2] += sparse_c
        srow[0] += pv
        srow[1] += pr

    return kern, begin, settle


def sorted_merge_kernel(tile, trow, stream_row):
    """Fused ``SortedMergeTile.tick`` (lowering contract "sorted_merge").

    The first contract-dispatched kernel: any subclass declaring
    ``lowering_contract() == "sorted_merge"`` (customizing only the sort
    key) lowers here.  The comparator tree, head refills, one-sided
    drain, and the packer flush are restated statement for statement
    under the window's detached-hook preconditions; the head buffers and
    packer pending list stay live (mutated in place), so only counters
    are deferred.  The key callable is the tile's resolved scalar twin
    (``_key``), so an Expr key runs compiled without per-call dispatch.
    """
    in0, in1 = tile.inputs
    fifo0 = in0._fifo
    fifo1 = in1._fifo
    heads = tile._heads
    key = tile._key
    packer = tile._packer
    pending = packer.pending
    push = pending.append
    spill = packer.spill_limit
    out = packer.stream
    out_fifo = out._fifo if out is not None else None
    out_cap = out.capacity if out is not None else 0
    srow = stream_row(out) if out is not None else None
    maybe_close = tile.maybe_close
    out0 = tile.outputs[0] if tile.outputs else None
    shut = out0 is None
    busy = idle = vout = rout = 0
    pv = pr = 0

    def begin():
        nonlocal busy, idle, vout, rout, pv, pr, shut
        busy = idle = vout = rout = pv = pr = 0
        shut = out0 is None or out0.eos

    def kern(cycle):
        nonlocal busy, idle, vout, rout, pv, pr, shut
        a = heads[0]
        b = heads[1]
        if not a and not b and not fifo0 and not fifo1 and not pending:
            # Drained-tile fast path: refills no-op, the comparator
            # breaks immediately, and the flush sees nothing pending.
            idle += 1
            if not shut and in0.eos and in1.eos:
                maybe_close()
                shut = out0.eos
            return False
        moved = False
        emitted = 0
        while emitted < LANES and len(pending) + 1 <= spill:
            if not a and fifo0:         # _refill(0), hooks detached
                a = heads[0] = list(fifo0.popleft())
            if not b and fifo1:         # _refill(1)
                b = heads[1] = list(fifo1.popleft())
            if a and b:
                if key(a[0]) <= key(b[0]):
                    push(a.pop(0))
                else:
                    push(b.pop(0))
            elif a and in1.eos and not fifo1:   # b done: drain a
                push(a.pop(0))
            elif b and in0.eos and not fifo0:   # a done: drain b
                push(b.pop(0))
            else:
                # An input is merely stalled (open but empty): emitting
                # from the other side could violate ordering — wait.
                break
            emitted += 1
            moved = True
        # Packer.flush(stats, force_partial=emitted == 0), inlined.
        if pending:
            if out is None:
                pending.clear()
                moved = True
            elif len(pending) >= LANES or emitted == 0:
                if len(out_fifo) < out_cap:
                    vector = pending[:LANES]
                    del pending[:LANES]
                    out_fifo.append(vector)
                    nv = len(vector)
                    pv += 1
                    pr += nv
                    vout += 1
                    rout += nv
                    moved = True
        if moved:
            busy += 1
        else:
            idle += 1
        if not shut and in0.eos and in1.eos:
            # maybe_close() no-ops while any input is open; the guard
            # skips the call on the (overwhelmingly common) open cycles.
            maybe_close()
            shut = out0.eos
        return moved

    def settle():
        trow[0] += busy
        trow[2] += idle
        trow[3] += vout
        trow[4] += rout
        if srow is not None:
            srow[0] += pv
            srow[1] += pr

    return kern, begin, settle
