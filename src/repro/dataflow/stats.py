"""Execution statistics for tiles, scratchpads, and whole simulations.

The cycle engine's figures of merit mirror the paper's evaluation:

* **lane occupancy** — fraction of vector lanes carrying live records, the
  dataflow analogue of GPU warp execution efficiency (§III-A profiles a GPU
  hash join at 62%/46% efficiency; Aurochs keeps lanes full via compaction);
* **bank conflicts** — scratchpad requests deferred because another lane won
  the bank that cycle (§III-B's reordering pipeline exists to minimize these);
* **DRAM traffic** — bytes moved, split dense/sparse, against the bandwidth
  ceiling that bounds Fig. 12's throughput scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.dataflow.record import LANES


@dataclass(slots=True)
class TileStats:
    """Per-tile activity counters accumulated by the cycle engine."""

    name: str = ""
    busy_cycles: int = 0          # cycles in which the tile moved any data
    stall_cycles: int = 0         # cycles blocked on downstream backpressure
    idle_cycles: int = 0          # cycles with no input available
    vectors_out: int = 0
    records_out: int = 0

    def record_output(self, n_records: int) -> None:
        """Account one output vector carrying ``n_records`` live lanes."""
        self.vectors_out += 1
        self.records_out += n_records

    @property
    def lane_occupancy(self) -> float:
        """Mean fraction of lanes occupied across emitted vectors."""
        if self.vectors_out == 0:
            return 0.0
        return self.records_out / (self.vectors_out * LANES)

    @property
    def utilization(self) -> float:
        """Busy fraction of total simulated cycles."""
        total = self.busy_cycles + self.stall_cycles + self.idle_cycles
        return self.busy_cycles / total if total else 0.0


@dataclass(slots=True)
class ScratchpadStats:
    """Counters specific to the sparse reordering pipeline (§III-B)."""

    requests: int = 0             # requests accepted into issue queues
    grants: int = 0               # requests granted bank access
    bank_conflicts: int = 0       # bids rejected due to a busy bank
    queue_full_stalls: int = 0    # vectors refused because a lane queue was full
    rmw_forwards: int = 0         # back-to-back RMW forwarding events
    active_cycles: int = 0        # cycles with >=1 grant
    considered_bids: int = 0      # total requests examined by the allocator

    @property
    def conflict_rate(self) -> float:
        """Fraction of allocator bids that lost to a bank conflict."""
        total = self.grants + self.bank_conflicts
        return self.bank_conflicts / total if total else 0.0

    @property
    def bank_throughput(self) -> float:
        """Mean grants per active cycle (ideal = min(LANES, banks))."""
        return self.grants / self.active_cycles if self.active_cycles else 0.0


@dataclass(slots=True)
class DramStats:
    """DRAM channel activity."""

    read_bytes: int = 0
    write_bytes: int = 0
    dense_bursts: int = 0         # requests that hit an open row / streamed
    sparse_bursts: int = 0        # random requests paying full burst cost
    busy_cycles: int = 0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes


@dataclass(slots=True)
class SimStats:
    """Whole-simulation roll-up returned by the cycle engine."""

    cycles: int = 0
    tiles: Dict[str, TileStats] = field(default_factory=dict)
    scratchpads: Dict[str, ScratchpadStats] = field(default_factory=dict)
    dram: DramStats = field(default_factory=DramStats)

    def tile(self, name: str) -> TileStats:
        return self.tiles.setdefault(name, TileStats(name))

    def mean_lane_occupancy(self) -> float:
        """Record-weighted mean lane occupancy across compute tiles."""
        vectors = sum(t.vectors_out for t in self.tiles.values())
        records = sum(t.records_out for t in self.tiles.values())
        return records / (vectors * LANES) if vectors else 0.0

    def total_bank_conflicts(self) -> int:
        return sum(s.bank_conflicts for s in self.scratchpads.values())

    def summary(self) -> str:
        """Human-readable one-screen summary for examples and debugging."""
        lines = [f"cycles: {self.cycles}"]
        for name, t in sorted(self.tiles.items()):
            lines.append(
                f"  tile {name}: util={t.utilization:.2f} "
                f"occupancy={t.lane_occupancy:.2f} records={t.records_out}"
            )
        for name, s in sorted(self.scratchpads.items()):
            lines.append(
                f"  spad {name}: grants={s.grants} conflicts={s.bank_conflicts} "
                f"conflict_rate={s.conflict_rate:.2f}"
            )
        if self.dram.total_bytes:
            lines.append(
                f"  dram: {self.dram.total_bytes} B "
                f"(dense={self.dram.dense_bursts}, sparse={self.dram.sparse_bursts})"
            )
        return "\n".join(lines)
