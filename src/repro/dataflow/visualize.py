"""Graph visualization: render tile graphs as Graphviz DOT or ASCII.

Debugging a mis-wired dataflow kernel from cycle traces alone is painful;
these renderers make the structure visible.  DOT output pastes into any
Graphviz viewer; the ASCII adjacency listing needs nothing at all.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dataflow.graph import Graph
from repro.dataflow.tile import SinkTile, SourceTile, Tile

_SHAPES = {
    "SourceTile": "invhouse",
    "SinkTile": "house",
    "MergeTile": "invtriangle",
    "FilterTile": "diamond",
    "ForkTile": "trapezium",
    "ScratchpadTile": "box3d",
    "DramTile": "cylinder",
    "SpillTile": "cylinder",
}


def to_dot(graph: Graph) -> str:
    """Render ``graph`` as Graphviz DOT."""
    lines = [f'digraph "{graph.name}" {{', "  rankdir=LR;"]
    for tile in graph.tiles:
        kind = type(tile).__name__
        shape = _SHAPES.get(kind, "box")
        lines.append(
            f'  "{tile.name}" [label="{tile.name}\\n{kind}" '
            f'shape={shape}];')
    for stream in graph.streams:
        attrs = ""
        # Loop-back edges (into a merge's priority slot) render dashed.
        consumer = stream.consumer
        if consumer is not None and consumer.inputs \
                and consumer.inputs[0] is stream \
                and type(consumer).__name__ == "MergeTile" \
                and len(consumer.inputs) > 1:
            attrs = " [style=dashed constraint=false]"
        lines.append(
            f'  "{stream.producer.name}" -> "{consumer.name}"{attrs};')
    lines.append("}")
    return "\n".join(lines)


def to_ascii(graph: Graph) -> str:
    """Render ``graph`` as an indented adjacency listing."""
    out_edges: Dict[str, List[str]] = {}
    for stream in graph.streams:
        out_edges.setdefault(stream.producer.name, []).append(
            stream.consumer.name)
    lines = [f"graph {graph.name!r}:"]
    for tile in graph.tiles:
        kind = type(tile).__name__
        targets = out_edges.get(tile.name, [])
        arrow = " -> " + ", ".join(targets) if targets else ""
        marker = ("(src) " if isinstance(tile, SourceTile)
                  else "(sink) " if isinstance(tile, SinkTile) else "")
        lines.append(f"  {marker}{tile.name} [{kind}]{arrow}")
    return "\n".join(lines)
