"""Streams: ready-valid channels between tiles.

Tiles in Gorgon/Aurochs are loosely timed through a streaming ready-valid
interface with skid buffering (§III-A).  A :class:`Stream` models one such
channel: a small FIFO of record *vectors* (lists of up to ``LANES`` records)
plus an end-of-stream (EOS) token.

Stream lengths are data-dependent and unknown until runtime; streams are
self-timed, so EOS is an explicit token pushed after the last vector.  For
cyclic graphs the engine additionally uses quiescence detection (see
``engine.py``) because the paper's cyclic-drain token protocol reduces to
"the loop has emptied" at the level of abstraction we simulate.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.dataflow.record import Record

#: Default stream buffer depth — one in-flight vector plus one skid slot.
DEFAULT_CAPACITY = 2

Vector = List[Record]


def _mix(acc: int, vector: Vector) -> int:
    """Order-sensitive 32-bit checksum mix of one vector into ``acc``.

    Within a single process ``hash`` over record tuples is deterministic,
    which is all an end-to-end sent-vs-received comparison needs.
    """
    for record in vector:
        acc = (acc * 1000003 + hash(record)) & 0xFFFFFFFF
    return acc


class Stream:
    """A bounded FIFO of record vectors with an end-of-stream token.

    The producer calls :meth:`can_push` / :meth:`push` / :meth:`close`;
    the consumer calls :meth:`can_pop` / :meth:`pop` and checks
    :meth:`closed` to detect that no more data will ever arrive.

    Lowering contract (``repro.dataflow.vector``): inside a columnar
    window the fused kernels bypass these methods and operate on
    ``_fifo`` directly, deferring ``pushed_vectors``/``pushed_records``
    into working rows that window settlement folds back in.  The engine
    detaches ``sched`` for the window's duration (as burst windows do),
    and windows are vetoed whenever a ``_monitor`` or tracer is armed —
    so the bypass can never skip a checksum, fault hook, or wake.
    """

    __slots__ = ("name", "capacity", "_fifo", "eos", "pushed_vectors",
                 "pushed_records", "producer", "consumer", "_monitor",
                 "sched", "_tracer", "_mt", "sent_sum", "recv_sum")

    def __init__(self, name: str = "", capacity: int = DEFAULT_CAPACITY):
        self.name = name
        self.capacity = capacity
        self._fifo: deque = deque()
        self.eos = False          # producer has signalled end of stream
        self.pushed_vectors = 0
        self.pushed_records = 0
        self.producer = None      # set by Graph.connect
        self.consumer = None      # set by Graph.connect
        # Reliability hook: when a FaultInjector is armed on this stream it
        # sets itself as ``monitor``; push/pop then accumulate end-to-end
        # checksums and the monitor may corrupt or drop vectors in transit.
        self._monitor = None
        # Scheduling hook: the event-driven engine sets itself here and is
        # notified on push (wake the consumer), pop (freed backpressure
        # wakes the producer), and the EOS transition (wake the consumer).
        # The exhaustive engine leaves it None: one is-None test per op.
        self.sched = None
        # Observability hook: a Tracer armed on the graph sets itself here
        # and records push/pop/close events with the post-op buffer depth.
        self._tracer = None
        # Precomputed "monitor-or-tracer armed" flag: push/pop pay a single
        # truthiness test for both rare hooks; the ``monitor``/``tracer``
        # property setters keep it current on arm/disarm.
        self._mt = False
        self.sent_sum = 0
        self.recv_sum = 0

    # -- hook arm/disarm ---------------------------------------------------

    @property
    def monitor(self):
        return self._monitor

    @monitor.setter
    def monitor(self, value) -> None:
        self._monitor = value
        self._mt = value is not None or self._tracer is not None

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._tracer = value
        self._mt = value is not None or self._monitor is not None

    # -- producer side -----------------------------------------------------

    def can_push(self) -> bool:
        """True if there is buffer space for one more vector."""
        return len(self._fifo) < self.capacity

    def push(self, vector: Vector) -> None:
        """Enqueue ``vector``.  The caller must have checked :meth:`can_push`."""
        fifo = self._fifo
        assert len(fifo) < self.capacity, f"stream {self.name} overflow"
        assert not self.eos, f"push after EOS on stream {self.name}"
        self.pushed_vectors += 1
        self.pushed_records += len(vector)
        if self._mt:
            monitor = self._monitor
            if monitor is not None:
                # Checksum what the producer sent, *then* let the injector
                # corrupt or drop the vector in transit: a mismatch against
                # the consumer-side sum is how corruption/loss is detected.
                self.sent_sum = _mix(self.sent_sum, vector)
                vector = monitor.on_push(self, vector)
                if vector is None:      # vector lost in transit
                    return
            fifo.append(vector)
            if self._tracer is not None:
                # Records the *delivered* vector (an injector may have
                # dropped it above, in which case no push event is traced).
                self._tracer.stream_push(self, len(fifo), len(vector))
        else:
            fifo.append(vector)
        sched = self.sched
        if sched is not None:
            sched._stream_push(self)

    def push_n(self, vectors: List[Vector]) -> None:
        """Bulk push for burst execution: ``push`` once per vector.

        Identical side effects to the per-cycle pushes it replaces —
        per-item checksum mixes, monitor corruption/drop, tracer events and
        scheduler wakes are all applied in order — except that the
        per-vector capacity assert is skipped: the burst planner has proven
        the interleaved schedule never overflows (the consumer's matching
        burst drains the transient over-occupancy within the same window).
        """
        if self._mt:
            fifo = self._fifo
            for vector in vectors:
                self.pushed_vectors += 1
                self.pushed_records += len(vector)
                monitor = self._monitor
                if monitor is not None:
                    self.sent_sum = _mix(self.sent_sum, vector)
                    vector = monitor.on_push(self, vector)
                    if vector is None:      # vector lost in transit
                        continue
                fifo.append(vector)
                if self._tracer is not None:
                    self._tracer.stream_push(self, len(fifo), len(vector))
                sched = self.sched
                if sched is not None:
                    sched._stream_push(self)
            return
        n = len(vectors)
        self.pushed_vectors += n
        total = 0
        for vector in vectors:
            total += len(vector)
        self.pushed_records += total
        self._fifo.extend(vectors)
        sched = self.sched
        if sched is not None:
            for __ in range(n):
                sched._stream_push(self)

    def close(self) -> None:
        """Signal end of stream.  Idempotent."""
        if not self.eos:
            self.eos = True
            if self._tracer is not None:
                self._tracer.stream_close(self)
            if self.sched is not None:
                self.sched._stream_close(self)

    # -- consumer side -----------------------------------------------------

    def can_pop(self) -> bool:
        """True if a vector is waiting."""
        return bool(self._fifo)

    def peek(self) -> Optional[Vector]:
        """Return the head vector without removing it, or None if empty."""
        return self._fifo[0] if self._fifo else None

    def pop(self) -> Vector:
        """Dequeue and return the head vector."""
        vector = self._fifo.popleft()
        if self._mt:
            if self._monitor is not None:
                self.recv_sum = _mix(self.recv_sum, vector)
            if self._tracer is not None:
                self._tracer.stream_pop(self, len(self._fifo))
        sched = self.sched
        if sched is not None:
            sched._stream_pop(self)
        return vector

    def pop_n(self, n: int) -> List[Vector]:
        """Bulk pop for burst execution: ``pop`` exactly ``n`` times.

        Per-item receive checksums, tracer events and scheduler wakes are
        preserved; the hook-free case collapses to ``n`` plain deque pops.
        """
        if self._mt or self.sched is not None:
            return [self.pop() for __ in range(n)]
        popleft = self._fifo.popleft
        return [popleft() for __ in range(n)]

    # -- reliability -------------------------------------------------------

    def checksums_match(self) -> bool:
        """True when everything pushed has been popped intact (only
        meaningful once the stream has drained)."""
        return self.sent_sum == self.recv_sum

    def reset_checksums(self) -> None:
        self.sent_sum = 0
        self.recv_sum = 0

    def closed(self) -> bool:
        """True when EOS has been signalled and all buffered data consumed."""
        return self.eos and not self._fifo

    # -- engine introspection ------------------------------------------------

    def occupancy(self) -> int:
        """Number of buffered vectors (for quiescence detection)."""
        return len(self._fifo)

    def buffered_records(self) -> int:
        """Number of buffered records across all vectors."""
        return sum(len(v) for v in self._fifo)

    def __repr__(self) -> str:
        state = "closed" if self.closed() else ("eos" if self.eos else "open")
        return f"Stream({self.name!r}, {len(self._fifo)}/{self.capacity}, {state})"
