"""Streams: ready-valid channels between tiles.

Tiles in Gorgon/Aurochs are loosely timed through a streaming ready-valid
interface with skid buffering (§III-A).  A :class:`Stream` models one such
channel: a small FIFO of record *vectors* (lists of up to ``LANES`` records)
plus an end-of-stream (EOS) token.

Stream lengths are data-dependent and unknown until runtime; streams are
self-timed, so EOS is an explicit token pushed after the last vector.  For
cyclic graphs the engine additionally uses quiescence detection (see
``engine.py``) because the paper's cyclic-drain token protocol reduces to
"the loop has emptied" at the level of abstraction we simulate.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.dataflow.record import Record

#: Default stream buffer depth — one in-flight vector plus one skid slot.
DEFAULT_CAPACITY = 2

Vector = List[Record]


class Stream:
    """A bounded FIFO of record vectors with an end-of-stream token.

    The producer calls :meth:`can_push` / :meth:`push` / :meth:`close`;
    the consumer calls :meth:`can_pop` / :meth:`pop` and checks
    :meth:`closed` to detect that no more data will ever arrive.
    """

    __slots__ = ("name", "capacity", "_fifo", "eos", "pushed_vectors",
                 "pushed_records", "producer", "consumer")

    def __init__(self, name: str = "", capacity: int = DEFAULT_CAPACITY):
        self.name = name
        self.capacity = capacity
        self._fifo: deque = deque()
        self.eos = False          # producer has signalled end of stream
        self.pushed_vectors = 0
        self.pushed_records = 0
        self.producer = None      # set by Graph.connect
        self.consumer = None      # set by Graph.connect

    # -- producer side -----------------------------------------------------

    def can_push(self) -> bool:
        """True if there is buffer space for one more vector."""
        return len(self._fifo) < self.capacity

    def push(self, vector: Vector) -> None:
        """Enqueue ``vector``.  The caller must have checked :meth:`can_push`."""
        assert len(self._fifo) < self.capacity, f"stream {self.name} overflow"
        assert not self.eos, f"push after EOS on stream {self.name}"
        self._fifo.append(vector)
        self.pushed_vectors += 1
        self.pushed_records += len(vector)

    def close(self) -> None:
        """Signal end of stream.  Idempotent."""
        self.eos = True

    # -- consumer side -----------------------------------------------------

    def can_pop(self) -> bool:
        """True if a vector is waiting."""
        return bool(self._fifo)

    def peek(self) -> Optional[Vector]:
        """Return the head vector without removing it, or None if empty."""
        return self._fifo[0] if self._fifo else None

    def pop(self) -> Vector:
        """Dequeue and return the head vector."""
        return self._fifo.popleft()

    def closed(self) -> bool:
        """True when EOS has been signalled and all buffered data consumed."""
        return self.eos and not self._fifo

    # -- engine introspection ------------------------------------------------

    def occupancy(self) -> int:
        """Number of buffered vectors (for quiescence detection)."""
        return len(self._fifo)

    def buffered_records(self) -> int:
        """Number of buffered records across all vectors."""
        return sum(len(v) for v in self._fifo)

    def __repr__(self) -> str:
        state = "closed" if self.closed() else ("eos" if self.eos else "open")
        return f"Stream({self.name!r}, {len(self._fifo)}/{self.capacity}, {state})"
