"""Compute tiles: the threading primitives of §III-A.

The paper's threading model needs only four primitives, all native to a
database accelerator's record-processing hardware (fig. 5b):

* **filter** — split a record stream in two on a predicate; implements
  branches, and kills threads by dropping one side;
* **merge** — recombine two streams, with priority to one side to avoid
  deadlock on cyclic dataflow;
* **map** — mutate thread state (add/drop/transform fields), including
  atomic RMW scratchpad access (that variant lives in ``repro.memory``);
* **fork** — spawn a batch of threads from one thread (tree traversal).

Every compute tile compacts its output lanes via :class:`~repro.dataflow.tile.Packer`,
so divergence never leaves bubbles in downstream vectors.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List, Optional

from repro.dataflow.expr import scalar_of
from repro.dataflow.record import LANES, Record
from repro.dataflow.tile import Packer, Tile
from repro.dataflow.stream import Stream
from repro.observability.events import StallReason

#: Gorgon compute tiles pipeline computation across six stages (§II-B).
PIPELINE_DEPTH = 6


class _PipelinedTile(Tile):
    """Shared machinery: an input stage, a latency delay line, and packers."""

    def __init__(self, name: str, latency: int = PIPELINE_DEPTH,
                 n_outputs: int = 1):
        super().__init__(name)
        self.latency = max(1, latency)
        self._delay: deque = deque()  # (ready_cycle, per-output record lists)
        self._packers: List[Packer] = [Packer(None) for _ in range(n_outputs)]

    def attach_output(self, stream: Stream, port: int = 0) -> None:  # type: ignore[override]
        stream.producer = self
        self.outputs.append(stream)
        self._packers[port].stream = stream

    def drop_output(self, port: int) -> None:
        """Configure output ``port`` to discard records (thread kill)."""
        self._packers[port].stream = None

    # Subclasses implement: consume one input vector into per-output lists.
    def _process(self, cycle: int) -> bool:
        raise NotImplementedError

    def tick(self, cycle: int) -> bool:
        moved = False
        # Retire delay-line entries whose latency has elapsed.
        delay = self._delay
        if delay and delay[0][0] <= cycle:
            packers = self._packers
            popleft = delay.popleft
            while delay and delay[0][0] <= cycle:
                __, routed = popleft()
                port = 0
                for records in routed:
                    if records:
                        packers[port].pending.extend(records)
                    port += 1
            moved = True
        consumed = self._process(cycle)
        moved = consumed or moved
        # Starvation flush: no fresh input this cycle => forward partials.
        force_partial = not consumed
        stats = self.stats
        for packer in self._packers:
            if packer.pending and packer.flush(stats, force_partial):
                moved = True
        if moved:
            stats.busy_cycles += 1
        else:
            for s in self.inputs:
                if s._fifo:
                    stats.stall_cycles += 1
                    break
            else:
                stats.idle_cycles += 1
        inputs = self.inputs
        if not inputs or inputs[0].eos:
            # EOS can only propagate once input 0 has closed; skipping
            # maybe_close before that is exact (it would be a no-op).
            self.maybe_close()
        return moved

    def _has_room(self) -> bool:
        for p in self._packers:
            if len(p.pending) + LANES > p.spill_limit:
                return False
        return True

    def _can_accept(self) -> bool:
        """Room condition gating input consumption (ForkTile overrides)."""
        return self._has_room()

    def sched_poll(self, cycle: int) -> tuple:
        inputs_waiting = False
        for stream in self.inputs:
            if stream.can_pop():
                inputs_waiting = True
                break
        if inputs_waiting and self._can_accept():
            return ("ready",)
        for packer in self._packers:
            if packer.pending and (packer.stream is None
                                   or packer.stream.can_push()):
                return ("ready",)       # a flush (or drop) can still emit
        counter = "stall_cycles" if inputs_waiting else "idle_cycles"
        if self._delay:
            return ("timer", self._delay[0][0], counter)
        return ("sleep", counter)

    def idle(self) -> bool:
        return not self._delay and all(p.empty() for p in self._packers)

    def stall_reason(self) -> StallReason:
        reason = super().stall_reason()
        if reason is StallReason.STARVED and self._delay:
            # Nothing upstream, nothing blocked: the only in-flight state
            # is records maturing in the pipeline delay line.
            return StallReason.LATENCY
        return reason


class MapTile(_PipelinedTile):
    """Apply ``fn`` to each record (thread-state mutation).

    ``fn`` may return ``None`` to kill the thread (a fused filter-drop),
    which some pipelines use for guard conditions.

    ``fn`` may be a legacy callable or an :class:`~repro.dataflow.expr.Expr`;
    an ``Expr`` is resolved to its compiled scalar here (so per-record
    schedulers pay no dispatch) and batch-fused inside lowered windows.
    """

    def __init__(self, name: str, fn: Callable[[Record], Optional[Record]],
                 latency: int = PIPELINE_DEPTH):
        super().__init__(name, latency, n_outputs=1)
        self.fn = fn
        self._fn = scalar_of(fn)

    def _process(self, cycle: int) -> bool:
        stream = self.inputs[0]
        if not stream._fifo or not self._has_room():
            return False
        vector = stream.pop()
        fn = self._fn
        out = []
        append = out.append
        for rec in vector:
            r = fn(rec)
            if r is not None:
                append(r)
        self._delay.append((cycle + self.latency, (out,)))
        return True


class FilterTile(_PipelinedTile):
    """Split a stream on a predicate: port 0 = pass, port 1 = fail.

    Either port may be configured to drop its records via
    :meth:`drop_output`, which is how threads terminate (fig. 4).
    """

    def __init__(self, name: str, predicate: Callable[[Record], bool],
                 latency: int = PIPELINE_DEPTH):
        super().__init__(name, latency, n_outputs=2)
        self.predicate = predicate
        self._pred = scalar_of(predicate)

    def _process(self, cycle: int) -> bool:
        stream = self.inputs[0]
        if not stream._fifo or not self._has_room():
            return False
        vector = stream.pop()
        passed: List[Record] = []
        failed: List[Record] = []
        pass_append = passed.append
        fail_append = failed.append
        predicate = self._pred
        for rec in vector:
            if predicate(rec):
                pass_append(rec)
            else:
                fail_append(rec)
        self._delay.append((cycle + self.latency, (passed, failed)))
        return True


class MergeTile(_PipelinedTile):
    """Combine two (or more) streams into one.

    Input 0 has priority; on cyclic dataflow the loop-back edge must be the
    priority input so recirculating threads cannot be starved into deadlock
    (§III-A).  The selector fills up to one output vector per cycle from the
    highest-priority non-empty inputs.
    """

    def __init__(self, name: str, latency: int = 1):
        super().__init__(name, latency, n_outputs=1)

    def _process(self, cycle: int) -> bool:
        if not self._has_room():
            return False
        taken: List[Record] = []
        for stream in self.inputs:  # priority order
            if len(taken) >= LANES:
                break
            if stream._fifo:
                taken.extend(stream.pop())
        if not taken:
            return False
        self._delay.append((cycle + self.latency, (taken,)))
        return True


class ForkTile(_PipelinedTile):
    """Spawn child threads: ``fn(record) -> iterable of records``.

    Forking is what lets Aurochs walk multiple search paths through a tree
    simultaneously; a record expands into a batch of child records that
    enter the stream as independent threads.  Returning an empty iterable
    kills the thread.
    """

    def __init__(self, name: str, fn: Callable[[Record], Iterable[Record]],
                 latency: int = PIPELINE_DEPTH, max_pending: int = 16 * LANES):
        super().__init__(name, latency, n_outputs=1)
        self.fn = fn
        self._fn = scalar_of(fn)
        self._packers[0].spill_limit = max_pending

    def _can_accept(self) -> bool:
        # Forks amplify; require generous room before accepting input.
        return self._packers[0].has_room(4 * LANES)

    def _process(self, cycle: int) -> bool:
        stream = self.inputs[0]
        if not stream.can_pop() or not self._can_accept():
            return False
        vector = stream.pop()
        out: List[Record] = []
        fn = self._fn
        for rec in vector:
            out.extend(fn(rec))
        self._delay.append((cycle + self.latency, (out,)))
        return True


class CopyTile(_PipelinedTile):
    """Duplicate a stream to two consumers (fan-out wiring helper)."""

    def __init__(self, name: str, latency: int = 1):
        super().__init__(name, latency, n_outputs=2)

    def _process(self, cycle: int) -> bool:
        stream = self.inputs[0]
        if not stream.can_pop() or not self._has_room():
            return False
        vector = stream.pop()
        self._delay.append((cycle + self.latency, (list(vector), list(vector))))
        return True


class StampTile(_PipelinedTile):
    """Append a monotonically incrementing counter field to each record.

    Used by the on-chip hash table build (§IV-A) to reserve each thread's
    slot in the node scratchpad: the stamped value is the thread's allocated
    node index, with values past scratchpad capacity implicitly addressing
    the DRAM overflow buffer.
    """

    def __init__(self, name: str, start: int = 0,
                 latency: int = PIPELINE_DEPTH):
        super().__init__(name, latency, n_outputs=1)
        self.counter = start

    def _process(self, cycle: int) -> bool:
        stream = self.inputs[0]
        if not stream.can_pop() or not self._has_room():
            return False
        vector = stream.pop()
        out = []
        for rec in vector:
            out.append(rec + (self.counter,))
            self.counter += 1
        self._delay.append((cycle + self.latency, (out,)))
        return True
