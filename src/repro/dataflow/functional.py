"""Functional graph execution: same graphs, no cycle timing.

The cycle engine (`engine.py`) models per-cycle tile behaviour; for
correctness work at larger scales that timing detail is wasted effort.
:class:`FunctionalEngine` executes the *same* :class:`~repro.dataflow.graph.Graph`
objects to completion by repeatedly ticking tiles with timing collapsed
(every tile latency behaves as one step), preserving exact record
semantics — including cyclic recirculation, RMW atomicity, and thread
kill/fork — while running substantially faster.

Tests cross-validate the two engines record-for-record; benches use the
functional engine to extend cycle-level experiments to sizes the timed
engine cannot reach.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.dataflow.graph import Graph
from repro.dataflow.stats import SimStats
from repro.dataflow.tile import SourceTile


class FunctionalEngine:
    """Run a graph to quiescence with latency collapsed to one step.

    Implementation: exactly the cycle engine's loop, but each tile is
    ticked with a monotonically increasing pseudo-cycle large enough that
    all delay-line entries retire immediately.  Because correctness of the
    tile graphs never depends on timing (only ordering through streams and
    atomics), the final record sets are identical to the timed engine's.
    """

    #: Pseudo-cycle increment: larger than any tile latency, so every
    #: delay-line entry is ripe by the next tick.
    STRIDE = 1 << 20

    def __init__(self, graph: Graph, max_steps: int = 10_000_000):
        self.graph = graph
        self.max_steps = max_steps

    def run(self) -> SimStats:
        """Execute to quiescence; returns stats with *steps*, not cycles."""
        self.graph.validate()
        tiles = list(reversed(self.graph.tiles))
        step = 0
        stalled = 0
        while True:
            moved = False
            for tile in tiles:
                if tile.tick(step * self.STRIDE):
                    moved = True
            step += 1
            if moved:
                stalled = 0
            else:
                stalled += 1
                if self._quiescent():
                    break
                if stalled > 4:
                    raise SimulationError(
                        f"functional deadlock in {self.graph.name!r}: "
                        "no progress while work remains")
            if step > self.max_steps:
                raise SimulationError(
                    f"graph {self.graph.name!r} exceeded {self.max_steps} "
                    "functional steps")
        for stream in self.graph.streams:
            stream.close()
        stats = SimStats(cycles=step)
        for tile in self.graph.tiles:
            stats.tiles[tile.name] = tile.stats
            spad = getattr(tile, "spad_stats", None)
            if spad is not None:
                stats.scratchpads[tile.name] = spad
        return stats

    def _quiescent(self) -> bool:
        for tile in self.graph.tiles:
            if isinstance(tile, SourceTile) and not tile.done():
                return False
            if not tile.idle():
                return False
        return all(s.occupancy() == 0 for s in self.graph.streams)


def run_functional(graph: Graph, max_steps: int = 10_000_000) -> SimStats:
    """Convenience wrapper around :class:`FunctionalEngine`."""
    return FunctionalEngine(graph, max_steps).run()
