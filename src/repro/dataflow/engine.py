"""The cycle-level execution engine.

Drives a :class:`~repro.dataflow.graph.Graph` one cycle at a time until the
fabric quiesces: every source exhausted, every stream drained, every tile's
internal buffers empty.  This corresponds to the paper's stream-end
condition; for cyclic pipelines it is exactly the "wait until the cyclic
pipeline has emptied" drain protocol of §III-A, observed globally instead of
via per-tile tokens.

Tiles tick in reverse insertion order (consumers before producers) so a
vector can traverse one tile per cycle without an artificial extra cycle of
buffer-full backpressure; graphs are conventionally built source-first.

Reliability hooks: an optional :class:`~repro.reliability.FaultInjector`
may be passed to :class:`Engine`.  When present, it is armed on the graph
before the run (stream checksums, scratchpad bank faults), consulted each
cycle for injected tile stalls, and asked to verify end-to-end stream
integrity after the drain.  With ``injector=None`` (the default) the main
loop is byte-for-byte the fault-free path — cycle counts are unchanged.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import SimulationError, StallError
from repro.dataflow.graph import Graph
from repro.dataflow.stats import SimStats
from repro.dataflow.tile import SourceTile


class Engine:
    """Runs one graph to quiescence and reports statistics."""

    def __init__(self, graph: Graph, max_cycles: int = 50_000_000,
                 deadlock_window: int = 50_000, injector=None):
        self.graph = graph
        self.max_cycles = max_cycles
        self.deadlock_window = deadlock_window
        self.injector = injector

    def run(self) -> SimStats:
        """Simulate until quiescence; raise on deadlock or cycle overrun.

        Streams are closed on *every* exit path — a simulation failure must
        not leave streams open for accidental reuse.
        """
        self.graph.validate()
        inj = self.injector
        if inj is not None:
            inj.begin_run(self.graph)
        tiles = list(reversed(self.graph.tiles))
        cycle = 0
        last_progress = 0
        try:
            while True:
                moved = False
                if inj is None:
                    for tile in tiles:
                        if tile.tick(cycle):
                            moved = True
                else:
                    inj.now = cycle
                    for tile in tiles:
                        if inj.stalled(tile.name, cycle):
                            continue
                        if tile.tick(cycle):
                            moved = True
                cycle += 1
                if moved:
                    last_progress = cycle
                elif self._quiescent():
                    break
                elif cycle - last_progress > self.deadlock_window:
                    stuck_tiles, stuck_streams = self._stuck_state()
                    if inj is not None:
                        site = inj.active_stall_site(cycle)
                        if site is not None:
                            raise StallError(
                                f"tile {site!r} stalled past the "
                                f"{self.deadlock_window}-cycle watchdog in "
                                f"graph {self.graph.name!r} at cycle {cycle}",
                                kind="tile_stall", site=site, cycle=cycle,
                                detail=self._stuck_report(),
                            )
                    raise SimulationError(
                        f"deadlock in graph {self.graph.name!r} at cycle "
                        f"{cycle}: no progress for {self.deadlock_window} "
                        f"cycles; {self._stuck_report()}",
                        graph=self.graph.name, cycle=cycle, kind="deadlock",
                        stuck_tiles=stuck_tiles, stuck_streams=stuck_streams,
                    )
                if cycle > self.max_cycles:
                    stuck_tiles, stuck_streams = self._stuck_state()
                    raise SimulationError(
                        f"graph {self.graph.name!r} exceeded "
                        f"{self.max_cycles} cycles",
                        graph=self.graph.name, cycle=cycle, kind="overrun",
                        stuck_tiles=stuck_tiles, stuck_streams=stuck_streams,
                    )
        finally:
            for stream in self.graph.streams:
                stream.close()
        if inj is not None:
            inj.verify_streams(self.graph, cycle)
        return self._collect(cycle)

    # -- helpers ----------------------------------------------------------

    def _quiescent(self) -> bool:
        for tile in self.graph.tiles:
            if isinstance(tile, SourceTile) and not tile.done():
                return False
            if not tile.idle():
                return False
        return all(s.occupancy() == 0 for s in self.graph.streams)

    def _stuck_state(self) -> Tuple[List[str], List[str]]:
        """Names of non-idle tiles and occupied streams (for diagnostics)."""
        stuck_tiles = [t.name for t in self.graph.tiles if not t.idle()]
        stuck_streams = [s.name for s in self.graph.streams if s.occupancy()]
        return stuck_tiles, stuck_streams

    def _stuck_report(self) -> str:
        """Human-readable blame report: which tile is wedged on what.

        Includes per-tile input-buffer occupancy and the head-of-line record
        of each occupied stream, so a deadlock message names the actual
        blocker instead of just listing busy components.
        """
        tile_parts = []
        for tile in self.graph.tiles:
            if tile.idle():
                continue
            inputs = ", ".join(
                f"{s.name}:{s.occupancy()}/{s.capacity}" for s in tile.inputs
            ) or "no inputs"
            tile_parts.append(f"{tile.name}[{inputs}]")
        stream_parts = []
        for stream in self.graph.streams:
            if not stream.occupancy():
                continue
            head = stream.peek()
            head_repr = repr(head[0]) if head else "<empty vector>"
            if len(head_repr) > 48:
                head_repr = head_repr[:45] + "..."
            stream_parts.append(
                f"{stream.name}({stream.occupancy()} vec, "
                f"{stream.buffered_records()} rec, head={head_repr})"
            )
        return (f"non-idle tiles={tile_parts or ['<none>']}, "
                f"occupied streams={stream_parts or ['<none>']}")

    def _collect(self, cycles: int) -> SimStats:
        stats = SimStats(cycles=cycles)
        for tile in self.graph.tiles:
            stats.tiles[tile.name] = tile.stats
            spad = getattr(tile, "spad_stats", None)
            if spad is not None:
                stats.scratchpads[tile.name] = spad
            dram = getattr(tile, "dram_stats", None)
            if dram is not None:
                stats.dram.read_bytes += dram.read_bytes
                stats.dram.write_bytes += dram.write_bytes
                stats.dram.dense_bursts += dram.dense_bursts
                stats.dram.sparse_bursts += dram.sparse_bursts
                stats.dram.busy_cycles = max(
                    stats.dram.busy_cycles, dram.busy_cycles
                )
        return stats


def run_graph(graph: Graph, max_cycles: int = 50_000_000,
              deadlock_window: int = 50_000, injector=None) -> SimStats:
    """Convenience wrapper: build an :class:`Engine` and run ``graph``."""
    return Engine(graph, max_cycles, deadlock_window, injector=injector).run()
