"""The cycle-level execution engine.

Drives a :class:`~repro.dataflow.graph.Graph` one cycle at a time until the
fabric quiesces: every source exhausted, every stream drained, every tile's
internal buffers empty.  This corresponds to the paper's stream-end
condition; for cyclic pipelines it is exactly the "wait until the cyclic
pipeline has emptied" drain protocol of §III-A, observed globally instead of
via per-tile tokens.

Tiles tick in reverse insertion order (consumers before producers) so a
vector can traverse one tile per cycle without an artificial extra cycle of
buffer-full backpressure; graphs are conventionally built source-first.

Two schedulers implement that contract:

* ``scheduler="event"`` (default) — an event-driven ready-set scheduler.
  Streams notify their consumer on push/close and their producer on pop
  (freed backpressure); tiles with internal pending state (packers, issue
  queues, in-flight DRAM requests) self-schedule via per-tile wake timers.
  Each cycle only the ready set ticks, and when the ready set is empty but
  the fabric is not quiescent the engine *fast-forwards* directly to the
  next timer expiry (a DRAM completion or injected-stall clearance) —
  clamped to the deadlock-watchdog and max-cycles deadlines so errors fire
  at exactly the cycle the exhaustive loop would raise them.

* ``scheduler="exhaustive"`` — the original tick-everything loop, kept for
  differential testing.

* ``scheduler="vector"`` — the event scheduler with saturated windows
  lowered onto the columnar vector backend (``repro.dataflow.vector``):
  one fused kernel per tile plus numpy counter matrices that defer all
  statistics to a vectorized settlement at window exit.  Same triggers,
  same entry/exit bookkeeping, bit-identical results; requires numpy
  (checked at construction with a typed ``DependencyError``).  Vector
  mode additionally vectorizes the pre-saturation *ramp*: when the
  ready set grows monotonically toward saturation, short fixed-width
  lowered windows (``_RAMP_CYCLES``) replace per-cycle event rounds —
  window policy is free because a lowered cycle ticks every tile
  exactly as the exhaustive loop would; only wall-clock changes.

Burst execution (``burst=True``, the default, event scheduler only): when
the ready set is in a provable steady state the engine fires many cycles
per Python-level step instead of one.  Two window kinds exist.  A *group
burst* runs a validated produce→relay→drain chain for ``b`` cycles with
one ``Tile.tick_burst`` call per tile (see the burst protocol in
``tile.py``); a *saturated window* — triggered when nearly every tile is
ready — drops to the exhaustive loop body until the ready fraction falls,
since ticking everything is always exact and the ready-set bookkeeping is
pure overhead at saturation.  Both settle sleep-skip credit first and
clamp the window so no EOS transition, wake timer, cancellation deadline,
watchdog or cycle-limit check can land inside it; stats, stream contents
and error cycles stay bit-identical to ``burst=False`` and to the
exhaustive scheduler.  Burst never engages while an injector or tracer is
armed (their per-cycle/per-op hooks need real ticks), so hooked runs are
byte-for-byte the per-cycle ones.

Equivalence guarantee: a tile is only ever skipped while provably *inert*
(its tick would change nothing but one idle/stall counter), skipped
counter increments are settled in bulk via ``Tile.sched_skip`` before the
tile's next real tick, and intra-cycle event ordering matches the tick
order (an event raised by tile *i* wakes a downstream tile *j* in the same
cycle iff *j* would have ticked after *i* anyway).  Simulated cycle counts
and every ``SimStats`` field are bit-identical across the two schedulers —
``tests/test_scheduler_equivalence.py`` pins this, fault injection
included.

Reliability hooks: an optional :class:`~repro.reliability.FaultInjector`
may be passed to :class:`Engine`.  When present, it is armed on the graph
before the run (stream checksums, scratchpad bank faults), consulted for
injected tile stalls before each tick, and asked to verify end-to-end
stream integrity after the drain.  With ``injector=None`` (the default)
the hot paths are byte-for-byte the fault-free ones — cycle counts are
unchanged.  One documented divergence: for ``TILE_STALL`` events the
per-cycle ``FaultEvent.fired`` tally differs (the event engine checks a
suspended tile once per window, not once per cycle); the first firing —
what the :attr:`FaultInjector.log` records — happens at the identical
cycle under both schedulers.

Cancellation hook: an optional ``cancel`` token (duck-typed; see
:class:`repro.serving.CancelToken`) lets a caller bound a run by a cycle
deadline or cancel it cooperatively mid-flight.  The engine calls
``cancel.check(cycle)`` at the top of every simulated cycle — a stream-end
checkpoint boundary by construction: nothing has ticked yet this cycle —
and the token raises a typed :class:`~repro.errors.DeadlineExceeded` or
:class:`~repro.errors.Cancelled`.  The event scheduler additionally clamps
its fast-forward jumps to ``cancel.deadline_cycle`` so a deadline falling
inside an idle window fires at exactly the cycle the exhaustive loop would
raise it; watchdog and overrun deadlines keep priority at exact ties,
matching the exhaustive loop's check order.  Streams are closed on the
cancellation path like on every other exit, so a cancelled simulation
releases its scratchpad/DRAM graph state for reuse.  With ``cancel=None``
(the default) the only cost is one is-None test per cycle.
"""

from __future__ import annotations

import heapq
from bisect import insort
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError, StallError
from repro.dataflow.graph import Graph
from repro.dataflow.stats import SimStats
from repro.dataflow.tile import SourceTile

#: Event-scheduler tile states.
_READY, _SLEEP, _SUSPENDED = 0, 1, 2

#: Timer generation tag that never goes stale (injected stall-start wakes).
_ANY_GEN = -1

#: Fixed width of a pre-saturation *ramp* window (``scheduler="vector"``):
#: long enough to amortize window entry/exit (and the one all-ready event
#: round that follows every window) over dozens of fused-kernel cycles,
#: short enough that the event scheduler re-evaluates the ready set well
#: before a drained or timer-driven phase could be missed.
_RAMP_CYCLES = 48

#: Minimum ready-set size for a round to count toward a ramp window.  A
#: lowered fused-kernel sweep costs less than an event round once a
#: handful of tiles are ready every round (idle kernels early-out in a
#: few loads; ready-set bookkeeping pays per tile per round), so
#: sustained occupancy at or above this floor — not monotonic growth,
#: which plateaus long before saturation — is the fill-phase signature.
#: Genuinely sparse or timer-paced fabrics (ready sets of 1-3) stay on
#: the event path and keep its idle-cycle fast-forward.
_RAMP_MIN = 4

#: Consecutive rounds at or above ``_RAMP_MIN`` before a ramp window
#: fires.  Two rounds filter one-round spikes (e.g. the all-ready round
#: after a window exit) without burning event rounds between back-to-back
#: ramp windows during a long fill.
_RAMP_STREAK = 2


class Engine:
    """Runs one graph to quiescence and reports statistics."""

    def __init__(self, graph: Graph, max_cycles: int = 50_000_000,
                 deadlock_window: int = 50_000, injector=None,
                 scheduler: str = "event", profile: bool = False,
                 tracer=None, cancel=None, burst: bool = True):
        if scheduler not in ("event", "exhaustive", "vector"):
            raise ValueError(
                f"unknown scheduler {scheduler!r}: use 'event', "
                f"'exhaustive' or 'vector'")
        if scheduler == "vector":
            # Fail at construction, not mid-run, when numpy is missing.
            from repro.dataflow.vector import require_numpy
            require_numpy()
        self.graph = graph
        self.max_cycles = max_cycles
        self.deadlock_window = deadlock_window
        self.injector = injector
        self.scheduler = scheduler
        #: Burst execution (event scheduler only): when the ready set is in
        #: a provable steady state, fire many cycles per Python-level step.
        #: Bit-identical stats by construction; ``burst=False`` is the
        #: escape hatch that forces plain per-cycle event scheduling.
        self.burst = burst
        #: tile class name (or "fabric"/"vector"/"ramp") -> committed
        #: window sizes.
        self.burst_windows: Dict[str, List[int]] = {}
        #: window shape ("vector"/"ramp") -> cumulative wall-clock seconds
        #: spent inside lowered windows (entry-to-settle, including the
        #: one-time lowering build).  The benchmark's per-shape breakdown.
        self.window_wall: Dict[str, float] = {}
        #: Cached columnar lowering (``scheduler="vector"``), built on the
        #: first lowered window and reused across windows *and* runs —
        #: ``Lowering.revalidate`` re-checks the dispatch signatures per
        #: run instead of rebuilding the kernel closures.
        self._vector_lowering = None
        #: vector kernel kind -> [cycles, cumulative seconds]; None when
        #: profiling is off.  Filled by the lowering at window settlement.
        self.vector_profile: Optional[Dict[str, List]] = (
            {} if profile else None)
        #: Cancellation hook: an object with ``check(cycle)`` (raises a
        #: typed error to stop the run) and a ``deadline_cycle`` attribute
        #: (int or None) that clamps the event scheduler's fast-forward.
        #: None (the default) keeps the cancel-free hot path.
        self.cancel = cancel
        #: Observability hook: a repro.observability.Tracer, or None.  When
        #: None the hot paths are byte-for-byte the untraced ones; when set
        #: the tracer is armed on the graph at run start and consulted
        #: after every real tick (transition events + stall attribution).
        self.tracer = tracer
        #: class name -> [tick calls, cumulative seconds]; None when off.
        self.tick_profile: Optional[Dict[str, List]] = {} if profile else None

    def run(self) -> SimStats:
        """Simulate until quiescence; raise on deadlock or cycle overrun.

        Streams are closed on *every* exit path — a simulation failure must
        not leave streams open for accidental reuse.
        """
        self.graph.validate()
        inj = self.injector
        if inj is not None:
            inj.begin_run(self.graph)
        trace = self.tracer
        if trace is not None:
            trace.begin_run(self.graph)
        else:
            # Detach hooks a previously-attached tracer may have left, the
            # same way the exhaustive loop detaches stale sched hooks.
            for tile in self.graph.tiles:
                if tile.tracer is not None:
                    tile.tracer = None
            for stream in self.graph.streams:
                if stream.tracer is not None:
                    stream.tracer = None
        if self.scheduler == "exhaustive":
            return self._run_exhaustive(inj)
        return self._run_event(inj)

    # -- exhaustive scheduler ---------------------------------------------

    def _run_exhaustive(self, inj) -> SimStats:
        for stream in self.graph.streams:
            stream.sched = None         # detach stale event-engine hooks
        tiles = list(reversed(self.graph.tiles))
        prof = self.tick_profile
        trace = self.tracer
        tok = self.cancel
        cycle = 0
        last_progress = 0
        try:
            while True:
                if tok is not None:
                    tok.check(cycle)
                moved = False
                if inj is None and prof is None and trace is None:
                    for tile in tiles:
                        if tile.tick(cycle):
                            moved = True
                else:
                    if inj is not None:
                        inj.now = cycle
                    if trace is not None:
                        trace.now = cycle
                    for tile in tiles:
                        if inj is not None and inj.stalled(tile.name, cycle):
                            continue
                        ticked = self._tick(tile, cycle)
                        if trace is not None:
                            trace.tile_state(tile, cycle, ticked)
                        if ticked:
                            moved = True
                cycle += 1
                if moved:
                    last_progress = cycle
                elif self._quiescent():
                    break
                elif cycle - last_progress > self.deadlock_window:
                    self._raise_deadlock(cycle, inj)
                if cycle >= self.max_cycles:
                    self._raise_overrun(cycle)
        finally:
            if trace is not None:
                trace.now = cycle
            for stream in self.graph.streams:
                stream.close()
            if trace is not None:
                trace.finalize(cycle)
        if inj is not None:
            inj.verify_streams(self.graph, cycle)
        return self._collect(cycle)

    # -- event-driven scheduler -------------------------------------------

    def _run_event(self, inj) -> SimStats:
        graph = self.graph
        tiles = list(reversed(graph.tiles))
        n = len(tiles)
        self._ev_tiles = tiles
        self._ev_index = {id(t): i for i, t in enumerate(tiles)}
        state = self._ev_state = [_READY] * n
        gen = self._ev_gen = [0] * n
        # While a tile sleeps: the first skipped cycle and which TileStats
        # counter its inert ticks would have incremented.  Settlement is
        # lazy — applied just before the next real tick, or at end of run.
        sleep_start = [0] * n
        sleep_counter: List[Optional[str]] = [None] * n
        self._ev_sleep_start = sleep_start
        self._ev_sleep_counter = sleep_counter
        # This cycle's ready set as a plain list of tile indices, sorted
        # once per round and walked positionally (tick order); the next
        # cycle's as a list + membership flags, and wake timers as a heap
        # of (cycle, generation, index) with stale-entry filtering.
        heap = self._ev_heap = list(range(n))
        in_now = self._ev_in_now = [True] * n
        nxt: List[int] = []
        in_next = self._ev_in_next = [False] * n
        self._ev_next = nxt
        timers: List[Tuple[int, int, int]] = []
        self._ev_timers = timers
        self._ev_in_round = False
        self._ev_cur = -1
        # Per-stream wake targets, precomputed: push/close wake the
        # consumer, pop wakes the producer (-1 = no tile to wake).
        index = self._ev_index
        push_wake = self._ev_push_wake = {}
        pop_wake = self._ev_pop_wake = {}
        for stream in graph.streams:
            stream.sched = self
            c, p = stream.consumer, stream.producer
            push_wake[id(stream)] = (
                index.get(id(c), -1) if c is not None else -1)
            pop_wake[id(stream)] = (
                index.get(id(p), -1) if p is not None else -1)
        if inj is not None:
            name_index = {t.name: i for i, t in enumerate(tiles)}
            for site, start in inj.stall_starts():
                i = name_index.get(site)
                if i is not None:
                    heapq.heappush(timers, (start, _ANY_GEN, i))
        prof = self.tick_profile
        trace = self.tracer
        tok = self.cancel
        hooked = inj is not None or trace is not None or prof is not None
        # Burst execution: allowed with a profiler (it has no semantic
        # effect) but not with an injector or tracer, whose per-cycle /
        # per-stream-op hooks the bulk paths do not replay.
        burst_on = self.burst and inj is None and trace is None
        # Vector mode: saturated windows run on the columnar lowering
        # instead of the hoisted exhaustive loop.  Same trigger, same
        # entry/exit bookkeeping, bit-identical state by construction.
        vector_on = burst_on and self.scheduler == "vector"
        if vector_on:
            from repro.dataflow.vector.window import run_window
            # Reuse the previous run's lowering when every dispatch
            # signature still matches (same tiles, same hooks, same
            # wiring); otherwise drop it and let the first window rebuild.
            lw = self._vector_lowering
            if lw is not None and not lw.revalidate(tiles):
                self._vector_lowering = None
        else:
            run_window = None
            self._vector_lowering = None
        # Group-burst probing costs a sort + validation per stable round;
        # graphs whose sources cannot sustain a committable window
        # (b >= 16) would pay that overhead without ever cashing it in,
        # so probing is disabled for them up front.
        group_on = burst_on and self._group_burst_possible(tiles)
        sat_min = n - 3 if n > 7 else 4
        sat_streak = 0          # rounds with a near-full ready set
        grp_sig: Optional[tuple] = None
        grp_streak = 0          # rounds with an identical small ready set
        burst_cool = 0          # rounds to wait after a window / failure
        ramp_streak = 0         # consecutive ramp-occupancy rounds
        cycle = 0
        last_progress = 0
        try:
            while True:
                if tok is not None:
                    tok.check(cycle)
                while timers and timers[0][0] <= cycle:
                    __, g, i = heapq.heappop(timers)
                    if ((g == _ANY_GEN or g == gen[i])
                            and state[i] != _READY):
                        state[i] = _READY
                        if not in_now[i]:
                            in_now[i] = True
                            heap.append(i)
                if heap:
                    if burst_on:
                        hlen = len(heap)
                        if burst_cool:
                            burst_cool -= 1
                        elif hlen >= sat_min:
                            grp_streak = 0
                            sat_streak += 1
                            # A built vector lowering makes window
                            # re-entry nearly free (no dispatch, no
                            # hoisting), so re-saturation after a window
                            # exit triggers on a much shorter streak and
                            # with almost no cooldown — the exit paths
                            # (decay, idle cycle) already guarantee the
                            # fabric really left saturation.
                            if vector_on and self._vector_lowering is not None:
                                sat_need, sat_cool = 2, 2
                            else:
                                sat_need, sat_cool = 8, 32
                            if sat_streak >= sat_need:
                                # Saturated fabric: nearly every tile is
                                # ready, so the ready-set machinery is pure
                                # overhead.  Run the exhaustive loop body —
                                # always exact — until the ready fraction
                                # drops, then resume event scheduling.
                                sat_streak = 0
                                burst_cool = sat_cool
                                for i in range(n):
                                    if sleep_counter[i] is not None:
                                        skipped = cycle - sleep_start[i]
                                        if skipped > 0:
                                            tiles[i].sched_skip(
                                                skipped, sleep_counter[i])
                                        sleep_counter[i] = None
                                    state[i] = _READY
                                    gen[i] += 1
                                for stream in graph.streams:
                                    stream.sched = None
                                enter = cycle
                                if vector_on:
                                    cycle, last_progress, quiesced = (
                                        run_window(self, tiles, cycle,
                                                   last_progress))
                                    wkey = "vector"
                                else:
                                    wkey = "fabric"
                                    ticks = [t.tick for t in tiles]
                                    peak = 0
                                    quiesced = False
                                    while True:
                                        if tok is not None and cycle > enter:
                                            tok.check(cycle)
                                        moved_n = 0
                                        if prof is None:
                                            for tick in ticks:
                                                if tick(cycle):
                                                    moved_n += 1
                                        else:
                                            for tile in tiles:
                                                if self._tick(tile, cycle):
                                                    moved_n += 1
                                        cycle += 1
                                        if moved_n:
                                            last_progress = cycle
                                        elif self._quiescent():
                                            quiesced = True
                                            break
                                        elif (cycle - last_progress
                                                > self.deadlock_window):
                                            self._raise_deadlock(cycle, inj)
                                        if cycle >= self.max_cycles:
                                            self._raise_overrun(cycle)
                                        # Exit when progress falls to half
                                        # the window's own steady-state
                                        # peak — the fabric is winding down
                                        # (or idling on latency) and the
                                        # ready-set machinery pays for
                                        # itself again.
                                        if moved_n > peak:
                                            peak = moved_n
                                        elif (moved_n <= 2
                                                or moved_n < peak // 4):
                                            break
                                for stream in graph.streams:
                                    stream.sched = self
                                wl = self.burst_windows.get(wkey)
                                if wl is None:
                                    wl = self.burst_windows[wkey] = []
                                wl.append(cycle - enter)
                                if quiesced:
                                    break
                                # Every tile just really ticked: all ready.
                                del heap[:]
                                heap.extend(range(n))
                                for i in range(n):
                                    in_now[i] = True
                                continue
                        else:
                            sat_streak = 0
                            if vector_on:
                                # Ramp detection: a ready set sustained at
                                # moderate occupancy is the fabric filling
                                # (or steadily streaming) below the
                                # saturation bar — per-cycle event rounds
                                # there are pure overhead, but the set is
                                # too small for the saturation trigger.
                                # Fire short fixed-width lowered windows
                                # instead; window policy cannot affect
                                # SimStats (lowered cycles tick every
                                # tile, exactly as the exhaustive loop
                                # would).
                                if hlen >= _RAMP_MIN:
                                    ramp_streak += 1
                                else:
                                    ramp_streak = 0
                                if ramp_streak >= _RAMP_STREAK:
                                    ramp_streak = 0
                                    lw = self._vector_lowering
                                    if lw is None or lw.fallbacks == 0:
                                        for i in range(n):
                                            if sleep_counter[i] is not None:
                                                skipped = (cycle
                                                           - sleep_start[i])
                                                if skipped > 0:
                                                    tiles[i].sched_skip(
                                                        skipped,
                                                        sleep_counter[i])
                                                sleep_counter[i] = None
                                            state[i] = _READY
                                            gen[i] += 1
                                        for stream in graph.streams:
                                            stream.sched = None
                                        enter = cycle
                                        cycle, last_progress, quiesced = (
                                            run_window(self, tiles, cycle,
                                                       last_progress,
                                                       wkey="ramp",
                                                       limit=_RAMP_CYCLES))
                                        for stream in graph.streams:
                                            stream.sched = self
                                        wl = self.burst_windows.get("ramp")
                                        if wl is None:
                                            wl = []
                                            self.burst_windows["ramp"] = wl
                                        wl.append(cycle - enter)
                                        if quiesced:
                                            break
                                        # Every tile just really ticked.
                                        del heap[:]
                                        heap.extend(range(n))
                                        for i in range(n):
                                            in_now[i] = True
                                        continue
                            if group_on and hlen <= 8:
                                heap.sort()
                                sig = tuple(heap)
                                if sig == grp_sig:
                                    grp_streak += 1
                                    if grp_streak >= 8:
                                        grp_streak = 0
                                        b = self._try_group_burst(cycle)
                                        if b:
                                            cycle += b
                                            last_progress = cycle
                                            burst_cool = 2
                                            if cycle >= self.max_cycles:
                                                self._raise_overrun(cycle)
                                            continue
                                        burst_cool = 32
                                else:
                                    grp_sig = sig
                                    grp_streak = 1
                            else:
                                grp_streak = 0
                    moved = False
                    self._ev_in_round = True
                    # Sort the round once; intra-round wakes insort ahead of
                    # the cursor (they target indices > the current tile).
                    heap.sort()
                    pos = 0
                    if hooked:
                        if inj is not None:
                            inj.now = cycle
                        if trace is not None:
                            trace.now = cycle
                        while pos < len(heap):
                            i = heap[pos]
                            pos += 1
                            if not in_now[i]:
                                continue
                            in_now[i] = False
                            tile = tiles[i]
                            if (inj is not None
                                    and inj.stalled(tile.name, cycle)):
                                # Suspend with zero credit: the exhaustive
                                # loop skips a stalled tile w/o counters.
                                self._ev_settle(i, tile, cycle)
                                state[i] = _SUSPENDED
                                gen[i] += 1
                                clear = inj.stall_clear_cycle(tile.name,
                                                              cycle)
                                if clear is not None:
                                    heapq.heappush(timers,
                                                   (clear, gen[i], i))
                                continue
                            self._ev_settle(i, tile, cycle)
                            self._ev_cur = i
                            if prof is None:
                                ticked = tile.tick(cycle)
                            else:
                                ticked = self._tick(tile, cycle)
                            if trace is not None:
                                trace.tile_state(tile, cycle, ticked)
                            if ticked:
                                moved = True
                                # A tile that moved stays ready; it polls
                                # after its next (maybe inert) tick instead.
                                if not in_next[i]:
                                    in_next[i] = True
                                    nxt.append(i)
                            elif not in_next[i]:
                                self._ev_apply_poll(i, tile, cycle)
                    else:
                        # Hook-free hot round: no injector, tracer, or
                        # profiler — identical control flow, fewer lookups.
                        while pos < len(heap):
                            i = heap[pos]
                            pos += 1
                            if not in_now[i]:
                                continue
                            in_now[i] = False
                            tile = tiles[i]
                            if sleep_counter[i] is not None:
                                self._ev_settle(i, tile, cycle)
                            self._ev_cur = i
                            if tile.tick(cycle):
                                moved = True
                                if not in_next[i]:
                                    in_next[i] = True
                                    nxt.append(i)
                            elif not in_next[i]:
                                self._ev_apply_poll(i, tile, cycle)
                    self._ev_in_round = False
                    self._ev_cur = -1
                    del heap[:]
                    for i in nxt:
                        if in_next[i]:
                            in_next[i] = False
                            state[i] = _READY
                            if not in_now[i]:
                                in_now[i] = True
                                heap.append(i)
                    del nxt[:]
                    cycle += 1
                    if moved:
                        last_progress = cycle
                    elif self._quiescent():
                        break
                    elif cycle - last_progress > self.deadlock_window:
                        self._raise_deadlock(cycle, inj)
                    if cycle >= self.max_cycles:
                        self._raise_overrun(cycle)
                else:
                    # Empty ready set: every tile is inert, so no state can
                    # change until a timer fires.  Check quiescence once,
                    # then fast-forward — clamped to the deadlock and
                    # overrun deadlines so errors raise at the exhaustive
                    # loop's exact cycle.
                    cycle += 1
                    if self._quiescent():
                        break
                    deadlock_at = last_progress + self.deadlock_window + 1
                    wake_at = self._ev_next_timer()
                    bound = min(deadlock_at, self.max_cycles)
                    if (tok is not None and tok.deadline_cycle is not None
                            and tok.deadline_cycle < bound
                            and (wake_at is None
                                 or tok.deadline_cycle <= wake_at)):
                        # The cancellation deadline lands inside this idle
                        # window, strictly before the watchdog/overrun
                        # deadlines (at exact ties those win, matching the
                        # exhaustive loop's check order).
                        cycle = tok.deadline_cycle
                        tok.check(cycle)
                    if wake_at is None or bound <= wake_at:
                        cycle = bound
                        if deadlock_at <= self.max_cycles:
                            self._raise_deadlock(cycle, inj)
                        self._raise_overrun(cycle)
                    cycle = wake_at
        finally:
            if trace is not None:
                trace.now = cycle
            for stream in graph.streams:
                stream.sched = None
                stream.close()
            if trace is not None:
                trace.finalize(cycle)
        # Tiles still asleep at quiescence owe their skipped counters.
        for i, counter in enumerate(sleep_counter):
            if counter is not None:
                skipped = cycle - sleep_start[i]
                if skipped > 0:
                    tiles[i].sched_skip(skipped, counter)
                sleep_counter[i] = None
        if inj is not None:
            inj.verify_streams(graph, cycle)
        return self._collect(cycle)

    def _group_burst_possible(self, tiles) -> bool:
        """Decide up front whether group-burst probing can ever pay off.

        Group windows only commit when every ready tile offers a burst
        role and the window length clears the commit threshold
        (``b >= 16`` in :meth:`_try_group_burst`).  Of the stock tile
        classes only :class:`SourceTile` overrides ``burst_plan`` with a
        bounded "produce" role; every other stock plan returns ``None``
        or a drain/relay role whose bound comes from the sources anyway.
        So when no source can sustain a 16-cycle window the probing
        machinery (a sort plus full validation per stable round) can
        never cash in — skip it entirely.  Graphs containing tiles with
        *custom* burst plans are assumed probe-worthy.
        """
        from repro.dataflow.tile import SinkTile, SourceTile, Tile
        from repro.memory.spad_tile import ScratchpadTile
        known = (Tile.burst_plan, SourceTile.burst_plan,
                 SinkTile.burst_plan, ScratchpadTile.burst_plan)
        bound = 0
        for t in tiles:
            plan = type(t).burst_plan
            if plan not in known:
                return True
            if plan is SourceTile.burst_plan and type(t) is SourceTile:
                b = (len(t._records) - t._pos - 1) // t.rate
                if b > bound:
                    bound = b
        return bound >= 16

    def _try_group_burst(self, cycle: int) -> int:
        """Validate and run one produce→relay→drain burst window.

        Called when the (small) ready set has been identical for several
        rounds.  Every ready tile must offer a burst role, the roles must
        form closed producer/consumer chains (sleeping pure-drain sinks are
        pulled into the window), and the window length is clamped so that
        no EOS transition, wake timer, cancellation deadline or the cycle
        limit can land inside it.  The roles are then executed
        producer-first — one ``tick_burst`` call per tile — which is
        bit-identical to the interleaved per-cycle ticks because within
        the window each tile's inputs for cycle *c* depend only on its
        producer's fixed per-cycle schedule, which the producer hands over
        as the ``feed``.  Returns the window length, or 0 if validation
        failed (the caller falls back to per-cycle ticking).
        """
        tiles = self._ev_tiles
        heap = self._ev_heap
        push_wake = self._ev_push_wake
        pop_wake = self._ev_pop_wake
        state = self._ev_state
        plans = {}
        for i in heap:
            plan = tiles[i].burst_plan()
            if plan is None:
                return 0
            plans[i] = plan
        # Pull sleeping pure-drain consumers into the window: a sink with
        # an empty input sleeps until the first in-window push would wake
        # it, so it belongs to the window's schedule.
        pulled = []
        for i in list(plans):
            if plans[i][0] == "drain":
                continue
            j = push_wake.get(id(tiles[i].outputs[0]), -1)
            if j < 0:
                return 0
            if j not in plans:
                if state[j] != _SLEEP:
                    return 0
                dplan = tiles[j].burst_plan()
                if dplan is None or dplan[0] != "drain":
                    return 0
                plans[j] = dplan
                pulled.append(j)
        # Cross-validate the wiring: every stream touched by the window
        # must have both endpoints planned, so no outside tile could be
        # woken (or starved) by in-window traffic.
        max_b = None
        for i, plan in plans.items():
            role = plan[0]
            tile = tiles[i]
            if role == "produce":
                cplan = plans.get(push_wake.get(id(tile.outputs[0]), -1))
                if cplan is None:
                    return 0
                if cplan[0] == "relay1":
                    if plan[2] != 1:
                        return 0    # relays only model 1-record vectors
                elif cplan[0] != "drain":
                    return 0
                if max_b is None or plan[1] < max_b:
                    max_b = plan[1]
            elif role == "relay1":
                pplan = plans.get(pop_wake.get(id(tile.inputs[0]), -1))
                if pplan is None or pplan[0] != "produce":
                    return 0
                cplan = plans.get(push_wake.get(id(tile.outputs[0]), -1))
                if cplan is None or cplan[0] != "drain":
                    return 0
            else:  # drain
                pplan = plans.get(pop_wake.get(id(tile.inputs[0]), -1))
                if pplan is None or pplan[0] == "drain":
                    return 0
        if max_b is None:
            return 0                # no producer: window length unbounded
        b = max_b
        wake_at = self._ev_next_timer()
        if wake_at is not None and wake_at - cycle < b:
            b = wake_at - cycle
        if self.max_cycles - cycle < b:
            b = self.max_cycles - cycle
        tok = self.cancel
        if tok is not None and tok.deadline_cycle is not None:
            if tok.deadline_cycle - cycle < b:
                b = tok.deadline_cycle - cycle
        if b > 100_000:
            b = 100_000             # bound cooperative-cancel latency
        if b < 16:
            return 0
        # Commit: settle and wake the pulled drains, detach the involved
        # streams' scheduler hooks (all wakes would target in-window
        # tiles), run producer-first threading each producer's push
        # schedule to its consumer, then reattach.
        gen = self._ev_gen
        in_now = self._ev_in_now
        for j in pulled:
            self._ev_settle(j, tiles[j], cycle)
            state[j] = _READY
            gen[j] += 1
            if not in_now[j]:
                in_now[j] = True
                heap.append(j)
        involved = []
        for i in plans:
            involved.extend(tiles[i].inputs)
            involved.extend(tiles[i].outputs)
        for stream in involved:
            stream.sched = None
        prof = self.tick_profile
        windows = self.burst_windows
        feeds = {}
        for i in sorted(plans, reverse=True):
            tile = tiles[i]
            feed = feeds.get(id(tile.inputs[0])) if tile.inputs else None
            if prof is None:
                out_sched = tile.tick_burst(cycle, b, feed)
            else:
                t0 = perf_counter()
                out_sched = tile.tick_burst(cycle, b, feed)
                elapsed = perf_counter() - t0
                entry = prof.get(type(tile).__name__)
                if entry is None:
                    entry = prof[type(tile).__name__] = [0, 0.0]
                entry[0] += 1
                entry[1] += elapsed
            if tile.outputs:
                feeds[id(tile.outputs[0])] = out_sched
            cls = type(tile).__name__
            wl = windows.get(cls)
            if wl is None:
                wl = windows[cls] = []
            wl.append(b)
        for stream in involved:
            stream.sched = self
        return b

    def _ev_settle(self, i: int, tile, cycle: int) -> None:
        """Credit a waking tile with its skipped inert ticks."""
        counter = self._ev_sleep_counter[i]
        if counter is not None:
            skipped = cycle - self._ev_sleep_start[i]
            if skipped > 0:
                tile.sched_skip(skipped, counter)
            self._ev_sleep_counter[i] = None

    def _ev_apply_poll(self, i: int, tile, cycle: int) -> None:
        poll = tile.sched_poll(cycle)
        kind = poll[0]
        if kind == "sleep":
            self._ev_state[i] = _SLEEP
            self._ev_gen[i] += 1
            self._ev_sleep_start[i] = cycle + 1
            self._ev_sleep_counter[i] = poll[1]
            return
        if kind == "timer":
            wake = poll[1]
            if wake > cycle:
                self._ev_state[i] = _SLEEP
                g = self._ev_gen[i] = self._ev_gen[i] + 1
                self._ev_sleep_start[i] = cycle + 1
                self._ev_sleep_counter[i] = poll[2]
                heapq.heappush(self._ev_timers, (wake, g, i))
                return
            # An already-due timer means the tile is simply ready.
        if not self._ev_in_next[i]:
            self._ev_in_next[i] = True
            self._ev_next.append(i)

    def _ev_next_timer(self) -> Optional[int]:
        """Earliest live timer cycle, discarding stale entries."""
        timers = self._ev_timers
        gen = self._ev_gen
        while timers:
            wake, g, i = timers[0]
            if g == _ANY_GEN or g == gen[i]:
                return wake
            heapq.heappop(timers)
        return None

    # -- event-scheduler stream hooks (called by Stream) -------------------

    def _stream_push(self, stream) -> None:
        i = self._ev_push_wake.get(id(stream), -1)
        # Ready tiles are already scheduled; the wake call is only for
        # sleepers (the common saturated case returns here).
        if i >= 0 and self._ev_state[i] == _SLEEP:
            self._ev_wake_i(i)

    def _stream_pop(self, stream) -> None:
        i = self._ev_pop_wake.get(id(stream), -1)
        if i >= 0 and self._ev_state[i] == _SLEEP:
            self._ev_wake_i(i)

    def _stream_close(self, stream) -> None:
        i = self._ev_push_wake.get(id(stream), -1)
        if i >= 0 and self._ev_state[i] == _SLEEP:
            self._ev_wake_i(i)

    def _ev_wake(self, tile) -> None:
        i = self._ev_index.get(id(tile))
        if i is None:
            return
        if self._ev_state[i] != _SLEEP:
            # Ready tiles are already scheduled; suspended tiles resume
            # only via their stall-clear timer (events must not cut an
            # injected stall short).
            return
        self._ev_wake_i(i)

    def _ev_wake_i(self, i: int) -> None:
        """Wake sleeping tile ``i`` (caller has checked it sleeps)."""
        self._ev_state[i] = _READY
        self._ev_gen[i] += 1            # invalidate any pending timer
        if self._ev_in_round and i > self._ev_cur:
            # The waking event came from an earlier tile in this cycle's
            # tick order, so the exhaustive loop would have let this tile
            # observe it within the same cycle.  The round list is sorted
            # and i exceeds every already-visited index, so insort lands
            # the wake ahead of the cursor.
            if not self._ev_in_now[i]:
                self._ev_in_now[i] = True
                insort(self._ev_heap, i)
        elif not self._ev_in_next[i]:
            self._ev_in_next[i] = True
            self._ev_next.append(i)

    # -- shared helpers ----------------------------------------------------

    def _tick(self, tile, cycle: int) -> bool:
        """Tick with per-tile-class wall-clock accounting (``--profile``)."""
        prof = self.tick_profile
        if prof is None:
            return tile.tick(cycle)
        t0 = perf_counter()
        moved = tile.tick(cycle)
        elapsed = perf_counter() - t0
        entry = prof.get(type(tile).__name__)
        if entry is None:
            entry = prof[type(tile).__name__] = [0, 0.0]
        entry[0] += 1
        entry[1] += elapsed
        return moved

    def profile_report(self) -> str:
        """Per-tile-class cumulative tick time, heaviest first."""
        if not self.tick_profile:
            return "no profile collected (pass profile=True to Engine)"
        lines = [f"{'tile class':>20} {'ticks':>12} {'seconds':>10} {'%':>6}"]
        total = sum(sec for __, sec in self.tick_profile.values()) or 1.0
        ranked = sorted(self.tick_profile.items(),
                        key=lambda kv: kv[1][1], reverse=True)
        for name, (calls, seconds) in ranked:
            lines.append(f"{name:>20} {calls:>12} {seconds:>10.4f} "
                         f"{100.0 * seconds / total:>5.1f}%")
        return "\n".join(lines)

    def _raise_deadlock(self, cycle: int, inj) -> None:
        stuck_tiles, stuck_streams = self._stuck_state()
        if inj is not None:
            site = inj.active_stall_site(cycle)
            if site is not None:
                raise StallError(
                    f"tile {site!r} stalled past the "
                    f"{self.deadlock_window}-cycle watchdog in "
                    f"graph {self.graph.name!r} at cycle {cycle}",
                    kind="tile_stall", site=site, cycle=cycle,
                    detail=self._stuck_report(),
                )
        raise SimulationError(
            f"deadlock in graph {self.graph.name!r} at cycle "
            f"{cycle}: no progress for {self.deadlock_window} "
            f"cycles; {self._stuck_report()}",
            graph=self.graph.name, cycle=cycle, kind="deadlock",
            stuck_tiles=stuck_tiles, stuck_streams=stuck_streams,
        )

    def _raise_overrun(self, cycle: int) -> None:
        stuck_tiles, stuck_streams = self._stuck_state()
        raise SimulationError(
            f"graph {self.graph.name!r} exceeded "
            f"{self.max_cycles} cycles",
            graph=self.graph.name, cycle=cycle, kind="overrun",
            stuck_tiles=stuck_tiles, stuck_streams=stuck_streams,
        )

    def _quiescent(self) -> bool:
        for tile in self.graph.tiles:
            if isinstance(tile, SourceTile) and not tile.done():
                return False
            if not tile.idle():
                return False
        return all(s.occupancy() == 0 for s in self.graph.streams)

    def _stuck_state(self) -> Tuple[List[str], List[str]]:
        """Names of non-idle tiles and occupied streams (for diagnostics)."""
        stuck_tiles = [t.name for t in self.graph.tiles if not t.idle()]
        stuck_streams = [s.name for s in self.graph.streams if s.occupancy()]
        return stuck_tiles, stuck_streams

    def _stuck_report(self) -> str:
        """Human-readable blame report: which tile is wedged on what.

        Includes per-tile input-buffer occupancy and the head-of-line record
        of each occupied stream, so a deadlock message names the actual
        blocker instead of just listing busy components.
        """
        tile_parts = []
        for tile in self.graph.tiles:
            if tile.idle():
                continue
            inputs = ", ".join(
                f"{s.name}:{s.occupancy()}/{s.capacity}" for s in tile.inputs
            ) or "no inputs"
            tile_parts.append(f"{tile.name}[{inputs}]")
        stream_parts = []
        for stream in self.graph.streams:
            if not stream.occupancy():
                continue
            head = stream.peek()
            head_repr = repr(head[0]) if head else "<empty vector>"
            if len(head_repr) > 48:
                head_repr = head_repr[:45] + "..."
            stream_parts.append(
                f"{stream.name}({stream.occupancy()} vec, "
                f"{stream.buffered_records()} rec, head={head_repr})"
            )
        return (f"non-idle tiles={tile_parts or ['<none>']}, "
                f"occupied streams={stream_parts or ['<none>']}")

    def _collect(self, cycles: int) -> SimStats:
        stats = SimStats(cycles=cycles)
        for tile in self.graph.tiles:
            stats.tiles[tile.name] = tile.stats
            spad = getattr(tile, "spad_stats", None)
            if spad is not None:
                stats.scratchpads[tile.name] = spad
            dram = getattr(tile, "dram_stats", None)
            if dram is not None:
                stats.dram.read_bytes += dram.read_bytes
                stats.dram.write_bytes += dram.write_bytes
                stats.dram.dense_bursts += dram.dense_bursts
                stats.dram.sparse_bursts += dram.sparse_bursts
                stats.dram.busy_cycles = max(
                    stats.dram.busy_cycles, dram.busy_cycles
                )
        return stats


def run_graph(graph: Graph, max_cycles: int = 50_000_000,
              deadlock_window: int = 50_000, injector=None,
              scheduler: str = "event", burst: bool = True) -> SimStats:
    """Convenience wrapper: build an :class:`Engine` and run ``graph``."""
    return Engine(graph, max_cycles, deadlock_window, injector=injector,
                  scheduler=scheduler, burst=burst).run()
