"""The cycle-level execution engine.

Drives a :class:`~repro.dataflow.graph.Graph` one cycle at a time until the
fabric quiesces: every source exhausted, every stream drained, every tile's
internal buffers empty.  This corresponds to the paper's stream-end
condition; for cyclic pipelines it is exactly the "wait until the cyclic
pipeline has emptied" drain protocol of §III-A, observed globally instead of
via per-tile tokens.

Tiles tick in reverse insertion order (consumers before producers) so a
vector can traverse one tile per cycle without an artificial extra cycle of
buffer-full backpressure; graphs are conventionally built source-first.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.dataflow.graph import Graph
from repro.dataflow.stats import SimStats
from repro.dataflow.tile import SourceTile


class Engine:
    """Runs one graph to quiescence and reports statistics."""

    def __init__(self, graph: Graph, max_cycles: int = 50_000_000,
                 deadlock_window: int = 50_000):
        self.graph = graph
        self.max_cycles = max_cycles
        self.deadlock_window = deadlock_window

    def run(self) -> SimStats:
        """Simulate until quiescence; raise on deadlock or cycle overrun."""
        self.graph.validate()
        tiles = list(reversed(self.graph.tiles))
        cycle = 0
        last_progress = 0
        while True:
            moved = False
            for tile in tiles:
                if tile.tick(cycle):
                    moved = True
            cycle += 1
            if moved:
                last_progress = cycle
            elif self._quiescent():
                break
            elif cycle - last_progress > self.deadlock_window:
                raise SimulationError(
                    f"deadlock in graph {self.graph.name!r} at cycle {cycle}: "
                    f"no progress for {self.deadlock_window} cycles; "
                    f"{self._stuck_report()}"
                )
            if cycle > self.max_cycles:
                raise SimulationError(
                    f"graph {self.graph.name!r} exceeded {self.max_cycles} cycles"
                )
        for stream in self.graph.streams:
            stream.close()
        return self._collect(cycle)

    # -- helpers ----------------------------------------------------------

    def _quiescent(self) -> bool:
        for tile in self.graph.tiles:
            if isinstance(tile, SourceTile) and not tile.done():
                return False
            if not tile.idle():
                return False
        return all(s.occupancy() == 0 for s in self.graph.streams)

    def _stuck_report(self) -> str:
        busy_tiles = [t.name for t in self.graph.tiles if not t.idle()]
        busy_streams = [
            f"{s.name}({s.occupancy()})" for s in self.graph.streams
            if s.occupancy()
        ]
        return f"non-idle tiles={busy_tiles}, occupied streams={busy_streams}"

    def _collect(self, cycles: int) -> SimStats:
        stats = SimStats(cycles=cycles)
        for tile in self.graph.tiles:
            stats.tiles[tile.name] = tile.stats
            spad = getattr(tile, "spad_stats", None)
            if spad is not None:
                stats.scratchpads[tile.name] = spad
            dram = getattr(tile, "dram_stats", None)
            if dram is not None:
                stats.dram.read_bytes += dram.read_bytes
                stats.dram.write_bytes += dram.write_bytes
                stats.dram.dense_bursts += dram.dense_bursts
                stats.dram.sparse_bursts += dram.sparse_bursts
                stats.dram.busy_cycles = max(
                    stats.dram.busy_cycles, dram.busy_cycles
                )
        return stats


def run_graph(graph: Graph, max_cycles: int = 50_000_000,
              deadlock_window: int = 50_000) -> SimStats:
    """Convenience wrapper: build an :class:`Engine` and run ``graph``."""
    return Engine(graph, max_cycles, deadlock_window).run()
