"""The cycle-level execution engine.

Drives a :class:`~repro.dataflow.graph.Graph` one cycle at a time until the
fabric quiesces: every source exhausted, every stream drained, every tile's
internal buffers empty.  This corresponds to the paper's stream-end
condition; for cyclic pipelines it is exactly the "wait until the cyclic
pipeline has emptied" drain protocol of §III-A, observed globally instead of
via per-tile tokens.

Tiles tick in reverse insertion order (consumers before producers) so a
vector can traverse one tile per cycle without an artificial extra cycle of
buffer-full backpressure; graphs are conventionally built source-first.

Two schedulers implement that contract:

* ``scheduler="event"`` (default) — an event-driven ready-set scheduler.
  Streams notify their consumer on push/close and their producer on pop
  (freed backpressure); tiles with internal pending state (packers, issue
  queues, in-flight DRAM requests) self-schedule via per-tile wake timers.
  Each cycle only the ready set ticks, and when the ready set is empty but
  the fabric is not quiescent the engine *fast-forwards* directly to the
  next timer expiry (a DRAM completion or injected-stall clearance) —
  clamped to the deadlock-watchdog and max-cycles deadlines so errors fire
  at exactly the cycle the exhaustive loop would raise them.

* ``scheduler="exhaustive"`` — the original tick-everything loop, kept for
  differential testing.

Equivalence guarantee: a tile is only ever skipped while provably *inert*
(its tick would change nothing but one idle/stall counter), skipped
counter increments are settled in bulk via ``Tile.sched_skip`` before the
tile's next real tick, and intra-cycle event ordering matches the tick
order (an event raised by tile *i* wakes a downstream tile *j* in the same
cycle iff *j* would have ticked after *i* anyway).  Simulated cycle counts
and every ``SimStats`` field are bit-identical across the two schedulers —
``tests/test_scheduler_equivalence.py`` pins this, fault injection
included.

Reliability hooks: an optional :class:`~repro.reliability.FaultInjector`
may be passed to :class:`Engine`.  When present, it is armed on the graph
before the run (stream checksums, scratchpad bank faults), consulted for
injected tile stalls before each tick, and asked to verify end-to-end
stream integrity after the drain.  With ``injector=None`` (the default)
the hot paths are byte-for-byte the fault-free ones — cycle counts are
unchanged.  One documented divergence: for ``TILE_STALL`` events the
per-cycle ``FaultEvent.fired`` tally differs (the event engine checks a
suspended tile once per window, not once per cycle); the first firing —
what the :attr:`FaultInjector.log` records — happens at the identical
cycle under both schedulers.

Cancellation hook: an optional ``cancel`` token (duck-typed; see
:class:`repro.serving.CancelToken`) lets a caller bound a run by a cycle
deadline or cancel it cooperatively mid-flight.  The engine calls
``cancel.check(cycle)`` at the top of every simulated cycle — a stream-end
checkpoint boundary by construction: nothing has ticked yet this cycle —
and the token raises a typed :class:`~repro.errors.DeadlineExceeded` or
:class:`~repro.errors.Cancelled`.  The event scheduler additionally clamps
its fast-forward jumps to ``cancel.deadline_cycle`` so a deadline falling
inside an idle window fires at exactly the cycle the exhaustive loop would
raise it; watchdog and overrun deadlines keep priority at exact ties,
matching the exhaustive loop's check order.  Streams are closed on the
cancellation path like on every other exit, so a cancelled simulation
releases its scratchpad/DRAM graph state for reuse.  With ``cancel=None``
(the default) the only cost is one is-None test per cycle.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError, StallError
from repro.dataflow.graph import Graph
from repro.dataflow.stats import SimStats
from repro.dataflow.tile import SourceTile

#: Event-scheduler tile states.
_READY, _SLEEP, _SUSPENDED = 0, 1, 2

#: Timer generation tag that never goes stale (injected stall-start wakes).
_ANY_GEN = -1


class Engine:
    """Runs one graph to quiescence and reports statistics."""

    def __init__(self, graph: Graph, max_cycles: int = 50_000_000,
                 deadlock_window: int = 50_000, injector=None,
                 scheduler: str = "event", profile: bool = False,
                 tracer=None, cancel=None):
        if scheduler not in ("event", "exhaustive"):
            raise ValueError(
                f"unknown scheduler {scheduler!r}: use 'event' or 'exhaustive'")
        self.graph = graph
        self.max_cycles = max_cycles
        self.deadlock_window = deadlock_window
        self.injector = injector
        self.scheduler = scheduler
        #: Cancellation hook: an object with ``check(cycle)`` (raises a
        #: typed error to stop the run) and a ``deadline_cycle`` attribute
        #: (int or None) that clamps the event scheduler's fast-forward.
        #: None (the default) keeps the cancel-free hot path.
        self.cancel = cancel
        #: Observability hook: a repro.observability.Tracer, or None.  When
        #: None the hot paths are byte-for-byte the untraced ones; when set
        #: the tracer is armed on the graph at run start and consulted
        #: after every real tick (transition events + stall attribution).
        self.tracer = tracer
        #: class name -> [tick calls, cumulative seconds]; None when off.
        self.tick_profile: Optional[Dict[str, List]] = {} if profile else None

    def run(self) -> SimStats:
        """Simulate until quiescence; raise on deadlock or cycle overrun.

        Streams are closed on *every* exit path — a simulation failure must
        not leave streams open for accidental reuse.
        """
        self.graph.validate()
        inj = self.injector
        if inj is not None:
            inj.begin_run(self.graph)
        trace = self.tracer
        if trace is not None:
            trace.begin_run(self.graph)
        else:
            # Detach hooks a previously-attached tracer may have left, the
            # same way the exhaustive loop detaches stale sched hooks.
            for tile in self.graph.tiles:
                if tile.tracer is not None:
                    tile.tracer = None
            for stream in self.graph.streams:
                if stream.tracer is not None:
                    stream.tracer = None
        if self.scheduler == "exhaustive":
            return self._run_exhaustive(inj)
        return self._run_event(inj)

    # -- exhaustive scheduler ---------------------------------------------

    def _run_exhaustive(self, inj) -> SimStats:
        for stream in self.graph.streams:
            stream.sched = None         # detach stale event-engine hooks
        tiles = list(reversed(self.graph.tiles))
        prof = self.tick_profile
        trace = self.tracer
        tok = self.cancel
        cycle = 0
        last_progress = 0
        try:
            while True:
                if tok is not None:
                    tok.check(cycle)
                moved = False
                if inj is None and prof is None and trace is None:
                    for tile in tiles:
                        if tile.tick(cycle):
                            moved = True
                else:
                    if inj is not None:
                        inj.now = cycle
                    if trace is not None:
                        trace.now = cycle
                    for tile in tiles:
                        if inj is not None and inj.stalled(tile.name, cycle):
                            continue
                        ticked = self._tick(tile, cycle)
                        if trace is not None:
                            trace.tile_state(tile, cycle, ticked)
                        if ticked:
                            moved = True
                cycle += 1
                if moved:
                    last_progress = cycle
                elif self._quiescent():
                    break
                elif cycle - last_progress > self.deadlock_window:
                    self._raise_deadlock(cycle, inj)
                if cycle >= self.max_cycles:
                    self._raise_overrun(cycle)
        finally:
            if trace is not None:
                trace.now = cycle
            for stream in self.graph.streams:
                stream.close()
            if trace is not None:
                trace.finalize(cycle)
        if inj is not None:
            inj.verify_streams(self.graph, cycle)
        return self._collect(cycle)

    # -- event-driven scheduler -------------------------------------------

    def _run_event(self, inj) -> SimStats:
        graph = self.graph
        tiles = list(reversed(graph.tiles))
        n = len(tiles)
        self._ev_index = {id(t): i for i, t in enumerate(tiles)}
        state = self._ev_state = [_READY] * n
        gen = self._ev_gen = [0] * n
        # While a tile sleeps: the first skipped cycle and which TileStats
        # counter its inert ticks would have incremented.  Settlement is
        # lazy — applied just before the next real tick, or at end of run.
        sleep_start = [0] * n
        sleep_counter: List[Optional[str]] = [None] * n
        self._ev_sleep_start = sleep_start
        self._ev_sleep_counter = sleep_counter
        # This cycle's ready set as a min-heap of tile indices (tick order),
        # the next cycle's as a list + membership flags, and wake timers as
        # a heap of (cycle, generation, index) with stale-entry filtering.
        heap = self._ev_heap = list(range(n))
        in_now = self._ev_in_now = [True] * n
        nxt: List[int] = []
        in_next = self._ev_in_next = [False] * n
        self._ev_next = nxt
        timers: List[Tuple[int, int, int]] = []
        self._ev_timers = timers
        self._ev_in_round = False
        self._ev_cur = -1
        for stream in graph.streams:
            stream.sched = self
        if inj is not None:
            name_index = {t.name: i for i, t in enumerate(tiles)}
            for site, start in inj.stall_starts():
                i = name_index.get(site)
                if i is not None:
                    heapq.heappush(timers, (start, _ANY_GEN, i))
        prof = self.tick_profile
        trace = self.tracer
        tok = self.cancel
        cycle = 0
        last_progress = 0
        try:
            while True:
                if tok is not None:
                    tok.check(cycle)
                while timers and timers[0][0] <= cycle:
                    __, g, i = heapq.heappop(timers)
                    if ((g == _ANY_GEN or g == gen[i])
                            and state[i] != _READY):
                        state[i] = _READY
                        if not in_now[i]:
                            in_now[i] = True
                            heapq.heappush(heap, i)
                if heap:
                    moved = False
                    if inj is not None:
                        inj.now = cycle
                    if trace is not None:
                        trace.now = cycle
                    self._ev_in_round = True
                    while heap:
                        i = heapq.heappop(heap)
                        if not in_now[i]:
                            continue
                        in_now[i] = False
                        tile = tiles[i]
                        if inj is not None and inj.stalled(tile.name, cycle):
                            # Suspend with zero credit: the exhaustive loop
                            # skips a stalled tile without counters.
                            self._ev_settle(i, tile, cycle)
                            state[i] = _SUSPENDED
                            gen[i] += 1
                            clear = inj.stall_clear_cycle(tile.name, cycle)
                            if clear is not None:
                                heapq.heappush(timers, (clear, gen[i], i))
                            continue
                        self._ev_settle(i, tile, cycle)
                        self._ev_cur = i
                        if prof is None:
                            ticked = tile.tick(cycle)
                        else:
                            ticked = self._tick(tile, cycle)
                        if trace is not None:
                            trace.tile_state(tile, cycle, ticked)
                        if ticked:
                            moved = True
                            # A tile that moved stays ready; it polls after
                            # its next (possibly inert) tick instead.
                            if not in_next[i]:
                                in_next[i] = True
                                nxt.append(i)
                        elif not in_next[i]:
                            self._ev_apply_poll(i, tile, cycle)
                    self._ev_in_round = False
                    self._ev_cur = -1
                    for i in nxt:
                        if in_next[i]:
                            in_next[i] = False
                            state[i] = _READY
                            if not in_now[i]:
                                in_now[i] = True
                                heapq.heappush(heap, i)
                    del nxt[:]
                    cycle += 1
                    if moved:
                        last_progress = cycle
                    elif self._quiescent():
                        break
                    elif cycle - last_progress > self.deadlock_window:
                        self._raise_deadlock(cycle, inj)
                    if cycle >= self.max_cycles:
                        self._raise_overrun(cycle)
                else:
                    # Empty ready set: every tile is inert, so no state can
                    # change until a timer fires.  Check quiescence once,
                    # then fast-forward — clamped to the deadlock and
                    # overrun deadlines so errors raise at the exhaustive
                    # loop's exact cycle.
                    cycle += 1
                    if self._quiescent():
                        break
                    deadlock_at = last_progress + self.deadlock_window + 1
                    wake_at = self._ev_next_timer()
                    bound = min(deadlock_at, self.max_cycles)
                    if (tok is not None and tok.deadline_cycle is not None
                            and tok.deadline_cycle < bound
                            and (wake_at is None
                                 or tok.deadline_cycle <= wake_at)):
                        # The cancellation deadline lands inside this idle
                        # window, strictly before the watchdog/overrun
                        # deadlines (at exact ties those win, matching the
                        # exhaustive loop's check order).
                        cycle = tok.deadline_cycle
                        tok.check(cycle)
                    if wake_at is None or bound <= wake_at:
                        cycle = bound
                        if deadlock_at <= self.max_cycles:
                            self._raise_deadlock(cycle, inj)
                        self._raise_overrun(cycle)
                    cycle = wake_at
        finally:
            if trace is not None:
                trace.now = cycle
            for stream in graph.streams:
                stream.sched = None
                stream.close()
            if trace is not None:
                trace.finalize(cycle)
        # Tiles still asleep at quiescence owe their skipped counters.
        for i, counter in enumerate(sleep_counter):
            if counter is not None:
                skipped = cycle - sleep_start[i]
                if skipped > 0:
                    tiles[i].sched_skip(skipped, counter)
                sleep_counter[i] = None
        if inj is not None:
            inj.verify_streams(graph, cycle)
        return self._collect(cycle)

    def _ev_settle(self, i: int, tile, cycle: int) -> None:
        """Credit a waking tile with its skipped inert ticks."""
        counter = self._ev_sleep_counter[i]
        if counter is not None:
            skipped = cycle - self._ev_sleep_start[i]
            if skipped > 0:
                tile.sched_skip(skipped, counter)
            self._ev_sleep_counter[i] = None

    def _ev_apply_poll(self, i: int, tile, cycle: int) -> None:
        poll = tile.sched_poll(cycle)
        kind = poll[0]
        if kind == "sleep":
            self._ev_state[i] = _SLEEP
            self._ev_gen[i] += 1
            self._ev_sleep_start[i] = cycle + 1
            self._ev_sleep_counter[i] = poll[1]
            return
        if kind == "timer":
            wake = poll[1]
            if wake > cycle:
                self._ev_state[i] = _SLEEP
                g = self._ev_gen[i] = self._ev_gen[i] + 1
                self._ev_sleep_start[i] = cycle + 1
                self._ev_sleep_counter[i] = poll[2]
                heapq.heappush(self._ev_timers, (wake, g, i))
                return
            # An already-due timer means the tile is simply ready.
        if not self._ev_in_next[i]:
            self._ev_in_next[i] = True
            self._ev_next.append(i)

    def _ev_next_timer(self) -> Optional[int]:
        """Earliest live timer cycle, discarding stale entries."""
        timers = self._ev_timers
        gen = self._ev_gen
        while timers:
            wake, g, i = timers[0]
            if g == _ANY_GEN or g == gen[i]:
                return wake
            heapq.heappop(timers)
        return None

    # -- event-scheduler stream hooks (called by Stream) -------------------

    def _stream_push(self, stream) -> None:
        if stream.consumer is not None:
            self._ev_wake(stream.consumer)

    def _stream_pop(self, stream) -> None:
        if stream.producer is not None:
            self._ev_wake(stream.producer)

    def _stream_close(self, stream) -> None:
        if stream.consumer is not None:
            self._ev_wake(stream.consumer)

    def _ev_wake(self, tile) -> None:
        i = self._ev_index.get(id(tile))
        if i is None:
            return
        if self._ev_state[i] != _SLEEP:
            # Ready tiles are already scheduled; suspended tiles resume
            # only via their stall-clear timer (events must not cut an
            # injected stall short).
            return
        self._ev_state[i] = _READY
        self._ev_gen[i] += 1            # invalidate any pending timer
        if self._ev_in_round and i > self._ev_cur:
            # The waking event came from an earlier tile in this cycle's
            # tick order, so the exhaustive loop would have let this tile
            # observe it within the same cycle.
            if not self._ev_in_now[i]:
                self._ev_in_now[i] = True
                heapq.heappush(self._ev_heap, i)
        elif not self._ev_in_next[i]:
            self._ev_in_next[i] = True
            self._ev_next.append(i)

    # -- shared helpers ----------------------------------------------------

    def _tick(self, tile, cycle: int) -> bool:
        """Tick with per-tile-class wall-clock accounting (``--profile``)."""
        prof = self.tick_profile
        if prof is None:
            return tile.tick(cycle)
        t0 = perf_counter()
        moved = tile.tick(cycle)
        elapsed = perf_counter() - t0
        entry = prof.get(type(tile).__name__)
        if entry is None:
            entry = prof[type(tile).__name__] = [0, 0.0]
        entry[0] += 1
        entry[1] += elapsed
        return moved

    def profile_report(self) -> str:
        """Per-tile-class cumulative tick time, heaviest first."""
        if not self.tick_profile:
            return "no profile collected (pass profile=True to Engine)"
        lines = [f"{'tile class':>20} {'ticks':>12} {'seconds':>10} {'%':>6}"]
        total = sum(sec for __, sec in self.tick_profile.values()) or 1.0
        ranked = sorted(self.tick_profile.items(),
                        key=lambda kv: kv[1][1], reverse=True)
        for name, (calls, seconds) in ranked:
            lines.append(f"{name:>20} {calls:>12} {seconds:>10.4f} "
                         f"{100.0 * seconds / total:>5.1f}%")
        return "\n".join(lines)

    def _raise_deadlock(self, cycle: int, inj) -> None:
        stuck_tiles, stuck_streams = self._stuck_state()
        if inj is not None:
            site = inj.active_stall_site(cycle)
            if site is not None:
                raise StallError(
                    f"tile {site!r} stalled past the "
                    f"{self.deadlock_window}-cycle watchdog in "
                    f"graph {self.graph.name!r} at cycle {cycle}",
                    kind="tile_stall", site=site, cycle=cycle,
                    detail=self._stuck_report(),
                )
        raise SimulationError(
            f"deadlock in graph {self.graph.name!r} at cycle "
            f"{cycle}: no progress for {self.deadlock_window} "
            f"cycles; {self._stuck_report()}",
            graph=self.graph.name, cycle=cycle, kind="deadlock",
            stuck_tiles=stuck_tiles, stuck_streams=stuck_streams,
        )

    def _raise_overrun(self, cycle: int) -> None:
        stuck_tiles, stuck_streams = self._stuck_state()
        raise SimulationError(
            f"graph {self.graph.name!r} exceeded "
            f"{self.max_cycles} cycles",
            graph=self.graph.name, cycle=cycle, kind="overrun",
            stuck_tiles=stuck_tiles, stuck_streams=stuck_streams,
        )

    def _quiescent(self) -> bool:
        for tile in self.graph.tiles:
            if isinstance(tile, SourceTile) and not tile.done():
                return False
            if not tile.idle():
                return False
        return all(s.occupancy() == 0 for s in self.graph.streams)

    def _stuck_state(self) -> Tuple[List[str], List[str]]:
        """Names of non-idle tiles and occupied streams (for diagnostics)."""
        stuck_tiles = [t.name for t in self.graph.tiles if not t.idle()]
        stuck_streams = [s.name for s in self.graph.streams if s.occupancy()]
        return stuck_tiles, stuck_streams

    def _stuck_report(self) -> str:
        """Human-readable blame report: which tile is wedged on what.

        Includes per-tile input-buffer occupancy and the head-of-line record
        of each occupied stream, so a deadlock message names the actual
        blocker instead of just listing busy components.
        """
        tile_parts = []
        for tile in self.graph.tiles:
            if tile.idle():
                continue
            inputs = ", ".join(
                f"{s.name}:{s.occupancy()}/{s.capacity}" for s in tile.inputs
            ) or "no inputs"
            tile_parts.append(f"{tile.name}[{inputs}]")
        stream_parts = []
        for stream in self.graph.streams:
            if not stream.occupancy():
                continue
            head = stream.peek()
            head_repr = repr(head[0]) if head else "<empty vector>"
            if len(head_repr) > 48:
                head_repr = head_repr[:45] + "..."
            stream_parts.append(
                f"{stream.name}({stream.occupancy()} vec, "
                f"{stream.buffered_records()} rec, head={head_repr})"
            )
        return (f"non-idle tiles={tile_parts or ['<none>']}, "
                f"occupied streams={stream_parts or ['<none>']}")

    def _collect(self, cycles: int) -> SimStats:
        stats = SimStats(cycles=cycles)
        for tile in self.graph.tiles:
            stats.tiles[tile.name] = tile.stats
            spad = getattr(tile, "spad_stats", None)
            if spad is not None:
                stats.scratchpads[tile.name] = spad
            dram = getattr(tile, "dram_stats", None)
            if dram is not None:
                stats.dram.read_bytes += dram.read_bytes
                stats.dram.write_bytes += dram.write_bytes
                stats.dram.dense_bursts += dram.dense_bursts
                stats.dram.sparse_bursts += dram.sparse_bursts
                stats.dram.busy_cycles = max(
                    stats.dram.busy_cycles, dram.busy_cycles
                )
        return stats


def run_graph(graph: Graph, max_cycles: int = 50_000_000,
              deadlock_window: int = 50_000, injector=None,
              scheduler: str = "event") -> SimStats:
    """Convenience wrapper: build an :class:`Engine` and run ``graph``."""
    return Engine(graph, max_cycles, deadlock_window, injector=injector,
                  scheduler=scheduler).run()
