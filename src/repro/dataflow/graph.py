"""Dataflow graph construction.

A :class:`Graph` is the lowered form of a kernel: tiles connected by
streams, possibly with cycles (pointer-chasing loops recirculate threads
through a merge tile, fig. 5a).  The paper lowers SQL operator trees to such
graphs with a custom place-and-route tool; here the graph is the unit the
cycle engine executes, and resource accounting (tile counts) feeds the
analytical model's fabric constraints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TypeVar

from repro.errors import GraphError
from repro.dataflow.stream import DEFAULT_CAPACITY, Stream
from repro.dataflow.tile import SinkTile, SourceTile, Tile

T = TypeVar("T", bound=Tile)


class Graph:
    """A named collection of tiles and the streams connecting them."""

    def __init__(self, name: str):
        self.name = name
        self.tiles: List[Tile] = []
        self.streams: List[Stream] = []
        self._names: Dict[str, Tile] = {}

    def add(self, tile: T) -> T:
        """Register ``tile`` and return it (builder style)."""
        if tile.name in self._names:
            raise GraphError(f"duplicate tile name {tile.name!r} in graph {self.name}")
        self._names[tile.name] = tile
        self.tiles.append(tile)
        return tile

    def tile(self, name: str) -> Tile:
        """Look up a tile by name."""
        try:
            return self._names[name]
        except KeyError:
            raise GraphError(f"no tile named {name!r} in graph {self.name}") from None

    def connect(self, producer: Tile, consumer: Tile, *,
                producer_port: int = 0, priority: bool = False,
                capacity: int = DEFAULT_CAPACITY,
                name: Optional[str] = None) -> Stream:
        """Wire a stream from ``producer`` to ``consumer``.

        ``producer_port`` selects the output port on multi-output tiles
        (e.g. a filter's pass=0 / fail=1).  ``priority=True`` makes the
        stream the consumer's highest-priority input, which every loop-back
        edge into a merge tile must set to avoid deadlock (§III-A).
        """
        if producer not in self.tiles or consumer not in self.tiles:
            raise GraphError("connect() requires tiles added to this graph")
        stream = Stream(
            name or f"{producer.name}->{consumer.name}", capacity=capacity
        )
        self.streams.append(stream)
        # Output attachment: pipelined tiles take a port argument.
        try:
            producer.attach_output(stream, producer_port)  # type: ignore[call-arg]
        except TypeError:
            if producer_port != 0:
                raise GraphError(
                    f"{producer!r} has a single output port; got {producer_port}"
                ) from None
            producer.attach_output(stream)
        consumer.attach_input(stream)
        if priority:
            consumer.inputs.remove(stream)
            consumer.inputs.insert(0, stream)
        return stream

    # -- introspection -----------------------------------------------------

    def sources(self) -> List[SourceTile]:
        return [t for t in self.tiles if isinstance(t, SourceTile)]

    def sinks(self) -> List[SinkTile]:
        return [t for t in self.tiles if isinstance(t, SinkTile)]

    def validate(self) -> None:
        """Check structural sanity before simulation."""
        for tile in self.tiles:
            if not isinstance(tile, (SourceTile,)) and not tile.inputs:
                raise GraphError(f"tile {tile.name!r} has no inputs")
            if not isinstance(tile, (SinkTile,)) and not tile.outputs:
                # A tile whose packers all drop is legal (pure kill), but a
                # tile with zero attached output objects of any kind is a
                # wiring mistake — except filters configured to drop.
                if not _all_outputs_dropped(tile):
                    raise GraphError(f"tile {tile.name!r} has no outputs")

    def tile_counts(self) -> Dict[str, int]:
        """Count tiles by class name (fabric resource accounting)."""
        counts: Dict[str, int] = {}
        for tile in self.tiles:
            key = type(tile).__name__
            counts[key] = counts.get(key, 0) + 1
        return counts


def _all_outputs_dropped(tile: Tile) -> bool:
    packers = getattr(tile, "_packers", None)
    if packers is None:
        # Scratchpad/DRAM tiles keep per-port packers; a tile whose ports
        # are all response-less scatters legitimately has no outputs.
        ports = getattr(tile, "ports", None)
        if ports is None:
            return False
        packers = [p.packer for p in ports]
    return all(p.stream is None for p in packers)
