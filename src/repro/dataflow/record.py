"""Records and schemas: the unit of thread state in Aurochs.

Aurochs encapsulates per-thread local state in small, ephemeral *records*
(§III-A of the paper): a sequence of 32-bit fields that fully captures thread
state and streams through compute/scratchpad pipelines.  This module gives
records a runtime representation.

Records are plain Python tuples for speed; a :class:`Schema` names the fields
and provides positional lookup, extension, dropping, and projection — the
"add, drop, mutate, or permute" operations the paper applies to records as
they move between pipelines.

All fields are modelled as 32-bit words.  Values are Python ints (or floats
for ML pipelines, which Gorgon also supports); :func:`as_u32` and
:func:`as_i32` coerce to hardware-representable ranges where the data
structures need exact wraparound semantics.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Tuple

from repro.errors import SchemaError

#: Number of vector lanes in a Gorgon/Aurochs compute or scratchpad tile.
LANES = 16

#: Bit width of a record field (one lane word).
FIELD_BITS = 32

_U32_MASK = (1 << FIELD_BITS) - 1

Record = Tuple  # a record is a tuple of field values


def as_u32(value: int) -> int:
    """Coerce ``value`` to an unsigned 32-bit word (wraparound semantics)."""
    return value & _U32_MASK


def as_i32(value: int) -> int:
    """Coerce ``value`` to a signed 32-bit word (two's-complement wrap)."""
    value &= _U32_MASK
    return value - (1 << FIELD_BITS) if value >= (1 << (FIELD_BITS - 1)) else value


class Schema:
    """An ordered, named set of record fields.

    Schemas are immutable; all mutation-style methods return new schemas.
    All records in a stream share one schema (statically reconfigurable in
    hardware), so the schema lives on the stream/tile, not on each record.
    """

    __slots__ = ("fields", "_index")

    def __init__(self, fields: Iterable[str]):
        self.fields: Tuple[str, ...] = tuple(fields)
        if len(set(self.fields)) != len(self.fields):
            raise SchemaError(f"duplicate field names in schema {self.fields}")
        self._index = {name: i for i, name in enumerate(self.fields)}

    # -- lookup ----------------------------------------------------------

    def index(self, name: str) -> int:
        """Return the positional index of field ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"schema {self.fields} has no field {name!r}") from None

    def indices(self, names: Sequence[str]) -> Tuple[int, ...]:
        """Return positional indices for several fields at once."""
        return tuple(self.index(n) for n in names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        return f"Schema({list(self.fields)})"

    # -- derivation ------------------------------------------------------

    def extend(self, *names: str) -> "Schema":
        """Return a schema with ``names`` appended (a record *add*)."""
        return Schema(self.fields + names)

    def drop(self, *names: str) -> "Schema":
        """Return a schema with ``names`` removed (a record *drop*)."""
        missing = [n for n in names if n not in self._index]
        if missing:
            raise SchemaError(f"cannot drop missing fields {missing} from {self}")
        gone = set(names)
        return Schema(f for f in self.fields if f not in gone)

    def select(self, *names: str) -> "Schema":
        """Return a schema containing only ``names``, in the given order."""
        for n in names:
            self.index(n)
        return Schema(names)

    def rename(self, mapping: dict) -> "Schema":
        """Return a schema with fields renamed per ``mapping``."""
        for old in mapping:
            self.index(old)
        return Schema(mapping.get(f, f) for f in self.fields)

    def concat(self, other: "Schema", prefix: str = "") -> "Schema":
        """Return this schema followed by ``other``'s fields.

        ``prefix`` disambiguates colliding names from ``other`` (used by
        joins, which concatenate matching records).
        """
        right = []
        for f in other.fields:
            name = prefix + f if prefix else f
            if name in self._index:
                name = prefix + f if prefix else "rhs_" + f
            right.append(name)
        return Schema(self.fields + tuple(right))

    # -- record operations -------------------------------------------------

    def make(self, **values) -> Record:
        """Build a record from keyword field values (all fields required)."""
        missing = [f for f in self.fields if f not in values]
        if missing:
            raise SchemaError(f"missing fields {missing} building record for {self}")
        extra = [k for k in values if k not in self._index]
        if extra:
            raise SchemaError(f"unknown fields {extra} building record for {self}")
        return tuple(values[f] for f in self.fields)

    def get(self, record: Record, name: str):
        """Read field ``name`` from ``record``."""
        return record[self.index(name)]

    def asdict(self, record: Record) -> dict:
        """Return ``record`` as a field-name → value mapping."""
        return dict(zip(self.fields, record))

    def project(self, record: Record, names: Sequence[str]) -> Record:
        """Return a new record holding only ``names``, in order."""
        return tuple(record[self.index(n)] for n in names)

    def projector(self, names: Sequence[str]) -> Callable[[Record], Record]:
        """Return a fast callable projecting records onto ``names``."""
        idx = self.indices(names)
        return lambda record: tuple(record[i] for i in idx)

    def replacer(self, name: str) -> Callable[[Record, object], Record]:
        """Return a callable that replaces field ``name`` in a record."""
        i = self.index(name)

        def replace(record: Record, value) -> Record:
            return record[:i] + (value,) + record[i + 1:]

        return replace

    def appender(self) -> Callable[[Record, object], Record]:
        """Return a callable appending one field value to a record."""
        return lambda record, value: record + (value,)

    def validate(self, record: Record) -> None:
        """Raise :class:`SchemaError` if ``record`` has the wrong arity."""
        if len(record) != len(self.fields):
            raise SchemaError(
                f"record arity {len(record)} does not match schema {self}"
            )
