"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``info`` — package inventory and version;
* ``experiments`` — regenerate every figure/table series (fast,
  model-based; the pytest benches add cycle-level runs and assertions);
* ``queries`` — run Q1-Q9 at a chosen scale and print the fig. 14 table;
* ``area`` — the fig. 10 area-overhead breakdown;
* ``microbench`` — cycle-level microbenchmarks under either engine
  scheduler, with optional per-tile-class tick profiling;
* ``trace`` — run one microbench with the observability tracer armed and
  print the stall-attribution report, dump a per-tile timeline, or export
  a Chrome/Perfetto ``trace.json``;
* ``loadtest`` — the serving chaos harness: seeded open-loop load through
  the concurrent serving runtime (optionally with flaky replicas), check
  the serving invariants, print latency/shed-rate, exit non-zero on any
  violation.
"""

from __future__ import annotations

import argparse

import sys


def _fmt(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3g} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3g} us"
    return f"{seconds * 1e9:.3g} ns"


def cmd_info(args) -> int:
    import repro
    print(f"repro {repro.__version__} — Aurochs (ISCA 2021) reproduction")
    print("packages: dataflow, memory, structures, db, ml, baselines, "
          "perf, workloads, reliability, observability, serving")
    print("docs: README.md (overview), DESIGN.md (system inventory), "
          "EXPERIMENTS.md (paper-vs-measured)")
    return 0


def cmd_area(args) -> int:
    from repro.perf import area_report
    print(area_report())
    return 0


def cmd_experiments(args) -> int:
    from repro.perf import figures
    print("— fig. 11a: equi-join runtime vs table size —")
    s = figures.fig11a_join_scaling()
    print(f"{'rows':>12} {'Aurochs':>10} {'Gorgon':>10} {'CPU':>10} "
          f"{'GPU':>10}")
    for i, n in enumerate(s["sizes"]):
        print(f"{n:>12} {_fmt(s['aurochs'][i]):>10} "
              f"{_fmt(s['gorgon'][i]):>10} {_fmt(s['cpu'][i]):>10} "
              f"{_fmt(s['gpu'][i]):>10}")

    print("\n— fig. 11b: spatial join vs scaled table —")
    s = figures.fig11b_spatial_scaling()
    print(f"{'rows':>12} {'Aurochs':>10} {'G-sort':>10} {'G-NLJ':>10}")
    for i, n in enumerate(s["sizes"]):
        print(f"{n:>12} {_fmt(s['aurochs'][i]):>10} "
              f"{_fmt(s['gorgon_sort'][i]):>10} "
              f"{_fmt(s['gorgon_nlj'][i]):>10}")

    print("\n— fig. 12: throughput vs parallel streams (GB/s) —")
    s = figures.fig12_parallel_scaling()
    streams = s.pop("streams")
    print(f"{'kernel':>16} " + " ".join(f"p={p:<4}" for p in streams))
    for name, tps in s.items():
        print(f"{name:>16} " + " ".join(f"{tp / 1e9:<6.1f}" for tp in tps))

    print("\n— §III-A: warp execution efficiency —")
    w = figures.warp_efficiency()
    print(f"build {w['build']:.2f} (paper 0.62), "
          f"probe {w['probe']:.2f} (paper 0.46), "
          f"probe w/ barriers {w['probe_with_barrier']:.2f}")
    return 0


def cmd_queries(args) -> int:
    from repro.perf import figures
    from repro.workloads import QUERIES, RideshareConfig, generate
    cfg = RideshareConfig().scaled(args.scale)
    print(f"generating rideshare data at scale {args.scale} "
          f"({cfg.n_rides} rides)...")
    data = generate(cfg)
    q = figures.fig14_queries(data)
    print(f"{'query':>6} {'Aurochs':>10} {'CPU':>10} {'GPU':>10} "
          f"{'vsCPU':>7} {'vsGPU':>7}")
    for name, row in q.items():
        print(f"{name:>6} {_fmt(row['aurochs']):>10} "
              f"{_fmt(row['cpu']):>10} {_fmt(row['gpu']):>10} "
              f"{row['cpu'] / row['aurochs']:>6.0f}x "
              f"{row['gpu'] / row['aurochs']:>6.1f}x")
    agg = figures.geomean_speedups(q)
    print(f"geomean: {agg['vs_cpu']:.0f}x vs CPU, "
          f"{agg['vs_gpu']:.1f}x vs GPU (paper: ~160x / ~8x)")
    return 0


def _bench_case(name):
    """Build the graph for one benchmarks/bench_pr2.py case, or None."""
    import pathlib
    bench_dir = str(pathlib.Path(__file__).resolve().parents[2]
                    / "benchmarks")
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import bench_pr2
    cases = dict(bench_pr2.CASES)
    if name not in cases:
        print(f"unknown case {name!r}; choose from: "
              f"{', '.join(cases)}", file=sys.stderr)
        return None
    return cases[name]()


def _burst_window_report(engine) -> str:
    """Burst-window size histogram per tile class ('fabric' = saturated
    whole-graph windows)."""
    windows = getattr(engine, "burst_windows", None) or {}
    if not windows:
        return ("burst windows: none (burst disabled, hooks armed, or no "
                "steady-state window opened)")
    lines = [f"{'burst windows':>20} {'n':>6} {'cycles':>8} {'min':>6} "
             f"{'p50':>6} {'max':>6}"]
    for name in sorted(windows):
        sizes = sorted(windows[name])
        lines.append(f"{name:>20} {len(sizes):>6} {sum(sizes):>8} "
                     f"{sizes[0]:>6} {sizes[len(sizes) // 2]:>6} "
                     f"{sizes[-1]:>6}")
    return "\n".join(lines)


def _vector_profile_report(engine) -> str:
    """Per-kernel-kind time attribution for ``scheduler="vector"`` runs."""
    prof = getattr(engine, "vector_profile", None)
    if not prof:
        return ("vector kernels: none (scheduler is not 'vector' or no "
                "saturated window opened)")
    total = sum(sec for __, sec in prof.values()) or 1.0
    lines = [f"{'vector kernels':>20} {'calls':>8} {'time':>10} {'share':>7}"]
    for kind in sorted(prof, key=lambda k: -prof[k][1]):
        calls, sec = prof[kind]
        lines.append(f"{kind:>20} {calls:>8} {_fmt(sec):>10} "
                     f"{sec / total:>6.1%}")
    # Lambda-time attribution: per kernel family, how much window time ran
    # through batch-compiled expressions ("+expr") versus interpreted
    # callables (the legacy-lambda escape hatch).  A family showing
    # interpreted time on a hot path is a candidate for Expr conversion.
    lambda_families = {"map", "filter", "spad_read", "dram_read",
                       "sorted_merge"}
    by_family = {}
    for kind, (calls, sec) in prof.items():
        family, __, tag = kind.partition("+")
        if family not in lambda_families:
            continue                # structural kernel: no user callable
        row = by_family.setdefault(family, [0, 0.0, 0, 0.0])
        if tag:
            row[0] += calls
            row[1] += sec
        else:
            row[2] += calls
            row[3] += sec
    lines.append("")
    lines.append(f"{'lambda attribution':>20} {'compiled':>10} "
                 f"{'interpreted':>12} {'compiled%':>10}")
    for family in sorted(by_family, key=lambda f: -(by_family[f][1]
                                                    + by_family[f][3])):
        cc, cs, ic, isec = by_family[family]
        fam_total = cs + isec
        share = cs / fam_total if fam_total else 0.0
        lines.append(f"{family:>20} {_fmt(cs):>10} {_fmt(isec):>12} "
                     f"{share:>9.1%}")
    return "\n".join(lines)


def cmd_microbench(args) -> int:
    import time
    from repro.dataflow import Engine
    graph = _bench_case(args.case)
    if graph is None:
        return 2
    engine = Engine(graph, scheduler=args.scheduler, profile=args.profile,
                    burst=not args.no_burst)
    t0 = time.perf_counter()
    stats = engine.run()
    wall = time.perf_counter() - t0
    burst_tag = "" if args.scheduler == "exhaustive" else (
        ", burst off" if args.no_burst else ", burst on")
    print(f"{args.case}: {stats.cycles} simulated cycles in {_fmt(wall)} "
          f"({args.scheduler} scheduler{burst_tag})")
    if args.profile:
        print()
        print(engine.profile_report())
        print()
        print(_burst_window_report(engine))
        if args.scheduler == "vector":
            print()
            print(_vector_profile_report(engine))
    return 0


def cmd_trace(args) -> int:
    from repro.dataflow import Engine
    from repro.observability import Tracer, attribution_report
    graph = _bench_case(args.case)
    if graph is None:
        return 2
    tracer = Tracer(capacity=args.capacity) if args.capacity else Tracer()
    # An armed tracer already forces per-cycle ticks (burst windows never
    # open under per-item event hooks); --no-burst additionally covers any
    # untraced stretches and keeps bisection flags uniform across commands.
    engine = Engine(graph, scheduler=args.scheduler, tracer=tracer,
                    burst=not args.no_burst)
    stats = engine.run()
    printed = False
    if args.out:
        tracer.export_chrome(args.out)
        print(f"wrote {len(tracer.events)} events to {args.out} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
        printed = True
    if args.timeline:
        print(tracer.timeline())
        printed = True
    # The report is the default product: a bare ``repro trace`` prints it.
    if args.report or not printed:
        print(attribution_report(stats, tracer, scheduler=args.scheduler))
    return 0


def cmd_loadtest(args) -> int:
    import json
    from repro.serving import (
        LoadTestConfig, ServingWorkload, chaos_report, check_invariants,
        run_loadtest, signature)
    cfg = LoadTestConfig(
        requests=args.requests, seed=args.seed,
        mean_interarrival=args.interarrival,
        n_replicas=args.replicas, faults=args.faults,
        shards=args.shards, kills=args.kills, elastic=args.elastic,
        cache=args.cache, cache_partitions=args.cache_partitions,
        zipf=args.zipf, invalidations=args.invalidations,
        corruptions=args.corruptions, ingest=args.ingest,
        ingest_rate=args.rate, compaction_kills=args.compaction_kills)
    workload = ServingWorkload()
    runtime = run_loadtest(cfg, workload)
    violations = check_invariants(runtime)
    if args.verify_repro:
        rerun = run_loadtest(cfg, ServingWorkload())
        if signature(runtime) != signature(rerun):
            violations.append(
                "re-running the same config produced a different outcome "
                "signature (determinism broken)")
    report = chaos_report(cfg, runtime, violations)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1, default=str)
        print(f"wrote report to {args.out}")
    out = report["outcomes"]
    print(f"{cfg.requests} requests over {cfg.n_replicas} replicas "
          f"(seed {cfg.seed}, faults {'on' if cfg.faults else 'off'}): "
          f"{out['ok']} ok, {out['shed']} shed, {out['deadline']} deadline, "
          f"{out['failed']} failed, {out['partial']} partial, "
          f"{out['wrong_result']} wrong")
    if cfg.shards:
        sh = report["shards"]
        print(f"  shards[{cfg.shards}]: {sh['dispatched']} dispatched "
              f"{sh['legs']} legs hedges={sh['hedges_launched']}"
              f"/{sh['hedges_won']} won retries={sh['retries']} "
              f"lost={sh['lost']} partials={sh['partials']}")
    if cfg.cache:
        pc = report["partition_cache"]
        print(f"  cache[{cfg.cache_partitions}]: {pc['hits']} hits "
              f"{pc['partial_hits']} partial {pc['misses']} misses "
              f"(rate={pc['hit_rate']:.2f}) derived={pc['derived_hits']} "
              f"evicted={pc['evictions']} stale={pc['stale_served']}"
              f"/{pc['stale_dropped']} corrupt={pc['corruption_dropped']}")
    if cfg.ingest:
        ing = report["ingest"]
        ds, mt = ing["dataset"], ing["maintenance"]
        sv = ing["starvation"]
        print(f"  ingest: {ds['rows_ingested']} rows in "
              f"{mt['batches']} batches -> {mt['flushes']} flushes "
              f"{mt['compactions']} compactions "
              f"({ds['versions_published']} versions, "
              f"wamp={ds['write_amplification']}) "
              f"abandoned={mt['compactions_abandoned']} "
              f"torn_avoided={mt['torn_avoided']}")
        print(f"  starvation: max_memtable={sv['max_memtable']}"
              f"/{sv['memtable_bound']} "
              f"({'ok' if sv['within_bound'] else 'EXCEEDED'}) "
              f"max_wait={sv['max_wait']} escalations="
              f"{ing['escalations']}")
    if cfg.kills or cfg.elastic:
        fl = report["fleet"]
        print(f"  fleet: size={fl['size']} active={fl['active']} "
              f"grown={fl['grown']} shrunk={fl['shrunk']} "
              f"quarantined={fl['quarantined']} killed={fl['killed']}")
    for klass, lat in report["latency_cycles"].items():
        print(f"  {klass}: p50={lat['p50']} p99={lat['p99']} cycles "
              f"(n={lat['n']})")
    print(f"  shed_rate={report['shed_rate']} "
          f"retries={report['retries']} "
          f"hedges={report['hedges']['launched']}"
          f"/{report['hedges']['won']} won")
    if violations:
        print(f"\n{len(violations)} INVARIANT VIOLATION(S):",
              file=sys.stderr)
        for v in violations:
            print(f"  - {v}", file=sys.stderr)
        return 1
    print("invariants: ok")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Aurochs (ISCA 2021) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="package inventory").set_defaults(
        fn=cmd_info)
    sub.add_parser("area", help="fig. 10 area breakdown").set_defaults(
        fn=cmd_area)
    sub.add_parser(
        "experiments",
        help="regenerate figure series (model-based, fast)"
    ).set_defaults(fn=cmd_experiments)
    q = sub.add_parser("queries", help="run Q1-Q9 and compare platforms")
    q.add_argument("--scale", type=float, default=1.0,
                   help="fraction of the default dataset size (speedups grow with scale as fixed overheads amortize)")
    q.set_defaults(fn=cmd_queries)
    mb = sub.add_parser(
        "microbench",
        help="run one cycle-level microbench under a chosen scheduler")
    mb.add_argument("--case", default="probe_sparse_32t",
                    help="case name from benchmarks/bench_pr2.py")
    mb.add_argument("--scheduler", choices=("event", "exhaustive", "vector"),
                    default="event", help="engine scheduler to use")
    mb.add_argument("--no-burst", action="store_true",
                    help="disable the steady-state burst fast path "
                         "(event scheduler only; for bisecting regressions)")
    mb.add_argument("--profile", action="store_true",
                    help="report per-tile-class cumulative tick time and "
                         "the burst-window size histogram")
    mb.set_defaults(fn=cmd_microbench)
    tr = sub.add_parser(
        "trace",
        help="trace one microbench: stall attribution, timeline, trace.json")
    tr.add_argument("--case", default="probe_sparse_32t",
                    help="case name from benchmarks/bench_pr2.py")
    tr.add_argument("--scheduler", choices=("event", "exhaustive", "vector"),
                    default="event", help="engine scheduler to use")
    tr.add_argument("--report", action="store_true",
                    help="print the per-tile stall-attribution report")
    tr.add_argument("--timeline", action="store_true",
                    help="print the compact per-tile transition timeline")
    tr.add_argument("--out", metavar="PATH", default=None,
                    help="write a Chrome/Perfetto trace.json to PATH")
    tr.add_argument("--no-burst", action="store_true",
                    help="disable the steady-state burst fast path "
                         "(event scheduler only; for bisecting regressions)")
    tr.add_argument("--capacity", type=int, default=None,
                    help="event-ring capacity (default 65536)")
    tr.set_defaults(fn=cmd_trace)
    lt = sub.add_parser(
        "loadtest",
        help="serving chaos harness: open-loop load + invariant checks")
    lt.add_argument("--requests", type=int, default=200,
                    help="number of requests to generate")
    lt.add_argument("--seed", type=int, default=0,
                    help="seed for arrivals, mix, deadlines, and faults")
    lt.add_argument("--interarrival", type=int, default=350,
                    help="mean interarrival (virtual cycles; open loop)")
    lt.add_argument("--replicas", type=int, default=4,
                    help="fabric replicas in the serving pool")
    lt.add_argument("--faults", action="store_true",
                    help="make some replicas deterministically flaky")
    lt.add_argument("--shards", type=int, default=0, metavar="K",
                    help="scatter/gather fan-out for shardable joins "
                         "(power of two; 0 disables sharding)")
    lt.add_argument("--kills", type=int, default=0, metavar="N",
                    help="kill N replicas permanently at seeded cycles")
    lt.add_argument("--cache", action="store_true",
                    help="enable the semantic partition cache "
                         "(predicated joins join the mix)")
    lt.add_argument("--cache-partitions", type=int, default=4, metavar="K",
                    help="radix fan-out of cached residual runs "
                         "(default 4)")
    lt.add_argument("--zipf", type=float, default=0.0, metavar="S",
                    help="Zipf skew exponent: offer a pure predicated-join "
                         "mix with weight ∝ 1/rank^S (0 disables)")
    lt.add_argument("--invalidations", type=int, default=0, metavar="N",
                    help="seeded mid-run cache invalidations")
    lt.add_argument("--corruptions", type=int, default=0, metavar="N",
                    help="seeded cached-fragment corruptions (the CRC "
                         "tripwire must catch every one)")
    lt.add_argument("--ingest", action="store_true",
                    help="run seeded live ingestion concurrently: taxi "
                         "query flights pin snapshot versions while "
                         "flush/compaction run as background fabric work")
    lt.add_argument("--rate", type=int, default=1_200, metavar="R",
                    help="mean cycles between ingest batches "
                         "(default 1200; needs --ingest)")
    lt.add_argument("--compaction-kills", type=int, default=0, metavar="N",
                    help="kill N replicas at seeded mid-compaction cycles "
                         "(needs --ingest; a lost compaction leg must be "
                         "retried or abandoned, never published torn)")
    lt.add_argument("--elastic", action="store_true",
                    help="enable the elastic fleet "
                         "(grow/shrink/quarantine)")
    lt.add_argument("--verify-repro", action="store_true",
                    help="run twice and require bit-identical outcomes")
    lt.add_argument("--out", metavar="PATH", default=None,
                    help="write the JSON report to PATH")
    lt.set_defaults(fn=cmd_loadtest)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
