"""Cost-based operator selection (§II-A).

"Query planners choose the optimal join order and algorithm based on a
query's structure.  Sort-merge joins ... outperform hash joins for small
tables or if data is pre-sorted ... ."  Full query planning is out of the
paper's scope (and ours), but algorithm *selection* falls directly out of
the analytical cost model: price both candidates' event traces and pick
the cheaper.  Fig. 11a's crossover is exactly the decision boundary this
module computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.db.context import ExecutionContext
from repro.db.table import Table
from repro.db.operators.join import hash_join, sort_merge_join
from repro.perf.cost_model import CostModel
from repro.perf.kernels import (
    hash_join_events,
    sort_merge_join_events,
    table_scan_events,
    btree_probe_events,
)


@dataclass
class JoinChoice:
    """The optimizer's verdict for one equi-join."""

    algorithm: str            # 'hash' | 'sort_merge'
    hash_cycles: float
    sort_cycles: float

    @property
    def advantage(self) -> float:
        """Cost ratio of the rejected plan over the chosen one."""
        lo = min(self.hash_cycles, self.sort_cycles)
        hi = max(self.hash_cycles, self.sort_cycles)
        return hi / lo if lo else 1.0


class Optimizer:
    """Prices candidate algorithms with the fabric cost model."""

    def __init__(self, cost_model: Optional[CostModel] = None,
                 presorted_left: bool = False,
                 presorted_right: bool = False):
        self.cost = cost_model or CostModel(parallel_streams=8)
        self.presorted_left = presorted_left
        self.presorted_right = presorted_right

    # -- equi-join selection -----------------------------------------------

    def choose_join(self, n_left: int, n_right: int,
                    row_bytes: int = 8) -> JoinChoice:
        """Pick hash vs sort-merge for the given cardinalities."""
        hash_cost = self.cost.event_cycles(
            hash_join_events(n_left, n_right, row_bytes)).cycles
        sort_ev = sort_merge_join_events(
            0 if self.presorted_left else n_left,
            0 if self.presorted_right else n_right, row_bytes)
        # Presorted inputs skip their sort but still stream the merge.
        sort_ev.dram_read_bytes += (n_left + n_right) * row_bytes
        sort_cost = self.cost.event_cycles(sort_ev).cycles
        algorithm = "hash" if hash_cost < sort_cost else "sort_merge"
        return JoinChoice(algorithm, hash_cost, sort_cost)

    def execute_join(self, left: Table, right: Table, left_key: str,
                     right_key: str,
                     ctx: Optional[ExecutionContext] = None,
                     prefix: str = "r_") -> Table:
        """Choose and run the cheaper join."""
        choice = self.choose_join(len(left), len(right))
        if choice.algorithm == "hash":
            return hash_join(left, right, left_key, right_key, ctx, prefix)
        return sort_merge_join(left, right, left_key, right_key, ctx,
                               prefix)

    # -- access-path selection -----------------------------------------------

    def choose_range_access(self, n_rows: int, selectivity: float,
                            fanout: int = 16) -> str:
        """Index probe vs full scan for a range predicate.

        The index wins when the selected fraction is small; a scan wins
        when most of the table qualifies anyway (dense streaming beats
        per-result sparse gathers).
        """
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError("selectivity must be in [0, 1]")
        n_out = max(1, int(n_rows * selectivity))
        scan = self.cost.event_cycles(table_scan_events(n_rows)).cycles
        probe_ev = btree_probe_events(1, n_rows, fanout)
        # Add the gather of the qualifying rows themselves.
        probe_ev.dram_read_bytes += n_out * 8
        probe_ev.dram_sparse_accesses += n_out
        probe = self.cost.event_cycles(probe_ev).cycles
        return "index" if probe < scan else "scan"

    def crossover_size(self, lo: int = 10 ** 3, hi: int = 10 ** 9) -> int:
        """Table size where the hash join starts beating sort-merge
        (symmetric joins) — fig. 11a's crossover, found by bisection."""
        if self.choose_join(lo, lo).algorithm == "hash":
            return lo
        while hi - lo > max(1, lo // 100):
            mid = (lo + hi) // 2
            if self.choose_join(mid, mid).algorithm == "hash":
                hi = mid
            else:
                lo = mid
        return hi
