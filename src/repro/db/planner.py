"""Manual query planning with parallelization knobs (§V-B).

The paper lowers "a manually-planned SQL operator tree to a graph of
compute and scratchpad tiles"; nodes carry "parallelization parameters to
trade off throughput with compute and scratchpad tile requirements", and a
place-and-route tool maps tiles onto the 20×20 fabric.  This module models
that resource side: a :class:`PlanNode` tree whose nodes declare how many
compute/scratchpad tiles one stream instance needs, a ``parallel`` knob
multiplying instances, and a placement check against the fabric's tile
budget.  Fig. 12's throughput-vs-parallelization sweep walks this knob.

It also owns the serving tier's *predicate algebra*: a
:class:`Predicate` is a canonicalized conjunction of per-column atoms
(membership sets and half-open ranges) with a stable hash key and a
sound-but-conservative subsumption test.  The semantic partition cache
(:mod:`repro.serving.partition_cache`) keys cached result fragments by
predicate class and answers narrower queries from fragments cached for
broader ones — both operations reduce to :meth:`Predicate.key` equality
and :meth:`Predicate.subsumes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import PlanError
from repro.perf.params import AUROCHS, FabricParams

#: Tiles one stream instance of each operator class occupies (compute,
#: scratchpad) — derived from the dataflow mappings in §IV's figures.
OPERATOR_TILES: Dict[str, tuple] = {
    "filter": (1, 0),
    "map": (1, 0),
    "project": (1, 0),
    "limit": (1, 0),
    "sort": (2, 2),
    "hash_join": (6, 3),          # partition + build + probe pipelines
    "sort_merge_join": (4, 4),
    "nested_loop_join": (2, 1),
    "hash_group_by": (3, 2),
    "sort_group_by": (3, 3),
    "interval_group_by": (3, 2),
    "window_aggregate": (3, 2),
    "distance_join": (4, 2),      # dual-tree descent + refinement
    "containment_join": (4, 2),
    "window_select": (3, 1),
    "index_range_scan": (2, 1),
    "ml_predict": (2, 1),
}


@dataclass
class PlanNode:
    """One physical operator in a manually-planned tree."""

    op: str
    parallel: int = 1
    children: List["PlanNode"] = field(default_factory=list)
    label: str = ""

    def __post_init__(self):
        if self.op not in OPERATOR_TILES:
            raise PlanError(f"unknown operator {self.op!r} in plan")
        if self.parallel < 1:
            raise PlanError("parallel must be >= 1")

    # -- resources -----------------------------------------------------------

    def own_tiles(self) -> tuple:
        c, s = OPERATOR_TILES[self.op]
        return c * self.parallel, s * self.parallel

    def total_tiles(self) -> tuple:
        c, s = self.own_tiles()
        for child in self.children:
            cc, cs = child.total_tiles()
            c, s = c + cc, s + cs
        return c, s

    def nodes(self) -> List["PlanNode"]:
        out = [self]
        for child in self.children:
            out.extend(child.nodes())
        return out

    def scale(self, factor: int) -> "PlanNode":
        """A copy of the subtree with every parallel knob multiplied."""
        return PlanNode(self.op, self.parallel * factor,
                        [c.scale(factor) for c in self.children], self.label)


class Placer:
    """Fabric-budget check: the stand-in for the paper's place-and-route."""

    def __init__(self, fabric: FabricParams = AUROCHS):
        self.fabric = fabric

    def fits(self, plan: PlanNode) -> bool:
        c, s = plan.total_tiles()
        return (c <= self.fabric.compute_tiles
                and s <= self.fabric.memory_tiles)

    def place(self, plan: PlanNode) -> Dict[str, int]:
        """Raise :class:`PlanError` if over budget; else return usage."""
        c, s = plan.total_tiles()
        if c > self.fabric.compute_tiles:
            raise PlanError(
                f"plan needs {c} compute tiles; fabric has "
                f"{self.fabric.compute_tiles}")
        if s > self.fabric.memory_tiles:
            raise PlanError(
                f"plan needs {s} scratchpad tiles; fabric has "
                f"{self.fabric.memory_tiles}")
        return {"compute_tiles": c, "memory_tiles": s,
                "compute_util": c / self.fabric.compute_tiles,
                "memory_util": s / self.fabric.memory_tiles}

    def max_parallel(self, plan: PlanNode) -> int:
        """Largest uniform scaling factor that still places."""
        factor = 1
        while self.fits(plan.scale(factor + 1)):
            factor += 1
        return factor


# ---------------------------------------------------------------------------
# Predicate algebra for the semantic partition cache
# ---------------------------------------------------------------------------
#
# A predicate is a conjunction of per-column atoms.  Canonical form keeps
# exactly one constraint per column:
#
#   ("in", v1, v2, ...)   value ∈ {v1, v2, ...}   (sorted, deduplicated)
#   ("range", lo, hi)     lo <= value < hi        (None = unbounded side)
#
# Equality atoms become singleton in-sets; multiple atoms on one column are
# intersected (in-sets intersect, ranges take max-lo/min-hi, an in-set meeting
# a range is filtered through it).  A contradiction canonicalizes to the empty
# in-set — "matches nothing" — never to an error, so hashing and subsumption
# stay total.  The canonical constraint tuple, sorted by column name, is the
# predicate's identity: reordering or re-stating atoms cannot change it.

def _value_order(value) -> tuple:
    """Deterministic cross-type sort key for canonical in-set ordering."""
    if isinstance(value, bool):
        return ("bool", "", int(value))
    if isinstance(value, (int, float)):
        return ("num", "", float(value))
    return (type(value).__name__, str(value), 0.0)


def _range_contains(lo, hi, value) -> bool:
    if lo is not None and not value >= lo:
        return False
    if hi is not None and not value < hi:
        return False
    return True


@dataclass(frozen=True)
class Predicate:
    """A canonical conjunction of per-column membership/range constraints.

    Build with the classmethod constructors and ``&``::

        p = (Predicate.in_("driverId", range(8))
             & Predicate.ge("rating", 4.0)
             & Predicate.lt("seats", 6))

    ``Predicate.true()`` is the empty conjunction (matches every row).
    """

    constraints: Tuple[Tuple[str, Tuple], ...] = ()

    # -- constructors --------------------------------------------------------

    @staticmethod
    def true() -> "Predicate":
        return Predicate()

    @staticmethod
    def of(*atoms: Tuple[str, str, object]) -> "Predicate":
        """Canonicalize ``(op, column, value)`` atoms; op ∈ in/eq/ge/lt."""
        members: Dict[str, Optional[frozenset]] = {}
        lows: Dict[str, object] = {}
        highs: Dict[str, object] = {}
        columns: List[str] = []
        for op, column, value in atoms:
            if column not in members:
                members[column] = None
                columns.append(column)
            if op == "in":
                vals = frozenset(value)
                prior = members[column]
                members[column] = vals if prior is None else prior & vals
            elif op == "eq":
                prior = members[column]
                vals = frozenset((value,))
                members[column] = vals if prior is None else prior & vals
            elif op == "ge":
                if column not in lows or value > lows[column]:
                    lows[column] = value
            elif op == "lt":
                if column not in highs or value < highs[column]:
                    highs[column] = value
            else:
                raise PlanError(f"unknown predicate op {op!r}")
        out: List[Tuple[str, Tuple]] = []
        for column in sorted(columns):
            mem = members[column]
            lo = lows.get(column)
            hi = highs.get(column)
            if mem is not None:
                kept = tuple(sorted(
                    (v for v in mem if _range_contains(lo, hi, v)),
                    key=_value_order))
                out.append((column, ("in",) + kept))
            elif lo is not None and hi is not None and not lo < hi:
                out.append((column, ("in",)))    # contradictory range
            elif lo is not None or hi is not None:
                out.append((column, ("range", lo, hi)))
            # no constraint at all: drop the column
        return Predicate(tuple(out))

    @staticmethod
    def in_(column: str, values: Iterable) -> "Predicate":
        return Predicate.of(("in", column, tuple(values)))

    @staticmethod
    def eq(column: str, value) -> "Predicate":
        return Predicate.of(("eq", column, value))

    @staticmethod
    def ge(column: str, value) -> "Predicate":
        return Predicate.of(("ge", column, value))

    @staticmethod
    def lt(column: str, value) -> "Predicate":
        return Predicate.of(("lt", column, value))

    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate.of(*(self.atoms() + other.atoms()))

    def atoms(self) -> Tuple[Tuple[str, str, object], ...]:
        """Decompose back into constructor atoms (canonical order)."""
        out: List[Tuple[str, str, object]] = []
        for column, spec in self.constraints:
            if spec[0] == "in":
                out.append(("in", column, spec[1:]))
            else:
                lo, hi = spec[1], spec[2]
                if lo is not None:
                    out.append(("ge", column, lo))
                if hi is not None:
                    out.append(("lt", column, hi))
        return tuple(out)

    # -- identity ------------------------------------------------------------

    @property
    def always_true(self) -> bool:
        return not self.constraints

    def key(self) -> Tuple:
        """Stable hashable identity — equal for any atom ordering."""
        return self.constraints

    def columns(self) -> Tuple[str, ...]:
        return tuple(column for column, _ in self.constraints)

    def constraint(self, column: str) -> Optional[Tuple]:
        for col, spec in self.constraints:
            if col == column:
                return spec
        return None

    # -- evaluation ----------------------------------------------------------

    def evaluator(self, schema) -> Callable[[tuple], bool]:
        """Compile to a row filter against ``schema`` (needs ``.index``).

        Returns an :class:`~repro.dataflow.expr.Expr` — a conjunction of
        per-column in-set/range nodes — rather than an opaque closure.
        It is still a plain ``keep(row) -> bool`` callable, but the
        functional operators and the vector backend's fused kernels can
        batch-compile it, so every catalog predicate rides the columnar
        fast path.  In-set membership and the half-open range test are
        emitted with the exact semantics of the previous closure
        (``_range_contains`` operand order, NaN included).
        """
        from repro.dataflow.expr import All, Field, InRange, InSet

        terms = []
        for column, spec in self.constraints:
            idx = schema.index(column)
            if spec[0] == "in":
                terms.append(InSet(Field(idx), frozenset(spec[1:])))
            else:
                terms.append(InRange(Field(idx), spec[1], spec[2]))
        return All(tuple(terms))

    def matches(self, value, column: str) -> bool:
        """Does a single column value satisfy this predicate's constraint?"""
        spec = self.constraint(column)
        if spec is None:
            return True
        if spec[0] == "in":
            return value in spec[1:]
        return _range_contains(spec[1], spec[2], value)

    # -- lattice -------------------------------------------------------------

    def subsumes(self, other: "Predicate") -> bool:
        """Sound containment: every row matching ``other`` matches ``self``.

        Conservative on in-set-vs-range (reports ``False`` even when an
        in-set happens to enumerate a whole range) — a false negative only
        costs a cache miss, never a wrong answer.
        """
        for column, mine in self.constraints:
            theirs = other.constraint(column)
            if theirs is None:
                return False            # they are looser on this column
            if mine[0] == "in":
                if theirs[0] != "in":
                    return False
                if not frozenset(theirs[1:]) <= frozenset(mine[1:]):
                    return False
            else:
                lo, hi = mine[1], mine[2]
                if theirs[0] == "in":
                    if not all(_range_contains(lo, hi, v) for v in theirs[1:]):
                        return False
                else:
                    tlo, thi = theirs[1], theirs[2]
                    if lo is not None and (tlo is None or tlo < lo):
                        return False
                    if hi is not None and (thi is None or thi > hi):
                        return False
        return True

    def split(self, column: str) -> Tuple["Predicate", "Predicate"]:
        """Partition into (constraint on ``column``, everything else)."""
        on = tuple((c, s) for c, s in self.constraints if c == column)
        rest = tuple((c, s) for c, s in self.constraints if c != column)
        return Predicate(on), Predicate(rest)
