"""Manual query planning with parallelization knobs (§V-B).

The paper lowers "a manually-planned SQL operator tree to a graph of
compute and scratchpad tiles"; nodes carry "parallelization parameters to
trade off throughput with compute and scratchpad tile requirements", and a
place-and-route tool maps tiles onto the 20×20 fabric.  This module models
that resource side: a :class:`PlanNode` tree whose nodes declare how many
compute/scratchpad tiles one stream instance needs, a ``parallel`` knob
multiplying instances, and a placement check against the fabric's tile
budget.  Fig. 12's throughput-vs-parallelization sweep walks this knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import PlanError
from repro.perf.params import AUROCHS, FabricParams

#: Tiles one stream instance of each operator class occupies (compute,
#: scratchpad) — derived from the dataflow mappings in §IV's figures.
OPERATOR_TILES: Dict[str, tuple] = {
    "filter": (1, 0),
    "map": (1, 0),
    "project": (1, 0),
    "limit": (1, 0),
    "sort": (2, 2),
    "hash_join": (6, 3),          # partition + build + probe pipelines
    "sort_merge_join": (4, 4),
    "nested_loop_join": (2, 1),
    "hash_group_by": (3, 2),
    "sort_group_by": (3, 3),
    "interval_group_by": (3, 2),
    "window_aggregate": (3, 2),
    "distance_join": (4, 2),      # dual-tree descent + refinement
    "containment_join": (4, 2),
    "window_select": (3, 1),
    "index_range_scan": (2, 1),
    "ml_predict": (2, 1),
}


@dataclass
class PlanNode:
    """One physical operator in a manually-planned tree."""

    op: str
    parallel: int = 1
    children: List["PlanNode"] = field(default_factory=list)
    label: str = ""

    def __post_init__(self):
        if self.op not in OPERATOR_TILES:
            raise PlanError(f"unknown operator {self.op!r} in plan")
        if self.parallel < 1:
            raise PlanError("parallel must be >= 1")

    # -- resources -----------------------------------------------------------

    def own_tiles(self) -> tuple:
        c, s = OPERATOR_TILES[self.op]
        return c * self.parallel, s * self.parallel

    def total_tiles(self) -> tuple:
        c, s = self.own_tiles()
        for child in self.children:
            cc, cs = child.total_tiles()
            c, s = c + cc, s + cs
        return c, s

    def nodes(self) -> List["PlanNode"]:
        out = [self]
        for child in self.children:
            out.extend(child.nodes())
        return out

    def scale(self, factor: int) -> "PlanNode":
        """A copy of the subtree with every parallel knob multiplied."""
        return PlanNode(self.op, self.parallel * factor,
                        [c.scale(factor) for c in self.children], self.label)


class Placer:
    """Fabric-budget check: the stand-in for the paper's place-and-route."""

    def __init__(self, fabric: FabricParams = AUROCHS):
        self.fabric = fabric

    def fits(self, plan: PlanNode) -> bool:
        c, s = plan.total_tiles()
        return (c <= self.fabric.compute_tiles
                and s <= self.fabric.memory_tiles)

    def place(self, plan: PlanNode) -> Dict[str, int]:
        """Raise :class:`PlanError` if over budget; else return usage."""
        c, s = plan.total_tiles()
        if c > self.fabric.compute_tiles:
            raise PlanError(
                f"plan needs {c} compute tiles; fabric has "
                f"{self.fabric.compute_tiles}")
        if s > self.fabric.memory_tiles:
            raise PlanError(
                f"plan needs {s} scratchpad tiles; fabric has "
                f"{self.fabric.memory_tiles}")
        return {"compute_tiles": c, "memory_tiles": s,
                "compute_util": c / self.fabric.compute_tiles,
                "memory_util": s / self.fabric.memory_tiles}

    def max_parallel(self, plan: PlanNode) -> int:
        """Largest uniform scaling factor that still places."""
        factor = 1
        while self.fits(plan.scale(factor + 1)):
            factor += 1
        return factor
