"""Relational layer: tables, physical operators, execution tracing, and the
manual query planner with parallelization knobs (§V-B)."""

from repro.db.table import Table
from repro.db.context import ExecutionContext, OpTrace
from repro.db import operators
from repro.db.optimizer import JoinChoice, Optimizer
from repro.db.planner import Placer, PlanNode

__all__ = [
    "Table", "ExecutionContext", "OpTrace", "operators",
    "JoinChoice", "Optimizer", "Placer", "PlanNode",
]
