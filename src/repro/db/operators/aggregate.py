"""Aggregation operators: hash-based (Aurochs) and sort-based (Gorgon).

An aggregation spec maps output field names to ``(op, input_field)``
pairs, where ``op`` is one of ``count``, ``sum``, ``avg``, ``min``,
``max`` (``count`` ignores the input field).  Hash aggregation groups in
O(n) using the chained hash table; sort aggregation pre-sorts on the group
key in O(n log n) — the same asymptotic contrast as the joins (fig. 11).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.db.context import ExecutionContext
from repro.db.table import Table
from repro.db.operators.sortutil import charge_sort
from repro.dataflow.record import Schema
from repro.errors import PlanError
from repro.structures.common import StructureEvents
from repro.structures.hashtable import ChainedHashTable

AggSpec = Dict[str, Tuple[str, Optional[str]]]

_VALID_OPS = ("count", "sum", "avg", "min", "max", "count_distinct")


class _Accumulator:
    """One group's running aggregates."""

    __slots__ = ("count", "sums", "mins", "maxs", "distincts")

    def __init__(self, n_values: int):
        self.count = 0
        self.sums = [0.0] * n_values
        self.mins = [None] * n_values
        self.maxs = [None] * n_values
        self.distincts = [set() for __ in range(n_values)]

    def update(self, values: Sequence) -> None:
        self.count += 1
        for i, v in enumerate(values):
            self.sums[i] += v
            if self.mins[i] is None or v < self.mins[i]:
                self.mins[i] = v
            if self.maxs[i] is None or v > self.maxs[i]:
                self.maxs[i] = v
            self.distincts[i].add(v)

    def result(self, op: str, i: int):
        if op == "count":
            return self.count
        if op == "sum":
            return self.sums[i]
        if op == "avg":
            return self.sums[i] / self.count if self.count else 0.0
        if op == "min":
            return self.mins[i]
        if op == "count_distinct":
            return len(self.distincts[i])
        return self.maxs[i]


def _validate(aggs: AggSpec) -> None:
    for out_field, (op, __) in aggs.items():
        if op not in _VALID_OPS:
            raise PlanError(f"unknown aggregate op {op!r} for {out_field!r}")


def _finalize(name: str, by: Sequence[str], aggs: AggSpec,
              groups: Sequence[Tuple[Tuple, "_Accumulator"]],
              value_fields: Sequence[str]) -> Table:
    field_pos = {f: i for i, f in enumerate(value_fields)}
    schema = Schema(tuple(by) + tuple(aggs.keys()))
    rows = []
    for key, acc in groups:
        agg_vals = tuple(
            acc.result(op, field_pos[f] if f is not None else 0)
            for op, f in aggs.values()
        )
        rows.append(tuple(key) + agg_vals)
    return Table(name, schema, rows)


def _group_rows(table: Table, by: Sequence[str], aggs: AggSpec):
    """Shared grouping core; yields (value_fields, key_of, val_of)."""
    _validate(aggs)
    value_fields = sorted({f for __, f in aggs.values() if f is not None})
    key_of = table.schema.projector(by)
    val_of = table.schema.projector(value_fields) if value_fields else None
    return value_fields, key_of, val_of


def hash_group_by(table: Table, by: Sequence[str], aggs: AggSpec,
                  ctx: Optional[ExecutionContext] = None,
                  name: Optional[str] = None) -> Table:
    """O(n) grouping via the chained hash table (Aurochs' aggregation)."""
    value_fields, key_of, val_of = _group_rows(table, by, aggs)
    events = StructureEvents()
    ht = ChainedHashTable(
        n_buckets=max(16, 1 << max(0, (len(table) // 4 - 1)).bit_length()),
        events=events)
    groups: list = []
    for row in table.rows:
        key = key_of(row)
        hit = ht.probe(key)
        if hit:
            acc = groups[hit[0]][1]
        else:
            acc = _Accumulator(len(value_fields))
            ht.insert(key, len(groups))
            groups.append((key, acc))
        acc.update(val_of(row) if val_of else ())
    out = _finalize(name or f"{table.name}_agg", by, aggs, groups,
                    value_fields)
    if ctx is not None:
        ctx.trace("hash_group_by", len(table), len(out), events)
    return out


def sort_group_by(table: Table, by: Sequence[str], aggs: AggSpec,
                  ctx: Optional[ExecutionContext] = None,
                  name: Optional[str] = None) -> Table:
    """O(n log n) grouping by sorting on the group key (Gorgon baseline)."""
    value_fields, key_of, val_of = _group_rows(table, by, aggs)
    events = StructureEvents()
    charge_sort(events, len(table), len(table.schema.fields) * 4)
    rows = sorted(table.rows, key=key_of)
    groups: list = []
    current_key = object()
    acc: Optional[_Accumulator] = None
    for row in rows:
        key = key_of(row)
        if key != current_key:
            acc = _Accumulator(len(value_fields))
            groups.append((key, acc))
            current_key = key
        acc.update(val_of(row) if val_of else ())
    events.records_processed += len(rows)
    out = _finalize(name or f"{table.name}_agg", by, aggs, groups,
                    value_fields)
    if ctx is not None:
        ctx.trace("sort_group_by", len(table), len(out), events)
    return out


def interval_group_by(table: Table, time_field: str, interval: int,
                      aggs: AggSpec,
                      by: Sequence[str] = (),
                      ctx: Optional[ExecutionContext] = None,
                      name: Optional[str] = None) -> Table:
    """Group rows into fixed time buckets (SQL ``GROUP BY INTERVAL``).

    Adds a ``bucket`` column (``time // interval``) and hash-groups on it
    (plus any additional ``by`` fields) — Q2/Q3's 10-minute ride counts.
    """
    if interval <= 0:
        raise PlanError("interval must be positive")
    ti = table.col_index(time_field)
    bucketed = Table(table.name, table.schema.extend("bucket"),
                     [r + (r[ti] // interval,) for r in table.rows])
    return hash_group_by(bucketed, tuple(by) + ("bucket",), aggs, ctx,
                         name or f"{table.name}_interval")
