"""Join operators.

The paper's core comparison (fig. 11a) is between:

* :func:`hash_join` — Aurochs' O(n) radix-partitioned hash join: partition
  both tables on the hash of the join key so each partition's hash table
  fits in a 256 KiB scratchpad, then build from one side and probe with
  the other (§IV-A);
* :func:`sort_merge_join` — the Gorgon-style O(n log n) join: sort both
  sides with tiled merge sort, then a linear merge;
* :func:`nested_loop_join` — the all-to-all fallback Gorgon needs for
  spatial predicates without indices (fig. 11b's infeasible baseline).

All joins concatenate matching rows, prefixing right-side field names on
collision.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

from repro.db.context import ExecutionContext
from repro.db.table import Table
from repro.db.operators.sortutil import charge_sort
from repro.dataflow.record import Schema
from repro.memory.scratchpad import CAPACITY_WORDS
from repro.structures.common import StructureEvents
from repro.structures.hashtable import NODE_WORDS, ChainedHashTable
from repro.structures.partition import RadixPartitioner


def _joined_schema(left: Table, right: Table, prefix: str) -> Schema:
    return left.schema.concat(right.schema, prefix)


def key_getter(table: Table, key):
    """Key extractor for a single field name or a composite-key sequence.

    Composite keys model Gorgon's wide keys: fields wider than one lane
    are serialized across pipeline stages (§II-B), so a multi-field key is
    just a longer record comparison — functionally a tuple key here.
    """
    if isinstance(key, str):
        return table.getter(key)
    idx = [table.col_index(f) for f in key]
    return lambda row: tuple(row[i] for i in idx)


def choose_partitions(build_rows: int, row_words: int = NODE_WORDS) -> int:
    """Partition count so the expected per-partition table fits on-chip.

    The paper chooses the count so expected partition size matches the
    256 KiB scratchpad (§IV-A); outliers spill to the DRAM overflow path.
    """
    rows_per_spad = max(1, (CAPACITY_WORDS // 2) // row_words)
    needed = max(1, math.ceil(build_rows / rows_per_spad))
    return 1 << max(0, (needed - 1).bit_length())


def hash_join(left: Table, right: Table, left_key, right_key,
              ctx: Optional[ExecutionContext] = None,
              prefix: str = "r_",
              n_partitions: Optional[int] = None,
              name: Optional[str] = None) -> Table:
    """Radix-partitioned hash join (build = right side, probe = left side).

    ``left_key``/``right_key`` are single field names or sequences of
    field names (composite wide keys, §II-B).
    """
    lk = key_getter(left, left_key)
    rk = key_getter(right, right_key)
    events = StructureEvents()
    if n_partitions is None:
        n_partitions = choose_partitions(len(right))

    # Phase 1: partition both tables on the join-key hash.
    part_r = RadixPartitioner(n_partitions, events=events)
    part_r.partition((rk(row), row) for row in right.rows)
    part_l = RadixPartitioner(n_partitions, events=events)
    part_l.partition((lk(row), row) for row in left.rows)

    # Phase 2: per partition, build on-chip and probe at line rate.
    rows_per_spad = max(1, (CAPACITY_WORDS // 2) // NODE_WORDS)
    out_rows = []
    for p in range(n_partitions):
        build_side = part_r.read_partition(p)
        if not build_side:
            continue
        ht = ChainedHashTable(
            n_buckets=max(8, 1 << (len(build_side) - 1).bit_length()),
            spad_node_capacity=rows_per_spad, events=events)
        for row in build_side:
            ht.insert(rk(row), row)
        for lrow in part_l.read_partition(p):
            for rrow in ht.probe(lk(lrow)):
                out_rows.append(lrow + rrow)

    out = Table(name or f"{left.name}_join_{right.name}",
                _joined_schema(left, right, prefix), out_rows)
    if ctx is not None:
        ctx.trace("hash_join", len(left) + len(right), len(out), events,
                  note=f"{n_partitions} partitions")
    return out


def sort_merge_join(left: Table, right: Table, left_key, right_key,
                    ctx: Optional[ExecutionContext] = None,
                    prefix: str = "r_",
                    name: Optional[str] = None) -> Table:
    """Sort both sides, then linear merge (the Gorgon baseline join).

    Accepts single or composite keys like :func:`hash_join`.
    """
    lk = key_getter(left, left_key)
    rk = key_getter(right, right_key)
    events = StructureEvents()
    charge_sort(events, len(left), len(left.schema.fields) * 4)
    charge_sort(events, len(right), len(right.schema.fields) * 4)
    lrows = sorted(left.rows, key=lk)
    rrows = sorted(right.rows, key=rk)
    events.records_processed += len(lrows) + len(rrows)

    out_rows = []
    j = 0
    for lrow in lrows:
        key = lk(lrow)
        while j < len(rrows) and rk(rrows[j]) < key:
            j += 1
        k = j
        while k < len(rrows) and rk(rrows[k]) == key:
            out_rows.append(lrow + rrows[k])
            k += 1
    out = Table(name or f"{left.name}_smj_{right.name}",
                _joined_schema(left, right, prefix), out_rows)
    if ctx is not None:
        ctx.trace("sort_merge_join", len(left) + len(right), len(out), events)
    return out


def nested_loop_join(left: Table, right: Table,
                     pred: Callable[[Tuple, Tuple], bool],
                     ctx: Optional[ExecutionContext] = None,
                     prefix: str = "r_",
                     name: Optional[str] = None) -> Table:
    """All-pairs join — O(n·m), the index-less spatial fallback."""
    events = StructureEvents()
    events.records_processed += len(left) * len(right)
    events.dram_read_bytes += (
        len(left) * len(right.schema.fields) * len(right) * 4
    ) // max(1, len(right))  # both streams scanned; right re-streamed per tile
    out_rows = [lrow + rrow for lrow in left.rows for rrow in right.rows
                if pred(lrow, rrow)]
    out = Table(name or f"{left.name}_nlj_{right.name}",
                _joined_schema(left, right, prefix), out_rows)
    if ctx is not None:
        ctx.trace("nested_loop_join", len(left) + len(right), len(out), events)
    return out
