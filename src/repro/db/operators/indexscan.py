"""Index scans over LSM-backed time-series indices (§IV-B).

Time-series queries touch a narrow time window of a large fact table;
scanning is O(n) while an index probe is O(log n) — the asymptotic gap
fig. 11 relies on.  :class:`TimeSeriesIndex` maintains an LSM tree mapping
a time column to row ids; :func:`index_range_scan` answers ``time BETWEEN
lo AND hi`` by probing the index instead of scanning.
"""

from __future__ import annotations

from typing import Optional

from repro.db.context import ExecutionContext
from repro.db.table import Table
from repro.structures.common import StructureEvents
from repro.structures.lsm import LsmTree


class TimeSeriesIndex:
    """An LSM-tree index on one integer column of a table.

    The index stores ``(time_value, row_id)`` pairs; streaming inserts
    batch through the LSM exactly as §IV-B describes, so index maintenance
    cost (merge amplification) is observable via ``lsm.events``.
    """

    def __init__(self, table: Table, time_field: str,
                 batch_size: int = 4096, fanout: int = 16):
        self.table = table
        self.time_field = time_field
        self.lsm = LsmTree(batch_size=batch_size, fanout=fanout)
        ti = table.col_index(time_field)
        for i, row in enumerate(table.rows):
            self.lsm.insert(row[ti], i)
        self.lsm.flush()

    def append(self, row) -> None:
        """Ingest one new row into the table and the index."""
        self.table.rows.append(row)
        ti = self.table.col_index(self.time_field)
        self.lsm.insert(row[ti], len(self.table.rows) - 1)

    def row_ids(self, lo: int, hi: int):
        return [rid for __, rid in self.lsm.range_query(lo, hi)]


def index_range_scan(index: TimeSeriesIndex, lo: int, hi: int,
                     ctx: Optional[ExecutionContext] = None,
                     name: Optional[str] = None) -> Table:
    """Rows of the indexed table with ``lo <= time <= hi``."""
    events = StructureEvents()
    before = index.lsm.events.asdict()
    ids = index.row_ids(lo, hi)
    after = index.lsm.events.asdict()
    for k in before:
        setattr(events, k, after[k] - before[k])
    # Fetch matched rows from the base table (sparse gathers).
    table = index.table
    rows = [table.rows[i] for i in ids]
    events.dram_read_bytes += len(rows) * len(table.schema.fields) * 4
    events.dram_sparse_accesses += len(rows)
    out = table.with_rows(rows, name or f"{table.name}_range")
    if ctx is not None:
        ctx.trace("index_range_scan", len(table), len(out), events,
                  note=f"[{lo}, {hi}]")
    return out
