"""Sort cost accounting shared by sort-based operators.

The implementation (and the executable tiled merge sort that validates
it) lives in :mod:`repro.structures.sort`; this module re-exports the
accounting helpers at the operator layer where joins/aggregations use
them.
"""

from repro.structures.sort import (
    MERGE_RADIX,
    ONCHIP_SORT_ROWS,
    charge_sort,
    sort_passes,
)

__all__ = ["MERGE_RADIX", "ONCHIP_SORT_ROWS", "charge_sort", "sort_passes"]
