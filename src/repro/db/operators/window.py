"""Windowed aggregation (SQL ``OVER (PARTITION BY ... ORDER BY ...)``).

Q5 computes per-driver sliding-window statistics that feed an ML predictor.
Rows are hash-partitioned on the partition key, sorted within each
partition on the order key, and a sliding frame (``ROWS BETWEEN n
PRECEDING AND CURRENT ROW``) accumulates the aggregates.  Every input row
produces an output row extended with the window aggregate columns.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Sequence, Tuple

from repro.db.context import ExecutionContext
from repro.db.table import Table
from repro.db.operators.sortutil import charge_sort
from repro.errors import PlanError
from repro.structures.common import StructureEvents

WindowAggSpec = Dict[str, Tuple[str, str]]  # out_field -> (op, in_field)


def window_aggregate(table: Table, partition_by: str, order_by: str,
                     aggs: WindowAggSpec, preceding: int,
                     ctx: Optional[ExecutionContext] = None,
                     name: Optional[str] = None) -> Table:
    """Sliding-window aggregates over each partition.

    ``preceding`` is the frame size minus one: each output row aggregates
    itself and up to ``preceding`` prior rows of its partition in
    ``order_by`` order.
    """
    if preceding < 0:
        raise PlanError("preceding must be non-negative")
    for out_field, (op, __) in aggs.items():
        if op not in ("avg", "sum", "min", "max", "count"):
            raise PlanError(f"unsupported window op {op!r} for {out_field!r}")

    events = StructureEvents()
    pi = table.col_index(partition_by)
    oi = table.col_index(order_by)
    in_idx = {f: table.col_index(f) for __, f in aggs.values()}

    # Hash partition rows on the partition key.
    partitions: Dict[object, list] = {}
    for row in table.rows:
        partitions.setdefault(row[pi], []).append(row)
    events.rmw_ops += len(table)          # partition scatter
    events.spad_reads += len(table)

    out_rows = []
    frame_len = preceding + 1
    for rows in partitions.values():
        rows.sort(key=lambda r: r[oi])
        charge_sort(events, len(rows), len(table.schema.fields) * 4)
        window: deque = deque(maxlen=frame_len)
        for row in rows:
            window.append(row)
            agg_vals = []
            for op, f in aggs.values():
                vals = [r[in_idx[f]] for r in window]
                if op == "count":
                    agg_vals.append(len(vals))
                elif op == "sum":
                    agg_vals.append(sum(vals))
                elif op == "avg":
                    agg_vals.append(sum(vals) / len(vals))
                elif op == "min":
                    agg_vals.append(min(vals))
                else:
                    agg_vals.append(max(vals))
            out_rows.append(row + tuple(agg_vals))

    schema = table.schema
    for out_field in aggs:
        schema = schema.extend(out_field)
    out = Table(name or f"{table.name}_window", schema, out_rows)
    if ctx is not None:
        ctx.trace("window_aggregate", len(table), len(out), events,
                  note=f"frame={frame_len}")
    return out
