"""Streaming relational operators: filter, project, order-by, limit.

These are Gorgon's native line-rate record operators (§II-B); on Aurochs
they are single compute tiles.  Each logs an :class:`OpTrace` so the cost
model can price the stream lengths.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.db.context import ExecutionContext
from repro.db.table import Table
from repro.db.operators.sortutil import charge_sort
from repro.dataflow.expr import Expr
from repro.dataflow.record import Record
from repro.structures.common import StructureEvents


def scan_filter(table: Table, pred: Callable[[Record], bool],
                ctx: Optional[ExecutionContext] = None,
                name: Optional[str] = None) -> Table:
    """Keep rows satisfying ``pred`` (a filter tile on the scan stream).

    An :class:`~repro.dataflow.expr.Expr` predicate runs batch-compiled
    over the whole scan (one call, expression inlined per row); a legacy
    callable pays one Python call per row.  The accounting is identical.
    """
    if isinstance(pred, Expr):
        rows = pred.filter_batch(table.rows)
    else:
        rows = [r for r in table.rows if pred(r)]
    out = table.with_rows(rows, name)
    if ctx is not None:
        ev = StructureEvents(records_processed=len(table))
        ev.dram_read_bytes = len(table) * len(table.schema.fields) * 4
        ev.dram_dense_accesses = max(1, len(table) // 16)
        ctx.trace("filter", len(table), len(out), ev)
    return out


def project(table: Table, fields: Sequence[str],
            ctx: Optional[ExecutionContext] = None,
            name: Optional[str] = None) -> Table:
    """Keep only ``fields`` (record field drop/permute in a map tile)."""
    out = table.project(fields, name)
    if ctx is not None:
        ctx.trace("project", len(table), len(out),
                  StructureEvents(records_processed=len(table)))
    return out


def extend(table: Table, field: str, fn: Callable[[Record], object],
           ctx: Optional[ExecutionContext] = None,
           name: Optional[str] = None) -> Table:
    """Append a computed column (record field add in a map tile)."""
    out = table.extend(field, fn, name)
    if ctx is not None:
        ctx.trace("map", len(table), len(out),
                  StructureEvents(records_processed=len(table)))
    return out


def order_by(table: Table, field: str, reverse: bool = False,
             ctx: Optional[ExecutionContext] = None,
             name: Optional[str] = None) -> Table:
    """Sort rows (Gorgon's tiled merge-sort kernel)."""
    out = table.sort_by(field, reverse, name)
    if ctx is not None:
        ev = StructureEvents()
        charge_sort(ev, len(table), len(table.schema.fields) * 4)
        ctx.trace("sort", len(table), len(out), ev)
    return out


def limit(table: Table, n: int,
          ctx: Optional[ExecutionContext] = None,
          name: Optional[str] = None) -> Table:
    """Keep the first ``n`` rows."""
    out = table.with_rows(table.rows[:n], name)
    if ctx is not None:
        ctx.trace("limit", len(table), len(out))
    return out


def distinct(table: Table, fields: Optional[Sequence[str]] = None,
             ctx: Optional[ExecutionContext] = None,
             name: Optional[str] = None) -> Table:
    """Deduplicate rows (on ``fields`` if given, else whole rows).

    Implemented as a hash-table membership test — one CAS-guarded insert
    per row, the same scratchpad pattern as the hash build (§IV-A).
    First occurrence wins; input order is preserved.
    """
    from repro.structures.hashtable import ChainedHashTable

    key_of = (table.schema.projector(fields) if fields
              else (lambda row: row))
    events = StructureEvents()
    seen = ChainedHashTable(max(16, 1 << max(0, (len(table) // 2 - 1)
                                             ).bit_length()),
                            events=events)
    out_rows = []
    for row in table.rows:
        key = key_of(row)
        if not seen.contains(key):
            seen.insert(key, True)
            out_rows.append(row)
    out = table.with_rows(out_rows, name or f"{table.name}_distinct")
    if ctx is not None:
        ctx.trace("distinct", len(table), len(out), events)
    return out


def top_k(table: Table, field: str, k: int, smallest: bool = True,
          ctx: Optional[ExecutionContext] = None,
          name: Optional[str] = None) -> Table:
    """ORDER BY ``field`` LIMIT ``k`` without a full sort.

    A bounded heap keeps the running top-k as the stream passes — O(n
    log k) instead of O(n log n), the streaming form accelerators prefer
    for LIMIT queries like Q9's nearest-100.
    """
    import heapq

    if k < 0:
        raise ValueError("k must be non-negative")
    i = table.col_index(field)
    if smallest:
        rows = heapq.nsmallest(k, table.rows, key=lambda r: r[i])
    else:
        rows = heapq.nlargest(k, table.rows, key=lambda r: r[i])
    events = StructureEvents(records_processed=len(table))
    events.spad_reads = len(table)      # heap maintenance on-chip
    out = table.with_rows(rows, name or f"{table.name}_top{k}")
    if ctx is not None:
        ctx.trace("top_k", len(table), len(out), events,
                  note=f"k={k} {'asc' if smallest else 'desc'}")
    return out
