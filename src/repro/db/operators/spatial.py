"""Spatial operators over Z-order packed R-trees (§IV-C).

The queries use two geospatial predicates:

* ``GEO.DIST(a, b, radius)`` — point pairs within Euclidean ``radius``;
  implemented as an R-tree join with rectangles dilated by the radius
  plus an exact distance refinement;
* point-in-region containment (``location.bounds`` vs a point) — an
  R-tree join with a containment refinement.

Coordinates are integers on the 16-bit Z-order grid; the workload
generator maps the city onto this grid with ~10 m resolution, so a
"1 km" radius is ~100 grid units.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.db.context import ExecutionContext
from repro.db.table import Table
from repro.dataflow.record import Schema
from repro.structures.common import StructureEvents
from repro.structures.rtree import (
    PackedRTree,
    contains,
    euclidean,
    point_rect,
    spatial_join,
)


def build_point_index(table: Table, x_field: str, y_field: str,
                      fanout: int = 16,
                      events: Optional[StructureEvents] = None
                      ) -> PackedRTree:
    """Bulk-load an R-tree over a table's points; values are row indices."""
    xi, yi = table.col_index(x_field), table.col_index(y_field)
    entries = [(point_rect(row[xi], row[yi]), i)
               for i, row in enumerate(table.rows)]
    return PackedRTree.bulk_load(entries, fanout, events=events)


def build_rect_index(table: Table, fields: Tuple[str, str, str, str],
                     fanout: int = 16,
                     events: Optional[StructureEvents] = None
                     ) -> PackedRTree:
    """Bulk-load an R-tree over a table's bounding rectangles."""
    idx = [table.col_index(f) for f in fields]
    entries = [((row[idx[0]], row[idx[1]], row[idx[2]], row[idx[3]]), i)
               for i, row in enumerate(table.rows)]
    return PackedRTree.bulk_load(entries, fanout, events=events)


def _joined(left: Table, right: Table, pairs, prefix: str,
            name: str) -> Table:
    schema = left.schema.concat(right.schema, prefix)
    rows = [left.rows[i] + right.rows[j] for i, j in pairs]
    return Table(name, schema, rows)


def distance_join(left: Table, right: Table,
                  left_xy: Tuple[str, str], right_xy: Tuple[str, str],
                  radius: int,
                  ctx: Optional[ExecutionContext] = None,
                  prefix: str = "r_",
                  name: Optional[str] = None) -> Table:
    """Join point pairs within Euclidean ``radius`` (GEO.DIST)."""
    events = StructureEvents()
    lt = build_point_index(left, *left_xy, events=events)
    rt = build_point_index(right, *right_xy, events=events)
    matches = spatial_join(
        lt, rt, within=radius,
        exact=lambda a, b: euclidean(a, b) <= radius,
        events=events)
    pairs = [(va, vb) for __, va, __, vb in matches]
    out = _joined(left, right, pairs, prefix,
                  name or f"{left.name}_dist_{right.name}")
    if ctx is not None:
        ctx.trace("distance_join", len(left) + len(right), len(out), events,
                  note=f"radius={radius}",
                  meta={"left": len(left), "right": len(right)})
    return out


def containment_join(regions: Table,
                     bounds_fields: Tuple[str, str, str, str],
                     points: Table, point_xy: Tuple[str, str],
                     ctx: Optional[ExecutionContext] = None,
                     prefix: str = "r_",
                     name: Optional[str] = None) -> Table:
    """Join each region with the points inside its bounding rectangle."""
    events = StructureEvents()
    region_tree = build_rect_index(regions, bounds_fields, events=events)
    point_tree = build_point_index(points, *point_xy, events=events)
    matches = spatial_join(
        region_tree, point_tree,
        exact=lambda region, pt: contains(region, pt),
        events=events)
    pairs = [(va, vb) for __, va, __, vb in matches]
    out = _joined(regions, points, pairs, prefix,
                  name or f"{regions.name}_contains_{points.name}")
    if ctx is not None:
        ctx.trace("containment_join", len(regions) + len(points), len(out),
                  events, meta={"left": len(regions), "right": len(points)})
    return out


def window_select(table: Table, x_field: str, y_field: str,
                  query_rect: Tuple[int, int, int, int],
                  index: Optional[PackedRTree] = None,
                  ctx: Optional[ExecutionContext] = None,
                  name: Optional[str] = None) -> Table:
    """Rows whose point falls inside ``query_rect`` via an R-tree window
    query (builds the index on the fly unless one is supplied)."""
    events = StructureEvents()
    tree = index or build_point_index(table, x_field, y_field, events=events)
    hits = tree.window_query(query_rect)
    rows = [table.rows[i] for __, i in hits]
    out = table.with_rows(rows, name or f"{table.name}_window")
    if ctx is not None:
        events.merge(tree.events)
        ctx.trace("window_select", len(table), len(out), events)
    return out
