"""Physical operators: the SQL layer Aurochs exposes (§III-A exposes the
kernels "as SQL operators with parallelization knobs")."""

from repro.db.operators.basic import (
    distinct,
    extend,
    limit,
    order_by,
    project,
    scan_filter,
    top_k,
)
from repro.db.operators.join import (
    choose_partitions,
    hash_join,
    nested_loop_join,
    sort_merge_join,
)
from repro.db.operators.aggregate import (
    hash_group_by,
    interval_group_by,
    sort_group_by,
)
from repro.db.operators.window import window_aggregate
from repro.db.operators.spatial import (
    build_point_index,
    build_rect_index,
    containment_join,
    distance_join,
    window_select,
)
from repro.db.operators.indexscan import TimeSeriesIndex, index_range_scan
from repro.db.operators.stream import sliding_window_join, symmetric_hash_join
from repro.db.operators.sortutil import charge_sort, sort_passes

__all__ = [
    "distinct", "extend", "limit", "order_by", "project", "scan_filter",
    "top_k",
    "choose_partitions", "hash_join", "nested_loop_join", "sort_merge_join",
    "hash_group_by", "interval_group_by", "sort_group_by",
    "window_aggregate",
    "build_point_index", "build_rect_index", "containment_join",
    "distance_join", "window_select",
    "TimeSeriesIndex", "index_range_scan",
    "sliding_window_join", "symmetric_hash_join",
    "charge_sort", "sort_passes",
]
