"""Streaming joins (§II-A, §IV-A).

Time-series databases ingest streams and correlate them with
sliding-window joins.  Aurochs' lock-free hash tables make the *symmetric
hash join* natural: "two streams build hash tables with the other's
records that they simultaneously probe with their own" — every arriving
record inserts into its own side's table and probes the opposite side's,
emitting matches with no phase separation, which is what gives stream
joins their low latency.  Dual-ported scratchpads schedule the concurrent
reads and writes with no performance impact (§IV-A).

:func:`symmetric_hash_join` consumes two arrival-ordered streams;
:func:`sliding_window_join` additionally evicts matches outside a time
window, the shape of Q1's stream-stream correlation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.db.context import ExecutionContext
from repro.db.table import Table
from repro.structures.common import StructureEvents
from repro.structures.hashtable import ChainedHashTable


def symmetric_hash_join(left: Table, right: Table,
                        left_key: str, right_key: str,
                        ctx: Optional[ExecutionContext] = None,
                        prefix: str = "r_",
                        name: Optional[str] = None) -> Table:
    """Join two streams with symmetric hash tables.

    Rows are treated as arrival-ordered streams and interleaved; each
    arrival builds into its side's table and probes the other side's
    table *as it exists so far*.  The full result equals the batch join,
    but matches surface incrementally — the emission order is by arrival,
    which tests assert to pin the streaming semantics.
    """
    events = StructureEvents()
    lk = left.getter(left_key)
    rk = right.getter(right_key)
    left_table = ChainedHashTable(
        max(16, 1 << max(0, (len(left) // 2 - 1)).bit_length()),
        events=events)
    right_table = ChainedHashTable(
        max(16, 1 << max(0, (len(right) // 2 - 1)).bit_length()),
        events=events)
    out_rows: List[Tuple] = []
    for lrow, rrow in _interleave(left.rows, right.rows):
        if lrow is not None:
            key = lk(lrow)
            left_table.insert(key, lrow)
            for match in right_table.probe(key):
                out_rows.append(lrow + match)
        if rrow is not None:
            key = rk(rrow)
            right_table.insert(key, rrow)
            for match in left_table.probe(key):
                out_rows.append(match + rrow)
    out = Table(name or f"{left.name}_sym_{right.name}",
                left.schema.concat(right.schema, prefix), out_rows)
    if ctx is not None:
        ctx.trace("symmetric_hash_join", len(left) + len(right), len(out),
                  events)
    return out


def sliding_window_join(left: Table, right: Table,
                        left_key: str, right_key: str,
                        left_time: str, right_time: str,
                        window: int,
                        ctx: Optional[ExecutionContext] = None,
                        prefix: str = "r_",
                        name: Optional[str] = None) -> Table:
    """Symmetric join keeping only pairs within ``window`` time units.

    Both inputs must be time-ordered (streams are).  Matching is still
    hash-based on the join key; the time predicate filters matches, and
    expired entries are skipped (append-only tables make true deletion
    unnecessary — expiry is a probe-side filter, matching Aurochs'
    persistent-structure discipline).
    """
    events = StructureEvents()
    lk, lt = left.getter(left_key), left.getter(left_time)
    rk, rt = right.getter(right_key), right.getter(right_time)
    left_table = ChainedHashTable(1024, events=events)
    right_table = ChainedHashTable(1024, events=events)
    out_rows: List[Tuple] = []

    li = ri = 0
    lrows, rrows = left.rows, right.rows
    while li < len(lrows) or ri < len(rrows):
        take_left = ri >= len(rrows) or (
            li < len(lrows) and lt(lrows[li]) <= rt(rrows[ri]))
        if take_left:
            row = lrows[li]
            li += 1
            left_table.insert(lk(row), row)
            for match in right_table.probe(lk(row)):
                if abs(lt(row) - rt(match)) <= window:
                    out_rows.append(row + match)
        else:
            row = rrows[ri]
            ri += 1
            right_table.insert(rk(row), row)
            for match in left_table.probe(rk(row)):
                if abs(rt(row) - lt(match)) <= window:
                    out_rows.append(match + row)
    out = Table(name or f"{left.name}_win_{right.name}",
                left.schema.concat(right.schema, prefix), out_rows)
    if ctx is not None:
        ctx.trace("sliding_window_join", len(left) + len(right), len(out),
                  events, note=f"window={window}")
    return out


def _interleave(a: List, b: List) -> Iterable[Tuple]:
    """Alternate two row lists, yielding (left_or_None, right_or_None)."""
    n = max(len(a), len(b))
    for i in range(n):
        yield (a[i] if i < len(a) else None,
               b[i] if i < len(b) else None)
