"""Lowering relational operators to tile graphs (§V-B).

"Aurochs lowers a manually-planned SQL operator tree to a graph of
compute and scratchpad tiles."  The functional operators in
``repro.db.operators`` are the fast path; this module is the other half:
it actually *runs* operators on the simulated fabric, composing the §IV
dataflow pipelines (radix partition → CAS build → recirculating probe)
and returning both the relational result and the simulation statistics.

Tests assert lowered execution is record-equivalent to the functional
operators; the microbenchmarks use the returned cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.dataflow import (
    FilterTile,
    Graph,
    SinkTile,
    SourceTile,
    run_functional,
    run_graph,
)
from repro.dataflow.stats import SimStats
from repro.db.table import Table
from repro.errors import PlanError
from repro.structures.hashing import radix_of
from repro.structures.hashtable import HashTableDataflow
from repro.structures.partition import PartitionerDataflow


@dataclass
class LoweredResult:
    """A lowered operator's output table plus its simulation record."""

    table: Table
    graphs: int = 0
    total_cycles: int = 0
    stats: List[SimStats] = field(default_factory=list)

    def record(self, stats: SimStats) -> None:
        self.graphs += 1
        self.total_cycles += stats.cycles
        self.stats.append(stats)


def partition_set_of(predicate, key_column: str,
                     n_partitions: int) -> Tuple[int, ...]:
    """Radix partitions a predicate's join-key constraint can touch.

    An in-set constraint on the key column maps each member through the
    same ``radix_of`` used by the partitioner, so only those partitions
    need to run (or be served from cache).  A range or absent constraint
    hashes to unpredictable partitions, so the honest answer is the full
    set — never a guess that could drop rows.
    """
    spec = predicate.constraint(key_column)
    if spec is not None and spec[0] == "in":
        return tuple(sorted({radix_of(v, n_partitions) for v in spec[1:]}))
    return tuple(range(n_partitions))


def _runner(engine: str) -> Callable[[Graph], SimStats]:
    if engine == "cycle":
        return run_graph
    if engine == "functional":
        return run_functional
    raise PlanError(f"unknown lowering engine {engine!r}")


def lower_filter(table: Table, pred, engine: str = "cycle",
                 name: Optional[str] = None) -> LoweredResult:
    """Run a filter on a single compute tile."""
    run = _runner(engine)
    g = Graph("lowered_filter")
    src = g.add(SourceTile("src", table.rows))
    filt = g.add(FilterTile("filt", pred))
    sink = g.add(SinkTile("sink"))
    g.connect(src, filt)
    g.connect(filt, sink, producer_port=0)
    filt.drop_output(1)
    stats = run(g)
    result = LoweredResult(
        table.with_rows(sink.records, name or f"{table.name}_filtered"))
    result.record(stats)
    return result


def lower_hash_join(left: Table, right: Table, left_key: str,
                    right_key: str, n_partitions: int = 4,
                    spad_node_capacity: int = 4096,
                    engine: str = "cycle",
                    prefix: str = "r_",
                    name: Optional[str] = None) -> LoweredResult:
    """Run a radix-partitioned hash join entirely on the fabric.

    Phase 1 scatters both tables into DRAM partitions with the fig. 7b
    pipeline; phase 2, per partition, builds an on-chip hash table from
    the right side with the fig. 6c CAS pipeline and probes it with the
    left side's records through the fig. 6a recirculating pipeline.
    """
    run = _runner(engine)
    lk = left.getter(left_key)
    rk = right.getter(right_key)
    result = LoweredResult(Table(name or f"{left.name}_join_{right.name}",
                                 left.schema.concat(right.schema, prefix)))

    # Phase 1: partition both sides on the join-key hash.
    parts = {}
    for side, table, key_of in (("L", left, lk), ("R", right, rk)):
        pd = PartitionerDataflow(
            n_partitions, block_size=32,
            max_blocks=max(64, 4 * len(table) // 32 + n_partitions),
            name=f"part{side}")
        keyed = [(key_of(row), row) for row in table.rows]
        stats = run(pd.build_graph(keyed))
        result.record(stats)
        parts[side] = pd

    # Phase 2: per partition, build from the right side, probe with left.
    out_rows = []
    for p in range(n_partitions):
        build_side = parts["R"].read_partition(p)
        probe_side = parts["L"].read_partition(p)
        if not build_side or not probe_side:
            continue
        ht = HashTableDataflow(
            n_buckets=max(16, 1 << (len(build_side) - 1).bit_length()),
            spad_node_capacity=spad_node_capacity,
            overflow_capacity=max(64, 2 * len(build_side)),
            name=f"ht{p}")
        stats = run(ht.build_graph(build_side))
        result.record(stats)
        # Probe queries carry the left row index so hits can be joined.
        queries = [(i, key) for i, (key, __row) in enumerate(probe_side)]
        g = ht.probe_graph(queries, emit_all=True)
        stats = run(g)
        result.record(stats)
        for qid, __key, rrow in g.tile("hits").records:
            out_rows.append(probe_side[qid][1] + rrow)
    result.table.rows = out_rows
    return result


def lower_group_count(table: Table, group_key: str, n_groups: int,
                      engine: str = "cycle",
                      name: Optional[str] = None) -> LoweredResult:
    """COUNT(*) GROUP BY a dense integer key, via scratchpad FAA.

    Each record's thread FAAs the counter at its group's scratchpad slot
    — the aggregation pattern of §III-A's cross-thread communication.
    Requires ``0 <= key < n_groups`` (dense group ids); general keys go
    through the hash-table path instead.
    """
    from repro.memory import PortConfig, ScratchpadMemory, ScratchpadTile, faa
    from repro.dataflow import Schema
    from repro.dataflow.expr import Const, Field

    run = _runner(engine)
    ki = table.col_index(group_key)
    mem = ScratchpadMemory("agg")
    counters = mem.region("counters", n_groups, 1, fill=0)
    g = Graph("lowered_group_count")
    src = g.add(SourceTile("src", table.rows))
    agg = g.add(ScratchpadTile("agg", mem, [PortConfig(
        mode="rmw", region=counters, addr=Field(ki),
        rmw=faa(), combine=Const(None))]))
    g.connect(src, agg)
    stats = run(g)
    rows = [(gid, counters[gid]) for gid in range(n_groups)
            if counters[gid] > 0]
    result = LoweredResult(Table(name or f"{table.name}_counts",
                                 Schema([group_key, "count"]), rows))
    result.record(stats)
    return result
