"""Execution context: event accounting across a query's operator tree.

Every physical operator logs an :class:`OpTrace` — cardinalities plus the
hardware events (:class:`~repro.structures.common.StructureEvents`) its
data structures generated.  The analytical cost model prices these traces
into Aurochs cycles, which is how large-dataset runtimes are projected,
mirroring the paper's analytical-model methodology (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Type

from repro.errors import FaultError
from repro.observability.metrics import MetricsRegistry
from repro.structures.common import StructureEvents


@dataclass
class OpTrace:
    """One operator's execution record.

    ``meta`` carries operator-specific facts the baseline models need —
    e.g. spatial joins record both side cardinalities so the GPU model can
    price its brute-force pair kernel.
    """

    op: str
    rows_in: int
    rows_out: int
    events: StructureEvents = field(default_factory=StructureEvents)
    note: str = ""
    meta: dict = field(default_factory=dict)


class ExecutionContext:
    """Accumulates traces and merged events for one query execution."""

    def __init__(self):
        self.traces: List[OpTrace] = []
        self.events = StructureEvents()
        self.retry_log: List = []      # RetryAttempt records, see run_with_retry
        # Cycle-level observability rolls up here: operators that run a
        # traced simulation fold the Tracer's registry in via record_sim(),
        # giving per-query stall counters / occupancy / MLP histograms.
        self.metrics = MetricsRegistry()

    def run_with_retry(self, fn: Callable[["ExecutionContext"], object], *,
                       policy=None,
                       retry_on: Tuple[Type[BaseException], ...] = (FaultError,),
                       sleep: Optional[Callable[[float], None]] = None,
                       deadline: Optional[float] = None):
        """Execute ``fn(ctx)`` with fault-retry and exponential backoff.

        ``fn`` receives a *fresh* sub-context per attempt so a failed
        attempt's partial traces do not pollute this context; on success
        the winning attempt's traces are merged in.  Failed attempts are
        recorded in :attr:`retry_log` (kind, site, computed backoff delay —
        deterministic for a given policy seed).  ``sleep`` is the wall-clock
        backoff hook; the default ``None`` logs delays without sleeping,
        which is what a simulator wants.  ``deadline`` bounds the cumulative
        computed backoff (seconds): once spent, the last typed error is
        re-raised instead of retrying past the caller's budget — the
        query-level analogue of the serving tier's cycle deadlines.
        """
        from repro.reliability.retry import RetryPolicy, retry_call

        policy = policy if policy is not None else RetryPolicy()

        def attempt():
            sub = ExecutionContext()
            result = fn(sub)
            for t in sub.traces:
                self.traces.append(t)
                self.events.merge(t.events)
            self.metrics.merge(sub.metrics)
            return result

        return retry_call(attempt, policy=policy, retry_on=retry_on,
                          sleep=sleep, log=self.retry_log,
                          deadline=deadline)

    def trace(self, op: str, rows_in: int, rows_out: int,
              events: Optional[StructureEvents] = None,
              note: str = "", meta: Optional[dict] = None) -> OpTrace:
        t = OpTrace(op, rows_in, rows_out,
                    events if events is not None else StructureEvents(),
                    note, meta or {})
        self.traces.append(t)
        self.events.merge(t.events)
        return t

    def record_sim(self, tracer) -> None:
        """Fold a finished cycle-level run's metrics into this query.

        ``tracer`` is a :class:`repro.observability.Tracer` whose engine
        run has completed (``finalize`` baked its registry).  Merging here
        rather than keeping a reference lets one query accumulate several
        simulated fragments — and the tracer be reused for the next one.
        """
        self.metrics.merge(tracer.metrics)

    def total_rows(self) -> int:
        return sum(t.rows_in for t in self.traces)

    def summary(self) -> str:
        lines = []
        for t in self.traces:
            lines.append(f"  {t.op}: {t.rows_in} -> {t.rows_out} rows"
                         + (f" ({t.note})" if t.note else ""))
        return "\n".join(lines)
