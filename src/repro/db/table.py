"""Relational tables: named-column collections of record tuples.

Gorgon processes *record streams*; at the query level a :class:`Table` is a
materialized stream with a :class:`~repro.dataflow.Schema`.  Rows are plain
tuples (the same representation the dataflow layer streams), so operators
can hand tables to tile pipelines without conversion.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.dataflow.record import Record, Schema
from repro.errors import SchemaError


class Table:
    """An ordered multiset of rows sharing one schema."""

    def __init__(self, name: str, schema: Schema,
                 rows: Optional[Iterable[Record]] = None):
        self.name = name
        self.schema = schema
        self.rows: List[Record] = list(rows) if rows is not None else []

    @classmethod
    def from_columns(cls, name: str, **columns: Sequence) -> "Table":
        """Build a table from equal-length column sequences."""
        schema = Schema(columns.keys())
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns building table {name!r}")
        return cls(name, schema, list(zip(*columns.values())))

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, field: str) -> List:
        """Materialize one column."""
        i = self.schema.index(field)
        return [row[i] for row in self.rows]

    def col_index(self, field: str) -> int:
        return self.schema.index(field)

    def head(self, n: int = 5) -> List[dict]:
        """First ``n`` rows as dicts (debugging convenience)."""
        return [self.schema.asdict(r) for r in self.rows[:n]]

    # -- derivation ---------------------------------------------------------

    def with_rows(self, rows: Iterable[Record],
                  name: Optional[str] = None) -> "Table":
        """Same schema, new rows."""
        return Table(name or self.name, self.schema, rows)

    def project(self, fields: Sequence[str],
                name: Optional[str] = None) -> "Table":
        proj = self.schema.projector(fields)
        return Table(name or self.name, Schema(fields),
                     [proj(r) for r in self.rows])

    def rename(self, mapping: dict, name: Optional[str] = None) -> "Table":
        return Table(name or self.name, self.schema.rename(mapping),
                     self.rows)

    def extend(self, field: str, fn: Callable[[Record], object],
               name: Optional[str] = None) -> "Table":
        """Append a computed column."""
        return Table(name or self.name, self.schema.extend(field),
                     [r + (fn(r),) for r in self.rows])

    def getter(self, field: str) -> Callable[[Record], object]:
        """A fast single-field accessor for this table's rows."""
        i = self.schema.index(field)
        return lambda row: row[i]

    def sort_by(self, field: str, reverse: bool = False,
                name: Optional[str] = None) -> "Table":
        i = self.schema.index(field)
        return self.with_rows(
            sorted(self.rows, key=lambda r: r[i], reverse=reverse), name)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self.rows)} rows, {self.schema})"
