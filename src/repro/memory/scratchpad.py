"""Banked SRAM scratchpad storage.

Each Gorgon memory tile is a reconfigurable scratchpad with 256 KiB of SRAM
split across 16 banks (§II-B).  :class:`ScratchpadMemory` models the storage
array; the request-scheduling pipeline wrapped around it lives in
``spad_tile.py``.

Storage is organised as named :class:`Region`\\ s of fixed-width *entries*
(an entry is ``words_per_entry`` consecutive 32-bit words — e.g. a hash
node ``(key, payload, next)`` is a 3-word entry).  Entries are interleaved
across banks so that consecutive entries live in consecutive banks, the
layout that makes dense streams conflict-free and spreads sparse accesses
uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CapacityError

#: SRAM banks per scratchpad tile.
BANKS = 16

#: Scratchpad capacity in bytes (256 KiB) and 32-bit words.
CAPACITY_BYTES = 256 * 1024
CAPACITY_WORDS = CAPACITY_BYTES // 4


class Region:
    """A named array of fixed-width entries inside one scratchpad."""

    __slots__ = ("name", "base_entry", "n_entries", "words_per_entry", "_data")

    def __init__(self, name: str, base_entry: int, n_entries: int,
                 words_per_entry: int, fill=None):
        self.name = name
        self.base_entry = base_entry
        self.n_entries = n_entries
        self.words_per_entry = words_per_entry
        self._data: List = [fill] * n_entries

    def bank_of(self, index: int) -> int:
        """The SRAM bank holding entry ``index`` (entry-interleaved)."""
        return (self.base_entry + index) % BANKS

    def __getitem__(self, index: int):
        return self._data[index]

    def __setitem__(self, index: int, value) -> None:
        self._data[index] = value

    def __len__(self) -> int:
        return self.n_entries

    def words(self) -> int:
        return self.n_entries * self.words_per_entry

    def snapshot(self) -> list:
        """Copy of the region contents (for tests and debugging)."""
        return list(self._data)


class ScratchpadMemory:
    """One memory tile's SRAM: a budget of words carved into regions."""

    def __init__(self, name: str, capacity_words: int = CAPACITY_WORDS,
                 banks: int = BANKS):
        self.name = name
        self.capacity_words = capacity_words
        self.banks = banks
        self.regions: Dict[str, Region] = {}
        self._used_words = 0
        self._next_entry = 0

    def region(self, name: str, n_entries: int, words_per_entry: int = 1,
               fill=None) -> Region:
        """Allocate a region; raises :class:`CapacityError` if SRAM is full."""
        needed = n_entries * words_per_entry
        if self._used_words + needed > self.capacity_words:
            raise CapacityError(
                f"scratchpad {self.name!r}: region {name!r} needs {needed} "
                f"words but only {self.capacity_words - self._used_words} free"
            )
        if name in self.regions:
            raise CapacityError(
                f"scratchpad {self.name!r} already has region {name!r}"
            )
        region = Region(name, self._next_entry, n_entries, words_per_entry, fill)
        self.regions[name] = region
        self._used_words += needed
        self._next_entry += n_entries
        return region

    @property
    def free_words(self) -> int:
        return self.capacity_words - self._used_words

    def fits(self, n_entries: int, words_per_entry: int = 1) -> bool:
        """Would a region of this shape fit in the remaining SRAM?"""
        return n_entries * words_per_entry <= self.free_words
