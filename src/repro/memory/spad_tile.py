"""The Aurochs scratchpad tile: banked SRAM behind a sparse reordering
pipeline (§III-B, fig. 2b).

A scratchpad tile services up to two request streams ("ports"), each
configured as a gather (read), scatter (write), or atomic read-modify-write
stream.  Requests arrive as thread records; per-lane issue queues buffer
them, a matching allocator grants at most one request per lane and per bank
each cycle, and granted requests are invalidated immediately
(Aurochs' halved-depth queues) or dequeued in order (Capstan mode, for the
ablation benchmark).

Banks are dual-ported: reads and writes are scheduled independently, and an
RMW port fuses both — claiming a bank's read and write port in the same
cycle — with a write→read forwarding path enabling back-to-back RMW to the
same offset.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.dataflow.expr import scalar_of
from repro.errors import GraphError
from repro.dataflow.record import LANES, Record
from repro.dataflow.stats import ScratchpadStats
from repro.dataflow.tile import Packer, Tile
from repro.dataflow.stream import Stream
from repro.memory.allocator import Allocator
from repro.memory.issue_queue import DEPTH_AUROCHS, IssueQueue, Request
from repro.memory.scratchpad import BANKS, Region, ScratchpadMemory
from repro.observability.events import StallReason

#: Cycles from grant to response availability (SRAM access + crossbar).
SPAD_LATENCY = 3

#: Shared empty busy-bank set for single-port scheduling rounds.
_NO_BUSY_BANKS: frozenset = frozenset()


@dataclass(slots=True)
class PortConfig:
    """Configuration of one scratchpad stream.

    ``addr(record)`` yields the entry index within ``region``.
    ``combine(record, value)`` builds the response record from the thread
    context and the loaded/RMW-result value; return ``None`` to kill the
    thread, or leave ``combine=None`` for response-less scatters.
    ``value(record)`` supplies the store data for writes.
    ``rmw(old, record) -> (new, result)`` is the atomic update function.

    ``addr``/``combine``/``value`` accept either a legacy callable or an
    :class:`~repro.dataflow.expr.Expr`; the ``*_fn`` twins hold the
    resolved plain callables the per-record paths use, while the
    originals stay inspectable so the vector backend can batch-fuse
    ``Expr`` configs.  ``rmw`` closures stay legacy — an atomic update
    is not a pure expression.
    """

    mode: str                                   # 'read' | 'write' | 'rmw'
    region: Region
    addr: Callable[[Record], int]
    combine: Optional[Callable] = None
    value: Optional[Callable] = None
    rmw: Optional[Callable] = None
    addr_fn: Callable = field(init=False, repr=False)
    combine_fn: Optional[Callable] = field(init=False, repr=False)
    value_fn: Optional[Callable] = field(init=False, repr=False)

    def __post_init__(self):
        if self.mode not in ("read", "write", "rmw"):
            raise GraphError(f"unknown scratchpad port mode {self.mode!r}")
        if self.mode == "read" and self.combine is None:
            raise GraphError("read port requires a combine function")
        if self.mode == "write" and self.value is None:
            raise GraphError("write port requires a value function")
        if self.mode == "rmw" and (self.rmw is None or self.combine is None):
            raise GraphError("rmw port requires rmw and combine functions")
        self.addr_fn = scalar_of(self.addr)
        self.combine_fn = (None if self.combine is None
                           else scalar_of(self.combine, 2))
        self.value_fn = (None if self.value is None
                         else scalar_of(self.value))


class _Port:
    """Runtime state of one configured port."""

    __slots__ = ("config", "queues", "packer", "input")

    def __init__(self, config: PortConfig, depth: int, in_order: bool):
        self.config = config
        self.queues = [IssueQueue(depth, in_order) for _ in range(LANES)]
        self.packer = Packer(None)
        self.input: Optional[Stream] = None

    def queues_empty(self) -> bool:
        return all(q.empty() for q in self.queues)


class ScratchpadTile(Tile):
    """A memory tile executing sparse gathers/scatters/atomics out of order."""

    def __init__(self, name: str, memory: ScratchpadMemory,
                 ports: List[PortConfig],
                 queue_depth: int = DEPTH_AUROCHS,
                 in_order_dequeue: bool = False,
                 latency: int = SPAD_LATENCY):
        super().__init__(name)
        if not 1 <= len(ports) <= 2:
            raise GraphError("a scratchpad tile services one or two streams")
        self.memory = memory
        self.latency = latency
        self.ports = [_Port(p, queue_depth, in_order_dequeue) for p in ports]
        self.spad_stats = ScratchpadStats()
        self._alloc = Allocator(memory.banks)
        self._delay: deque = deque()   # (ready_cycle, port_idx, record)
        self._last_rmw: Tuple = ()     # (bank, index) pairs granted last cycle
        # Scheduling-round specialisations, fixed at construction: RMW
        # ports go first (they claim both bank ports), and the ubiquitous
        # single-non-RMW-port tile skips the busy-set machinery entirely.
        self._order = sorted(range(len(ports)),
                             key=lambda i: ports[i].mode != "rmw")
        self._one_port = len(ports) == 1
        self._single = self._one_port and ports[0].mode != "rmw"
        # A plain base-class read port can run its grants inline (region
        # indexing + combine) instead of through the virtual ``_execute``.
        # The columnar vector backend keys its fused spad_read kernel on
        # this same flag: tiles it accepts may hold tuple-represented
        # requests mid-window (see repro.memory.issue_queue.IssueQueue).
        self._plain_read = (
            self._single and ports[0].mode == "read"
            and not in_order_dequeue
            and type(self)._execute is ScratchpadTile._execute
            and type(self)._latency_at is ScratchpadTile._latency_at)
        # Burst-execution eligibility (static part): a plain single read
        # port can act as a rate-matched relay when fed one single-record
        # vector per cycle.  ``DramTile.__init__`` sets its own flag.
        self._burst_relay = self._plain_read
        # Reliability hook: a FaultInjector armed on this tile's graph sets
        # itself here; granted requests then check for injected bank
        # failures.  None (the default) costs one is-None test per grant.
        self.fault_injector = None

    # -- wiring -------------------------------------------------------------

    def attach_input(self, stream: Stream) -> None:  # type: ignore[override]
        idx = len(self.inputs)
        if idx >= len(self.ports):
            raise GraphError(f"{self.name}: more input streams than ports")
        stream.consumer = self
        self.inputs.append(stream)
        self.ports[idx].input = stream

    def attach_output(self, stream: Stream, port: int = 0) -> None:  # type: ignore[override]
        stream.producer = self
        self.outputs.append(stream)
        self.ports[port].packer.stream = stream

    # -- simulation -----------------------------------------------------------

    def tick(self, cycle: int) -> bool:
        moved = self._retire(cycle)
        if self._enqueue():
            moved = True
        granted = self._schedule(cycle)
        if granted:
            moved = True
        force_partial = not granted
        stats = self.stats
        for port in self.ports:
            packer = port.packer
            if packer.pending and packer.flush(stats, force_partial):
                moved = True
        if moved:
            stats.busy_cycles += 1
        else:
            stats.idle_cycles += 1
        inputs = self.inputs
        if not inputs or inputs[0].eos:
            # EOS can only propagate once input 0 has closed; skipping
            # maybe_close before that is exact (it would be a no-op).
            self.maybe_close()
        return moved

    def _retire(self, cycle: int) -> bool:
        delay = self._delay
        if not delay or delay[0][0] > cycle:
            return False
        popleft = delay.popleft
        retired = 0
        if self._one_port:
            append = self.ports[0].packer.pending.append
            while delay and delay[0][0] <= cycle:
                append(popleft()[2])
                retired += 1
        else:
            ports = self.ports
            while delay and delay[0][0] <= cycle:
                __, port_idx, record = popleft()
                ports[port_idx].packer.pending.append(record)
                retired += 1
        if self.tracer is not None:
            self.tracer.mem_retire(self.name, retired, len(delay))
        return True

    def _enqueue(self) -> bool:
        """Move waiting vectors from input streams into per-lane queues."""
        accepted = False
        for port in self.ports:
            stream = port.input
            if stream is None or not stream._fifo:
                continue
            vector = stream._fifo[0]
            queues = port.queues
            n = len(vector)
            room = True
            for lane in range(n):
                queue = queues[lane]
                if len(queue.slots) >= queue.depth:
                    room = False
                    break
            if not room:
                self.spad_stats.queue_full_stalls += 1
                continue
            stream.pop()
            cfg = port.config
            addr = cfg.addr_fn
            # Region.bank_of, inlined: entry-interleaved across BANKS.
            base = cfg.region.base_entry
            lane = 0
            for record in vector:
                index = addr(record)
                queues[lane].slots.append(
                    Request((base + index) % BANKS, index, record))
                lane += 1
            self.spad_stats.requests += n
            accepted = True
        return accepted

    def _schedule(self, cycle: int) -> bool:
        """One allocator round per port; RMW fuses read+write bank ports."""
        if self._plain_read and self.fault_injector is None:
            # Fused fast path: the allocator scan, the Aurochs
            # invalidate-on-grant dequeue, and the read execute run in one
            # pass over the lane queues.  Semantics are exactly
            # ``Allocator.allocate`` (rotating lane priority, first live
            # request with a free bank wins, losers count as conflicts)
            # followed by region indexing + combine — restated without the
            # intermediate grants list.  The rotor still advances every
            # round, including grant-free ones.
            port = self.ports[0]
            queues = port.queues
            alloc = self._alloc
            rotor = alloc._rotor
            n_lanes = len(queues)
            alloc._rotor = rotor + 1 if rotor + 1 < n_lanes else 0
            cfg = port.config
            data = cfg.region._data
            combine = cfg.combine_fn
            delay_append = self._delay.append
            ready = cycle + self.latency
            taken = 0
            grants = 0
            conflicts = 0
            considered = 0
            for offset in range(n_lanes):
                lane = rotor + offset
                if lane >= n_lanes:
                    lane -= n_lanes
                slots = queues[lane].slots
                if not slots:
                    continue
                n = len(slots)
                considered += n
                for request in slots:
                    bit = 1 << request.bank
                    if not taken & bit:
                        taken |= bit
                        slots.remove(request)
                        response = combine(request.record,
                                           data[request.index])
                        if response is not None:
                            delay_append((ready, 0, response))
                        grants += 1
                        conflicts += n - 1
                        break
                else:
                    conflicts += n
            stats = self.spad_stats
            stats.bank_conflicts += conflicts
            stats.considered_bids += considered
            if self._last_rmw:
                self._last_rmw = ()
            if not grants:
                return False
            stats.grants += grants
            stats.active_cycles += 1
            if self.tracer is not None:
                self.tracer.bank_round(self.name, cycle, grants, conflicts)
            return True
        if self._single:
            # One non-RMW port: no cross-port bank contention, no RMW
            # history.  The allocator round still runs (and advances the
            # rotor) even with empty queues, as the general path does.
            port = self.ports[0]
            grants, conflicts, considered = self._alloc.allocate(
                port.queues, _NO_BUSY_BANKS)
            stats = self.spad_stats
            stats.bank_conflicts += conflicts
            stats.considered_bids += considered
            if self._last_rmw:
                self._last_rmw = ()
            if not grants:
                return False
            queues = port.queues
            execute = self._execute
            for lane, request in grants:
                queues[lane].grant(request)
                execute(cycle, 0, request)
            stats.grants += len(grants)
            stats.active_cycles += 1
            if self.tracer is not None:
                self.tracer.bank_round(self.name, cycle,
                                       len(grants), conflicts)
            return True
        busy_read: set = set()
        busy_write: set = set()
        rmw_this_cycle: List[Tuple[int, int]] = []
        any_grant = False
        round_grants = 0
        round_conflicts = 0
        # RMW ports first: they claim both bank ports.
        for idx in self._order:
            port = self.ports[idx]
            mode = port.config.mode
            if mode == "rmw":
                busy = frozenset(busy_read | busy_write)
            elif mode == "read":
                busy = frozenset(busy_read)
            else:
                busy = frozenset(busy_write)
            grants, conflicts, considered = self._alloc.allocate(port.queues, busy)
            self.spad_stats.bank_conflicts += conflicts
            self.spad_stats.considered_bids += considered
            round_conflicts += conflicts
            for lane, request in grants:
                port.queues[lane].grant(request)
                self._execute(cycle, idx, request)
                self.spad_stats.grants += 1
                round_grants += 1
                any_grant = True
                if mode == "rmw":
                    busy_read.add(request.bank)
                    busy_write.add(request.bank)
                    key = (request.bank, request.index)
                    if key in self._last_rmw:
                        self.spad_stats.rmw_forwards += 1
                    rmw_this_cycle.append(key)
                elif mode == "read":
                    busy_read.add(request.bank)
                else:
                    busy_write.add(request.bank)
        self._last_rmw = tuple(rmw_this_cycle)
        if any_grant:
            self.spad_stats.active_cycles += 1
            if self.tracer is not None:
                self.tracer.bank_round(self.name, cycle,
                                       round_grants, round_conflicts)
        return any_grant

    # -- burst execution ---------------------------------------------------

    def burst_plan(self):
        """Relay role: consume one single-record vector per cycle, grant it
        through the single lane-0 queue, retire after ``latency`` cycles
        and flush full vectors downstream.

        Dynamic eligibility (the static part is ``_burst_relay``): the
        input must hold at least one single-record vector (with one
        arriving per cycle the occupancy then never drops below one, so a
        pop never starves), lane 0 must have a free slot (fill is constant
        at one-in/one-out), all other lanes must be empty (arrivals land
        in lane 0 only), and the output must be drained (occupancy 0 with
        under a full vector pending) so every flush finds room.  Multi-lane
        vectors, RMW/write ports and reorder-pipeline (Capstan) windows
        fail these checks and fall back to per-cycle ticking.
        """
        if not self._burst_relay or self.fault_injector is not None:
            return None
        if (len(self.inputs) != 1 or len(self.outputs) != 1
                or "tick" in self.__dict__):
            return None     # instance-patched ticks must really run
        port = self.ports[0]
        stream = port.input
        out = port.packer.stream
        if stream is None or out is None or stream.eos:
            return None
        fifo = stream._fifo
        if not fifo:
            return None
        for vector in fifo:
            if len(vector) != 1:
                return None
        queues = port.queues
        if len(queues[0].slots) >= queues[0].depth:
            return None
        for queue in queues[1:]:
            if queue.slots:
                return None
        if out._fifo or len(port.packer.pending) >= LANES:
            return None
        return ("relay1",)

    def tick_burst(self, cycle: int, n: int, feed=None):
        port = self.ports[0]
        arrivals = port.input.pop_n(n)
        slots = port.queues[0].slots
        fill = len(slots)
        cfg = port.config
        addr = cfg.addr_fn
        data = cfg.region._data
        combine = cfg.combine_fn
        delay = self._delay
        delay_append = delay.append
        popleft = delay.popleft
        latency = self.latency
        pending = port.packer.pending
        pend_append = pending.append
        out = port.packer.stream
        out_vectors = []
        flushes = []
        for k in range(n):
            c = cycle + k
            while delay and delay[0][0] <= c:
                pend_append(popleft()[2])
            # Enqueue this cycle's arrival; grant the FIFO head (single
            # bid per bank round: the oldest request always wins).
            if k < fill:
                head = slots[k]
                index = head.index
                record = head.record
            else:
                record = arrivals[k - fill][0]
                index = addr(record)
            response = combine(record, data[index])
            if response is not None:
                delay_append((c + latency, 0, response))
            if len(pending) >= LANES:
                out_vectors.append(pending[:LANES])
                del pending[:LANES]
                flushes.append(c)
        # Queue contents after the window: the last ``fill`` arrivals are
        # enqueued but not yet granted (constant one-in/one-out fill).
        if fill:
            base = cfg.region.base_entry
            tail = []
            for vector in arrivals[n - fill:]:
                record = vector[0]
                index = addr(record)
                tail.append(Request((base + index) % BANKS, index, record))
            slots[:] = tail
        if out_vectors:
            out.push_n(out_vectors)
            stats = self.stats
            stats.vectors_out += len(out_vectors)
            stats.records_out += LANES * len(out_vectors)
        sstats = self.spad_stats
        sstats.requests += n
        sstats.grants += n
        sstats.bank_conflicts += n * fill
        sstats.considered_bids += n * (fill + 1)
        sstats.active_cycles += n
        self.stats.busy_cycles += n
        self._alloc.skip(n, len(port.queues))
        if self._last_rmw:
            self._last_rmw = ()
        return flushes

    def _latency_at(self, cycle: int) -> int:
        """Grant-to-response latency for a request executed this cycle.

        Subclasses (the DRAM tile) add injected latency spikes here.
        """
        return self.latency

    def _execute(self, cycle: int, port_idx: int, request: Request) -> None:
        if self.fault_injector is not None:
            self.fault_injector.check_bank(self.name, request.bank, cycle)
        port = self.ports[port_idx]
        cfg = port.config
        region = cfg.region
        record = request.record
        if cfg.mode == "read":
            result = region[request.index]
        elif cfg.mode == "write":
            region[request.index] = cfg.value_fn(record)
            result = None
        else:  # rmw
            old = region[request.index]
            new, result = cfg.rmw(old, record)
            region[request.index] = new
        if cfg.combine_fn is not None:
            response = cfg.combine_fn(record, result)
            if response is not None:
                self._delay.append(
                    (cycle + self._latency_at(cycle), port_idx, response))

    # -- engine protocol -------------------------------------------------------

    def idle(self) -> bool:
        return (not self._delay
                and all(p.queues_empty() and p.packer.empty()
                        for p in self.ports))

    def sched_poll(self, cycle: int) -> tuple:
        for port in self.ports:
            stream = port.input
            if stream is not None and stream.can_pop():
                return ("ready",)       # enqueue, or a queue-full stall count
            if not port.queues_empty():
                return ("ready",)       # pending bids for the allocator
            packer = port.packer
            if packer.pending and (packer.stream is None
                                   or packer.stream.can_push()):
                return ("ready",)       # a response flush can still emit
        if self._delay:
            return ("timer", self._delay[0][0], "idle_cycles")
        return ("sleep", "idle_cycles")

    def stall_reason(self) -> StallReason:
        if self._delay:
            # Responses in flight behind the SRAM access latency.  (A
            # waiting input vector always implies the allocator granted
            # something this cycle, so a non-moving tick never has
            # consumable input — see ``_enqueue``/``_schedule``.)
            return StallReason.LATENCY
        return super().stall_reason()

    def sched_skip(self, n: int, counter: str) -> None:
        super().sched_skip(n, counter)
        # What n inert ticks would also have done: one (empty) allocator
        # round per port still advances the rotating lane priority, and any
        # grant-free cycle clears the RMW forwarding history.  Replaying
        # both keeps future grant order — and therefore bank conflicts and
        # rmw_forwards — bit-identical to the exhaustive engine.
        self._alloc.skip(n * len(self.ports), LANES)
        self._last_rmw = ()
