"""The Aurochs scratchpad tile: banked SRAM behind a sparse reordering
pipeline (§III-B, fig. 2b).

A scratchpad tile services up to two request streams ("ports"), each
configured as a gather (read), scatter (write), or atomic read-modify-write
stream.  Requests arrive as thread records; per-lane issue queues buffer
them, a matching allocator grants at most one request per lane and per bank
each cycle, and granted requests are invalidated immediately
(Aurochs' halved-depth queues) or dequeued in order (Capstan mode, for the
ablation benchmark).

Banks are dual-ported: reads and writes are scheduled independently, and an
RMW port fuses both — claiming a bank's read and write port in the same
cycle — with a write→read forwarding path enabling back-to-back RMW to the
same offset.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import GraphError
from repro.dataflow.record import LANES, Record
from repro.dataflow.stats import ScratchpadStats
from repro.dataflow.tile import Packer, Tile
from repro.dataflow.stream import Stream
from repro.memory.allocator import Allocator
from repro.memory.issue_queue import DEPTH_AUROCHS, IssueQueue, Request
from repro.memory.scratchpad import BANKS, Region, ScratchpadMemory
from repro.observability.events import StallReason

#: Cycles from grant to response availability (SRAM access + crossbar).
SPAD_LATENCY = 3


@dataclass(slots=True)
class PortConfig:
    """Configuration of one scratchpad stream.

    ``addr(record)`` yields the entry index within ``region``.
    ``combine(record, value)`` builds the response record from the thread
    context and the loaded/RMW-result value; return ``None`` to kill the
    thread, or leave ``combine=None`` for response-less scatters.
    ``value(record)`` supplies the store data for writes.
    ``rmw(old, record) -> (new, result)`` is the atomic update function.
    """

    mode: str                                   # 'read' | 'write' | 'rmw'
    region: Region
    addr: Callable[[Record], int]
    combine: Optional[Callable] = None
    value: Optional[Callable] = None
    rmw: Optional[Callable] = None

    def __post_init__(self):
        if self.mode not in ("read", "write", "rmw"):
            raise GraphError(f"unknown scratchpad port mode {self.mode!r}")
        if self.mode == "read" and self.combine is None:
            raise GraphError("read port requires a combine function")
        if self.mode == "write" and self.value is None:
            raise GraphError("write port requires a value function")
        if self.mode == "rmw" and (self.rmw is None or self.combine is None):
            raise GraphError("rmw port requires rmw and combine functions")


class _Port:
    """Runtime state of one configured port."""

    __slots__ = ("config", "queues", "packer", "input")

    def __init__(self, config: PortConfig, depth: int, in_order: bool):
        self.config = config
        self.queues = [IssueQueue(depth, in_order) for _ in range(LANES)]
        self.packer = Packer(None)
        self.input: Optional[Stream] = None

    def queues_empty(self) -> bool:
        return all(q.empty() for q in self.queues)


class ScratchpadTile(Tile):
    """A memory tile executing sparse gathers/scatters/atomics out of order."""

    def __init__(self, name: str, memory: ScratchpadMemory,
                 ports: List[PortConfig],
                 queue_depth: int = DEPTH_AUROCHS,
                 in_order_dequeue: bool = False,
                 latency: int = SPAD_LATENCY):
        super().__init__(name)
        if not 1 <= len(ports) <= 2:
            raise GraphError("a scratchpad tile services one or two streams")
        self.memory = memory
        self.latency = latency
        self.ports = [_Port(p, queue_depth, in_order_dequeue) for p in ports]
        self.spad_stats = ScratchpadStats()
        self._alloc = Allocator(memory.banks)
        self._delay: deque = deque()   # (ready_cycle, port_idx, record)
        self._last_rmw: Tuple = ()     # (bank, index) pairs granted last cycle
        # Reliability hook: a FaultInjector armed on this tile's graph sets
        # itself here; granted requests then check for injected bank
        # failures.  None (the default) costs one is-None test per grant.
        self.fault_injector = None

    # -- wiring -------------------------------------------------------------

    def attach_input(self, stream: Stream) -> None:  # type: ignore[override]
        idx = len(self.inputs)
        if idx >= len(self.ports):
            raise GraphError(f"{self.name}: more input streams than ports")
        stream.consumer = self
        self.inputs.append(stream)
        self.ports[idx].input = stream

    def attach_output(self, stream: Stream, port: int = 0) -> None:  # type: ignore[override]
        stream.producer = self
        self.outputs.append(stream)
        self.ports[port].packer.stream = stream

    # -- simulation -----------------------------------------------------------

    def tick(self, cycle: int) -> bool:
        moved = self._retire(cycle)
        accepted = self._enqueue()
        granted = self._schedule(cycle)
        moved = moved or accepted or granted
        force_partial = not granted
        for port in self.ports:
            if port.packer.flush(self.stats, force_partial):
                moved = True
        if moved:
            self.stats.busy_cycles += 1
        else:
            self.stats.idle_cycles += 1
        self.maybe_close()
        return moved

    def _retire(self, cycle: int) -> bool:
        retired = 0
        while self._delay and self._delay[0][0] <= cycle:
            __, port_idx, record = self._delay.popleft()
            self.ports[port_idx].packer.push(record)
            retired += 1
        if retired and self.tracer is not None:
            self.tracer.mem_retire(self.name, retired, len(self._delay))
        return retired > 0

    def _enqueue(self) -> bool:
        """Move waiting vectors from input streams into per-lane queues."""
        accepted = False
        for port in self.ports:
            stream = port.input
            if stream is None or not stream.can_pop():
                continue
            vector = stream.peek()
            lanes = range(len(vector))
            if not all(port.queues[lane].has_room() for lane in lanes):
                self.spad_stats.queue_full_stalls += 1
                continue
            stream.pop()
            for lane, record in enumerate(vector):
                index = port.config.addr(record)
                bank = port.config.region.bank_of(index)
                port.queues[lane].push(Request(bank, index, record))
                self.spad_stats.requests += 1
            accepted = True
        return accepted

    def _schedule(self, cycle: int) -> bool:
        """One allocator round per port; RMW fuses read+write bank ports."""
        busy_read: set = set()
        busy_write: set = set()
        rmw_this_cycle: List[Tuple[int, int]] = []
        any_grant = False
        round_grants = 0
        round_conflicts = 0
        # RMW ports first: they claim both bank ports.
        order = sorted(range(len(self.ports)),
                       key=lambda i: self.ports[i].config.mode != "rmw")
        for idx in order:
            port = self.ports[idx]
            mode = port.config.mode
            if mode == "rmw":
                busy = frozenset(busy_read | busy_write)
            elif mode == "read":
                busy = frozenset(busy_read)
            else:
                busy = frozenset(busy_write)
            grants, conflicts, considered = self._alloc.allocate(port.queues, busy)
            self.spad_stats.bank_conflicts += conflicts
            self.spad_stats.considered_bids += considered
            round_conflicts += conflicts
            for lane, request in grants:
                port.queues[lane].grant(request)
                self._execute(cycle, idx, request)
                self.spad_stats.grants += 1
                round_grants += 1
                any_grant = True
                if mode == "rmw":
                    busy_read.add(request.bank)
                    busy_write.add(request.bank)
                    key = (request.bank, request.index)
                    if key in self._last_rmw:
                        self.spad_stats.rmw_forwards += 1
                    rmw_this_cycle.append(key)
                elif mode == "read":
                    busy_read.add(request.bank)
                else:
                    busy_write.add(request.bank)
        self._last_rmw = tuple(rmw_this_cycle)
        if any_grant:
            self.spad_stats.active_cycles += 1
            if self.tracer is not None:
                self.tracer.bank_round(self.name, cycle,
                                       round_grants, round_conflicts)
        return any_grant

    def _latency_at(self, cycle: int) -> int:
        """Grant-to-response latency for a request executed this cycle.

        Subclasses (the DRAM tile) add injected latency spikes here.
        """
        return self.latency

    def _execute(self, cycle: int, port_idx: int, request: Request) -> None:
        if self.fault_injector is not None:
            self.fault_injector.check_bank(self.name, request.bank, cycle)
        port = self.ports[port_idx]
        cfg = port.config
        region = cfg.region
        record = request.record
        if cfg.mode == "read":
            result = region[request.index]
        elif cfg.mode == "write":
            region[request.index] = cfg.value(record)
            result = None
        else:  # rmw
            old = region[request.index]
            new, result = cfg.rmw(old, record)
            region[request.index] = new
        if cfg.combine is not None:
            response = cfg.combine(record, result)
            if response is not None:
                self._delay.append(
                    (cycle + self._latency_at(cycle), port_idx, response))

    # -- engine protocol -------------------------------------------------------

    def idle(self) -> bool:
        return (not self._delay
                and all(p.queues_empty() and p.packer.empty()
                        for p in self.ports))

    def sched_poll(self, cycle: int) -> tuple:
        for port in self.ports:
            stream = port.input
            if stream is not None and stream.can_pop():
                return ("ready",)       # enqueue, or a queue-full stall count
            if not port.queues_empty():
                return ("ready",)       # pending bids for the allocator
            packer = port.packer
            if packer.pending and (packer.stream is None
                                   or packer.stream.can_push()):
                return ("ready",)       # a response flush can still emit
        if self._delay:
            return ("timer", self._delay[0][0], "idle_cycles")
        return ("sleep", "idle_cycles")

    def stall_reason(self) -> StallReason:
        if self._delay:
            # Responses in flight behind the SRAM access latency.  (A
            # waiting input vector always implies the allocator granted
            # something this cycle, so a non-moving tick never has
            # consumable input — see ``_enqueue``/``_schedule``.)
            return StallReason.LATENCY
        return super().stall_reason()

    def sched_skip(self, n: int, counter: str) -> None:
        super().sched_skip(n, counter)
        # What n inert ticks would also have done: one (empty) allocator
        # round per port still advances the rotating lane priority, and any
        # grant-free cycle clears the RMW forwarding history.  Replaying
        # both keeps future grant order — and therefore bank conflicts and
        # rmw_forwards — bit-identical to the exhaustive engine.
        self._alloc.skip(n * len(self.ports), LANES)
        self._last_rmw = ()
