"""Read-modify-write atomic operations for scratchpad ports.

Aurochs restricts cross-thread communication to atomic RMW scratchpad
access (§III-A), which decouples thread execution order entirely.  An RMW
function has the signature::

    rmw(old_value, record) -> (new_value, result)

where ``old_value`` is the entry's current contents, ``record`` is the
requesting thread's context, ``new_value`` is written back, and ``result``
flows to the thread's response record.  This module provides the atomics the
paper's data structures need: compare-and-swap (lock-free list prepend,
§IV-A), fetch-and-add (partition slot reservation, §IV-A), and exchange.
"""

from __future__ import annotations

from typing import Callable, Tuple


def cas(expected_of: Callable, new_of: Callable) -> Callable:
    """Build a compare-and-swap RMW.

    ``expected_of(record)`` and ``new_of(record)`` extract the compare value
    and the replacement from the thread context.  The result delivered to
    the thread is the *old* value, so a downstream filter can test
    ``old == expected`` to detect success — exactly how fig. 6c's build
    pipeline recirculates failed threads with the latest head pointer.
    """

    def rmw(old, record) -> Tuple:
        if old == expected_of(record):
            return new_of(record), old
        return old, old

    return rmw


def faa(delta_of: Callable = lambda record: 1) -> Callable:
    """Build a fetch-and-add RMW; the result is the pre-increment value.

    The hash partitioner (§IV-A) uses FAA on per-partition counters to
    reserve record slots in the partition's head block.
    """

    def rmw(old, record) -> Tuple:
        return old + delta_of(record), old

    return rmw


def exchange(new_of: Callable) -> Callable:
    """Build an unconditional swap; the result is the old value."""

    def rmw(old, record) -> Tuple:
        return new_of(record), old

    return rmw


def store_conditional_reset(value: int = 0) -> Callable:
    """Reset an entry to ``value``, returning the old contents.

    Used by the partitioner's block-allocation path to reset a partition's
    in-block count after prepending a fresh block.
    """

    def rmw(old, record) -> Tuple:
        return value, old

    return rmw
