"""Memory subsystem: banked scratchpads with the sparse reordering pipeline
(Capstan-derived, §III-B), RMW atomics, and the DRAM/HBM model."""

from repro.memory.scratchpad import (
    BANKS,
    CAPACITY_BYTES,
    CAPACITY_WORDS,
    Region,
    ScratchpadMemory,
)
from repro.memory.issue_queue import (
    DEPTH_AUROCHS,
    DEPTH_CAPSTAN,
    IssueQueue,
    Request,
)
from repro.memory.allocator import Allocator
from repro.memory.atomics import cas, exchange, faa, store_conditional_reset
from repro.memory.spad_tile import SPAD_LATENCY, PortConfig, ScratchpadTile
from repro.memory.dram import (
    DRAM_CHANNELS,
    DRAM_LATENCY,
    DramMemory,
    DramTile,
)

__all__ = [
    "BANKS", "CAPACITY_BYTES", "CAPACITY_WORDS", "Region", "ScratchpadMemory",
    "DEPTH_AUROCHS", "DEPTH_CAPSTAN", "IssueQueue", "Request",
    "Allocator",
    "cas", "exchange", "faa", "store_conditional_reset",
    "SPAD_LATENCY", "PortConfig", "ScratchpadTile",
    "DRAM_CHANNELS", "DRAM_LATENCY", "DramMemory", "DramTile",
]
