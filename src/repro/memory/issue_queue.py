"""Per-lane issue queues for the sparse reordering pipeline (§III-B).

Each scratchpad port buffers incoming thread vectors in issue queues, one
queue per vector lane.  The allocator reads *all* queued requests in
parallel — with 16 lanes and a scheduling depth of eight, up to 128
requests are considered each cycle — and grants at most one per lane and
one per bank.

The Aurochs-vs-Capstan distinction this module captures: Capstan dequeues
vectors in order (granted requests stay, marked done, until the whole head
vector completes), so a straggler head request blocks the lane.  Aurochs'
threading model permits full reordering, so granted requests are
*invalidated immediately*, freeing the slot for a new thread.  That is why
Aurochs' queues are half as deep (8 vs 16) for the same throughput —
``benchmarks/bench_reorder_pipeline.py`` reproduces this claim.
"""

from __future__ import annotations

from typing import Callable, List, Optional

#: Aurochs' scheduling depth per lane (Capstan uses twice this).
DEPTH_AUROCHS = 8
DEPTH_CAPSTAN = 16


class Request:
    """One outstanding scratchpad access owned by a thread record."""

    __slots__ = ("bank", "index", "record", "granted")

    def __init__(self, bank: int, index: int, record):
        self.bank = bank          # target SRAM bank (registered for readout)
        self.index = index        # entry index within the region
        self.record = record      # the full thread context (in register file)
        self.granted = False      # Capstan mode: completed but not dequeued

    def __repr__(self) -> str:
        return f"Request(bank={self.bank}, index={self.index})"


class IssueQueue:
    """One lane's request queue.

    ``in_order_dequeue=False`` is Aurochs (invalidate-on-grant);
    ``True`` is Capstan (grant marks done, slot frees only when the head
    of the queue has been granted).

    Lowering contract (``repro.dataflow.vector``): while a columnar
    window is resident, the fused read kernels may represent entries in
    ``slots`` as plain ``(bank, index, record)`` tuples instead of
    ``Request`` objects.  That is legal only for Aurochs queues, where
    ``granted`` is never set and a grant deletes the slot outright; the
    kernels convert residual entries back to ``Request`` at window
    settlement, so any code running between windows — including
    ``bids``/``compact`` here — only ever sees real ``Request``s.
    """

    __slots__ = ("depth", "in_order_dequeue", "slots")

    def __init__(self, depth: int = DEPTH_AUROCHS,
                 in_order_dequeue: bool = False):
        self.depth = depth
        self.in_order_dequeue = in_order_dequeue
        self.slots: List[Request] = []

    def has_room(self) -> bool:
        return len(self.slots) < self.depth

    def push(self, request: Request) -> None:
        assert len(self.slots) < self.depth, "issue queue overflow"
        self.slots.append(request)

    def bids(self) -> List[Request]:
        """All requests visible to the allocator this cycle."""
        return [r for r in self.slots if not r.granted]

    def grant(self, request: Request) -> None:
        """Mark ``request`` executed and reclaim slots per the dequeue policy."""
        if self.in_order_dequeue:
            request.granted = True
            # Capstan: pop completed requests only from the head, in order.
            while self.slots and self.slots[0].granted:
                self.slots.pop(0)
        else:
            # Aurochs: invalidate immediately, freeing the slot.
            self.slots.remove(request)

    def occupancy(self) -> int:
        return len(self.slots)

    def empty(self) -> bool:
        return not self.slots
