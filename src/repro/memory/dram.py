"""DRAM/HBM model.

The paper's simulator uses Ramulator for cycle-accurate HBM timing; the
figures, however, depend on three DRAM properties rather than exact DDR
state machines: (1) high access latency that only thread-level parallelism
can hide, (2) a channel-parallelism-limited request rate, and (3) the
dense-vs-sparse traffic split that determines effective bandwidth.  This
module models exactly those three.

:class:`DramTile` reuses the scratchpad's issue-queue/allocator pipeline
with DRAM channels standing in for SRAM banks — requests from 16 lanes
compete for ``DRAM_CHANNELS`` channel slots per cycle, and responses return
after ``DRAM_LATENCY`` cycles.  Arbitrarily many requests may be in flight
(HBM's deep per-channel queues), which is what lets Aurochs hide latency by
keeping thousands of threads live (§III-A).
"""

from __future__ import annotations

from typing import List

from repro.dataflow.record import LANES
from repro.dataflow.stats import DramStats
from repro.memory.issue_queue import DEPTH_AUROCHS, Request
from repro.memory.scratchpad import BANKS, ScratchpadMemory
from repro.memory.spad_tile import PortConfig, ScratchpadTile
from repro.observability.events import StallReason

#: HBM2 pseudo-channel count visible to one tile's DRAM interface.
DRAM_CHANNELS = 8

#: Round-trip DRAM latency in fabric cycles (≈100 ns at 1 GHz).
DRAM_LATENCY = 100

#: Modelled HBM capacity in 32-bit words (16 GiB).
DRAM_CAPACITY_WORDS = (16 * 1024 ** 3) // 4


class DramMemory(ScratchpadMemory):
    """Off-chip memory: same region interface, channel-interleaved."""

    def __init__(self, name: str,
                 capacity_words: int = DRAM_CAPACITY_WORDS,
                 channels: int = DRAM_CHANNELS):
        super().__init__(name, capacity_words, banks=channels)


class DramTile(ScratchpadTile):
    """A DRAM interface tile: scratchpad scheduling, DRAM timing and stats.

    Event-scheduling note: the inherited ``sched_poll`` sleeps on a timer at
    ``_delay[0][0]`` while responses are in flight.  That is exact even
    though injected latency spikes can make the delay line non-monotonic,
    because ``_retire`` is head-blocking — nothing behind the head retires
    before the head does, so the head's ready cycle is the earliest cycle
    the next tick could do anything.
    """

    def __init__(self, name: str, memory: DramMemory,
                 ports: List[PortConfig],
                 queue_depth: int = DEPTH_AUROCHS,
                 latency: int = DRAM_LATENCY):
        super().__init__(name, memory, ports, queue_depth=queue_depth,
                         in_order_dequeue=False, latency=latency)
        self.dram_stats = DramStats()
        self._last_index = [None] * len(ports)
        # ``_plain_read`` is False here (``_execute`` is overridden), but a
        # single read port is still a valid burst relay: the override below
        # folds the DRAM accounting into the burst loop.  Restricted to
        # DramTile exactly so further subclasses fall back to safety.  The
        # columnar vector backend's dram_read kernel uses the same exact-
        # class gate, and its tuple-represented in-window requests rely on
        # the hardcoded ``in_order_dequeue=False`` above (invalidate-on-
        # grant: the ``granted`` flag is never set).
        self._burst_relay = (type(self) is DramTile and self._single
                             and ports[0].mode == "read")

    def _latency_at(self, cycle: int) -> int:
        """Round-trip latency, plus any injected DRAM latency spike.

        Latency spikes are *absorbed*, not raised: Aurochs hides DRAM
        latency with thread-level parallelism, so a spike shows up only as
        extra cycles — the graph still completes with identical results.
        """
        latency = self.latency
        if self.fault_injector is not None:
            latency += self.fault_injector.extra_latency(self.name, cycle)
        return latency

    def _execute(self, cycle: int, port_idx: int, request) -> None:
        cfg = self.ports[port_idx].config
        words = cfg.region.words_per_entry
        nbytes = words * 4
        if cfg.mode == "write":
            self.dram_stats.write_bytes += nbytes
        else:
            self.dram_stats.read_bytes += nbytes
        last = self._last_index[port_idx]
        if last is not None and abs(request.index - last) <= 1:
            self.dram_stats.dense_bursts += 1
        else:
            self.dram_stats.sparse_bursts += 1
        self._last_index[port_idx] = request.index
        self.dram_stats.busy_cycles = cycle
        super()._execute(cycle, port_idx, request)
        if self.tracer is not None:
            # len(_delay) is the outstanding-response count after this
            # issue: exactly the memory-level parallelism the tile is
            # sustaining (threads in flight hiding the round trip).
            self.tracer.mem_issue(self.name, len(self._delay))

    def tick_burst(self, cycle: int, n: int, feed=None):
        """Relay burst with the DRAM accounting of ``_execute`` folded in.

        Same loop as ``ScratchpadTile.tick_burst`` (its bit-exactness
        argument carries over verbatim) plus, per grant: read bytes, the
        dense/sparse classification against the running ``_last_index``,
        and the busy-cycle high-water mark.  Tracer ``mem_issue`` events
        are not replayed because burst windows never open while a tracer
        is armed.
        """
        port = self.ports[0]
        arrivals = port.input.pop_n(n)
        slots = port.queues[0].slots
        fill = len(slots)
        cfg = port.config
        addr = cfg.addr_fn
        data = cfg.region._data
        combine = cfg.combine_fn
        delay = self._delay
        delay_append = delay.append
        popleft = delay.popleft
        latency = self.latency
        pending = port.packer.pending
        pend_append = pending.append
        out = port.packer.stream
        last = self._last_index[0]
        dense = 0
        out_vectors = []
        flushes = []
        for k in range(n):
            c = cycle + k
            while delay and delay[0][0] <= c:
                pend_append(popleft()[2])
            if k < fill:
                head = slots[k]
                index = head.index
                record = head.record
            else:
                record = arrivals[k - fill][0]
                index = addr(record)
            if last is not None and abs(index - last) <= 1:
                dense += 1
            last = index
            response = combine(record, data[index])
            if response is not None:
                delay_append((c + latency, 0, response))
            if len(pending) >= LANES:
                out_vectors.append(pending[:LANES])
                del pending[:LANES]
                flushes.append(c)
        self._last_index[0] = last
        dstats = self.dram_stats
        dstats.read_bytes += cfg.region.words_per_entry * 4 * n
        dstats.dense_bursts += dense
        dstats.sparse_bursts += n - dense
        dstats.busy_cycles = cycle + n - 1
        if fill:
            base = cfg.region.base_entry
            tail = []
            for vector in arrivals[n - fill:]:
                record = vector[0]
                index = addr(record)
                tail.append(Request((base + index) % BANKS, index, record))
            slots[:] = tail
        if out_vectors:
            out.push_n(out_vectors)
            stats = self.stats
            stats.vectors_out += len(out_vectors)
            stats.records_out += LANES * len(out_vectors)
        sstats = self.spad_stats
        sstats.requests += n
        sstats.grants += n
        sstats.bank_conflicts += n * fill
        sstats.considered_bids += n * (fill + 1)
        sstats.active_cycles += n
        self.stats.busy_cycles += n
        self._alloc.skip(n, len(port.queues))
        if self._last_rmw:
            self._last_rmw = ()
        return flushes

    def stall_reason(self) -> StallReason:
        reason = super().stall_reason()
        if reason is StallReason.LATENCY:
            return StallReason.DRAM_WAIT
        return reason
