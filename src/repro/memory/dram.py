"""DRAM/HBM model.

The paper's simulator uses Ramulator for cycle-accurate HBM timing; the
figures, however, depend on three DRAM properties rather than exact DDR
state machines: (1) high access latency that only thread-level parallelism
can hide, (2) a channel-parallelism-limited request rate, and (3) the
dense-vs-sparse traffic split that determines effective bandwidth.  This
module models exactly those three.

:class:`DramTile` reuses the scratchpad's issue-queue/allocator pipeline
with DRAM channels standing in for SRAM banks — requests from 16 lanes
compete for ``DRAM_CHANNELS`` channel slots per cycle, and responses return
after ``DRAM_LATENCY`` cycles.  Arbitrarily many requests may be in flight
(HBM's deep per-channel queues), which is what lets Aurochs hide latency by
keeping thousands of threads live (§III-A).
"""

from __future__ import annotations

from typing import List

from repro.dataflow.stats import DramStats
from repro.memory.issue_queue import DEPTH_AUROCHS
from repro.memory.scratchpad import ScratchpadMemory
from repro.memory.spad_tile import PortConfig, ScratchpadTile
from repro.observability.events import StallReason

#: HBM2 pseudo-channel count visible to one tile's DRAM interface.
DRAM_CHANNELS = 8

#: Round-trip DRAM latency in fabric cycles (≈100 ns at 1 GHz).
DRAM_LATENCY = 100

#: Modelled HBM capacity in 32-bit words (16 GiB).
DRAM_CAPACITY_WORDS = (16 * 1024 ** 3) // 4


class DramMemory(ScratchpadMemory):
    """Off-chip memory: same region interface, channel-interleaved."""

    def __init__(self, name: str,
                 capacity_words: int = DRAM_CAPACITY_WORDS,
                 channels: int = DRAM_CHANNELS):
        super().__init__(name, capacity_words, banks=channels)


class DramTile(ScratchpadTile):
    """A DRAM interface tile: scratchpad scheduling, DRAM timing and stats.

    Event-scheduling note: the inherited ``sched_poll`` sleeps on a timer at
    ``_delay[0][0]`` while responses are in flight.  That is exact even
    though injected latency spikes can make the delay line non-monotonic,
    because ``_retire`` is head-blocking — nothing behind the head retires
    before the head does, so the head's ready cycle is the earliest cycle
    the next tick could do anything.
    """

    def __init__(self, name: str, memory: DramMemory,
                 ports: List[PortConfig],
                 queue_depth: int = DEPTH_AUROCHS,
                 latency: int = DRAM_LATENCY):
        super().__init__(name, memory, ports, queue_depth=queue_depth,
                         in_order_dequeue=False, latency=latency)
        self.dram_stats = DramStats()
        self._last_index = [None] * len(ports)

    def _latency_at(self, cycle: int) -> int:
        """Round-trip latency, plus any injected DRAM latency spike.

        Latency spikes are *absorbed*, not raised: Aurochs hides DRAM
        latency with thread-level parallelism, so a spike shows up only as
        extra cycles — the graph still completes with identical results.
        """
        latency = self.latency
        if self.fault_injector is not None:
            latency += self.fault_injector.extra_latency(self.name, cycle)
        return latency

    def _execute(self, cycle: int, port_idx: int, request) -> None:
        cfg = self.ports[port_idx].config
        words = cfg.region.words_per_entry
        nbytes = words * 4
        if cfg.mode == "write":
            self.dram_stats.write_bytes += nbytes
        else:
            self.dram_stats.read_bytes += nbytes
        last = self._last_index[port_idx]
        if last is not None and abs(request.index - last) <= 1:
            self.dram_stats.dense_bursts += 1
        else:
            self.dram_stats.sparse_bursts += 1
        self._last_index[port_idx] = request.index
        self.dram_stats.busy_cycles = cycle
        super()._execute(cycle, port_idx, request)
        if self.tracer is not None:
            # len(_delay) is the outstanding-response count after this
            # issue: exactly the memory-level parallelism the tile is
            # sustaining (threads in flight hiding the round trip).
            self.tracer.mem_issue(self.name, len(self._delay))

    def stall_reason(self) -> StallReason:
        reason = super().stall_reason()
        if reason is StallReason.LATENCY:
            return StallReason.DRAM_WAIT
        return reason
