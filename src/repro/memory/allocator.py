"""The lane↔bank matching allocator (§II-C, §III-B).

Capstan frames sparse memory scheduling as a matching problem between 16
vector lanes and 16 SRAM banks: requests in each lane's issue queue bid for
bank access, and combinational logic finds a maximal lane-bank pairing in a
single cycle.  Hardware allocators of this kind (separable/wavefront
allocators) are greedy and approximate a maximum matching; we model that
with a rotating-priority greedy pass, which matches the throughput
characteristics the paper relies on without claiming optimality the
hardware doesn't have either.

At most one request is granted per lane and per bank each cycle.  Losing
bids are counted as bank conflicts for statistics.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.memory.issue_queue import IssueQueue, Request


class Allocator:
    """Greedy rotating-priority matcher between lanes and banks."""

    __slots__ = ("n_banks", "_rotor")

    def __init__(self, n_banks: int):
        self.n_banks = n_banks
        self._rotor = 0  # rotating lane priority for fairness

    def allocate(self, queues: Sequence[IssueQueue],
                 busy_banks: frozenset = frozenset()
                 ) -> Tuple[List[Tuple[int, Request]], int, int]:
        """Match one cycle of bids.

        ``busy_banks`` excludes banks already claimed by a fused port this
        cycle.  Returns ``(grants, conflicts, considered)`` where grants is
        a list of ``(lane, request)`` pairs, conflicts counts bids that lost
        to an occupied bank or lane, and considered is the total number of
        requests examined.
        """
        n_lanes = len(queues)
        taken_banks: Dict[int, bool] = {b: True for b in busy_banks}
        grants: List[Tuple[int, Request]] = []
        conflicts = 0
        considered = 0
        for offset in range(n_lanes):
            lane = (self._rotor + offset) % n_lanes
            granted_this_lane = False
            for request in queues[lane].bids():
                considered += 1
                if granted_this_lane:
                    conflicts += 1  # lane port already used this cycle
                    continue
                if request.bank in taken_banks:
                    conflicts += 1  # bank conflict: another lane won
                    continue
                taken_banks[request.bank] = True
                grants.append((lane, request))
                granted_this_lane = True
        self._rotor = (self._rotor + 1) % max(1, n_lanes)
        return grants, conflicts, considered

    def skip(self, calls: int, n_lanes: int) -> None:
        """Advance the rotor as ``calls`` empty :meth:`allocate` rounds would.

        The event-driven engine uses this when it skips a memory tile's
        idle cycles: the rotor advances on *every* allocate call, even with
        empty queues, so skipped cycles must be replayed or future grant
        ordering (and the conflict statistics derived from it) would drift
        from the exhaustive engine's.
        """
        self._rotor = (self._rotor + calls) % max(1, n_lanes)
