"""The lane↔bank matching allocator (§II-C, §III-B).

Capstan frames sparse memory scheduling as a matching problem between 16
vector lanes and 16 SRAM banks: requests in each lane's issue queue bid for
bank access, and combinational logic finds a maximal lane-bank pairing in a
single cycle.  Hardware allocators of this kind (separable/wavefront
allocators) are greedy and approximate a maximum matching; we model that
with a rotating-priority greedy pass, which matches the throughput
characteristics the paper relies on without claiming optimality the
hardware doesn't have either.

At most one request is granted per lane and per bank each cycle.  Losing
bids are counted as bank conflicts for statistics.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.memory.issue_queue import IssueQueue, Request


class Allocator:
    """Greedy rotating-priority matcher between lanes and banks."""

    __slots__ = ("n_banks", "_rotor")

    def __init__(self, n_banks: int):
        self.n_banks = n_banks
        self._rotor = 0  # rotating lane priority for fairness

    def allocate(self, queues: Sequence[IssueQueue],
                 busy_banks: frozenset = frozenset()
                 ) -> Tuple[List[Tuple[int, Request]], int, int]:
        """Match one cycle of bids.

        ``busy_banks`` excludes banks already claimed by a fused port this
        cycle.  Returns ``(grants, conflicts, considered)`` where grants is
        a list of ``(lane, request)`` pairs, conflicts counts bids that lost
        to an occupied bank or lane, and considered is the total number of
        requests examined.
        """
        # Equivalent to scanning ``bids()`` per lane and classifying each
        # request, but restated around one identity: per lane, the grant is
        # the first live request whose bank is free, and every other live
        # request is a conflict — so ``conflicts = live - len(grants)`` and
        # ``considered = live``.  Banks are tracked in an int bitmask and
        # empty lanes are skipped without building a bid list; this is the
        # allocator's hot path (one call per port per cycle).
        n_lanes = len(queues)
        taken = 0
        for b in busy_banks:
            taken |= 1 << b
        grants: List[Tuple[int, Request]] = []
        append = grants.append
        conflicts = 0
        considered = 0
        rotor = self._rotor
        for offset in range(n_lanes):
            lane = rotor + offset
            if lane >= n_lanes:
                lane -= n_lanes
            queue = queues[lane]
            slots = queue.slots
            if not slots:
                continue
            if queue.in_order_dequeue:
                # Capstan: granted-but-undequeued entries linger in the
                # slots and are not bids; count only live requests.
                live = 0
                won = None
                for request in slots:
                    if request.granted:
                        continue
                    live += 1
                    if won is None:
                        bit = 1 << request.bank
                        if not taken & bit:
                            taken |= bit
                            won = request
                considered += live
                if won is not None:
                    append((lane, won))
                    conflicts += live - 1
                else:
                    conflicts += live
            else:
                # Aurochs: every slot is live (grants invalidate
                # immediately), so the scan can stop at the first free bank.
                n = len(slots)
                considered += n
                for request in slots:
                    bit = 1 << request.bank
                    if not taken & bit:
                        taken |= bit
                        append((lane, request))
                        conflicts += n - 1
                        break
                else:
                    conflicts += n
        self._rotor = (rotor + 1) % max(1, n_lanes)
        return grants, conflicts, considered

    def skip(self, calls: int, n_lanes: int) -> None:
        """Advance the rotor as ``calls`` empty :meth:`allocate` rounds would.

        The event-driven engine uses this when it skips a memory tile's
        idle cycles: the rotor advances on *every* allocate call, even with
        empty queues, so skipped cycles must be replayed or future grant
        ordering (and the conflict statistics derived from it) would drift
        from the exhaustive engine's.
        """
        self._rotor = (self._rotor + calls) % max(1, n_lanes)
