"""Retry with exponential backoff and deterministic jitter.

Query-level recovery: when a fault surfaces as a typed
:class:`~repro.errors.FaultError`, the caller re-runs the query.  Backoff
spacing follows the standard exponential-plus-jitter discipline of
production stream processors, but the jitter is drawn from a seeded RNG and
the *delays are computed, logged, and (by default) not slept* — this is a
simulator, so wall-clock sleeping is opt-in via the ``sleep`` callable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type

from repro.errors import FaultError


@dataclass
class RetryPolicy:
    """How many times to retry and how long to back off between tries."""

    retries: int = 3                 # retry attempts after the first try
    base_delay: float = 0.01         # seconds before the first retry
    max_delay: float = 1.0           # backoff ceiling
    multiplier: float = 2.0          # exponential growth factor
    jitter: float = 0.5              # +/- fraction of the delay randomized
    seed: int = 0                    # jitter RNG seed (determinism)

    def delays(self) -> List[float]:
        """The full backoff schedule, deterministic for a given seed."""
        rng = random.Random(self.seed)
        out: List[float] = []
        delay = self.base_delay
        for __ in range(self.retries):
            jittered = delay * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))
            out.append(min(max(jittered, 0.0), self.max_delay))
            delay = min(delay * self.multiplier, self.max_delay)
        return out


@dataclass
class RetryAttempt:
    """One failed attempt, as recorded in a retry log."""

    attempt: int                     # 0-based attempt index that failed
    error: str                       # repr of the exception
    kind: str = ""                   # FaultError.kind when available
    site: str = ""                   # FaultError.site when available
    delay: float = 0.0               # backoff applied before the next try


def retry_call(fn: Callable[[], object], *,
               policy: Optional[RetryPolicy] = None,
               retry_on: Tuple[Type[BaseException], ...] = (FaultError,),
               sleep: Optional[Callable[[float], None]] = None,
               log: Optional[List[RetryAttempt]] = None,
               deadline: Optional[float] = None):
    """Call ``fn`` with up to ``policy.retries`` retries on ``retry_on``.

    Each failure is appended to ``log`` (if given); the final failure is
    re-raised unchanged so callers still see the typed fault.

    ``deadline`` is a backoff budget in seconds: the cumulative computed
    delays (slept or not) never exceed it.  A backoff step that would
    cross the deadline is *clamped* to the remaining budget — the caller
    still gets that retry, just after a shorter sleep — and once the
    budget is fully spent the last typed error is re-raised: a caller
    with 50ms to spend must neither sit out a 1s backoff nor be denied a
    retry it still has 10ms for.  The budget is measured over the
    deterministic schedule, not wall clock, so behaviour is identical
    whether or not ``sleep`` is wired.
    """
    policy = policy if policy is not None else RetryPolicy()
    delays = policy.delays()
    attempt = 0
    spent = 0.0
    while True:
        try:
            return fn()
        except retry_on as err:
            delay = delays[attempt] if attempt < len(delays) else 0.0
            if deadline is not None and attempt < policy.retries:
                # Clamp the final sleep to the remaining budget: the
                # schedule must never overshoot the deadline by a step.
                delay = min(delay, max(0.0, deadline - spent))
            if log is not None:
                log.append(RetryAttempt(
                    attempt=attempt, error=repr(err),
                    kind=getattr(err, "kind", ""),
                    site=getattr(err, "site", ""),
                    delay=delay,
                ))
            if attempt >= policy.retries:
                raise
            if deadline is not None and spent >= deadline:
                raise
            if sleep is not None and delay > 0.0:
                sleep(delay)
            spent += delay
            attempt += 1
