"""Deterministic fault injector.

:class:`FaultInjector` owns a schedule of :class:`~repro.reliability.faults.FaultEvent`
and arms itself on a graph through three narrow hooks, each zero-cost when
no injector is attached:

* ``Stream.push`` consults ``stream.monitor`` — the injector may corrupt a
  record field or drop the vector in transit, while the stream accumulates
  producer/consumer checksums for detection;
* ``Engine`` consults :meth:`stalled` before ticking each tile and
  :meth:`verify_streams` after the drain;
* ``ScratchpadTile._execute`` consults :meth:`check_bank`, and
  ``DramTile._latency_at`` consults :meth:`extra_latency`.

Determinism contract: the schedule is fixed at construction (optionally
drawn from a seed via :meth:`random`), events fire at fixed cycles, and the
:attr:`log` records every firing as ``(run, cycle, kind, site)`` — the same
seed reproduces the identical fault schedule, firing log, and outcome.
Transient (``once=True``) events are consumed when they fire, so a
checkpoint-restore retry of the same graph proceeds cleanly; permanent
events re-fire every run and surface as typed faults.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import BankFailureError, ChecksumError
from repro.dataflow.record import as_u32
from repro.reliability.faults import (
    STREAM_KINDS,
    FaultEvent,
    FaultKind,
    random_schedule,
)

#: XOR pattern applied to a corrupted record field (arbitrary, stable).
_CORRUPT_MASK = 0xDEADBEEF

FaultRecord = Tuple[int, int, str, str]   # (run, cycle, kind, site)


class FaultInjector:
    """Replays a deterministic fault schedule against one graph."""

    def __init__(self, events: Iterable[FaultEvent] = (), seed: int = 0):
        self.events: List[FaultEvent] = list(events)
        self.seed = seed
        self.log: List[FaultRecord] = []
        self.now = 0          # current cycle, maintained by the engine
        self.runs = 0         # how many Engine.run calls have started
        self._stream_events: Dict[str, List[FaultEvent]] = {}
        self._stall_events: Dict[str, List[FaultEvent]] = {}
        self._bank_events: Dict[str, List[FaultEvent]] = {}
        self._dram_events: Dict[str, List[FaultEvent]] = {}
        self._index()

    @classmethod
    def random(cls, seed: int, **site_kwargs) -> "FaultInjector":
        """Seeded schedule over named sites (see
        :func:`~repro.reliability.faults.random_schedule`)."""
        return cls(random_schedule(seed, **site_kwargs), seed=seed)

    def _index(self) -> None:
        self._stream_events.clear()
        self._stall_events.clear()
        self._bank_events.clear()
        self._dram_events.clear()
        for ev in self.events:
            if ev.kind in STREAM_KINDS:
                table = self._stream_events
            elif ev.kind is FaultKind.TILE_STALL:
                table = self._stall_events
            elif ev.kind is FaultKind.BANK_FAIL:
                table = self._bank_events
            else:
                table = self._dram_events
            table.setdefault(ev.site, []).append(ev)

    # -- lifecycle ---------------------------------------------------------

    def arm(self, graph) -> None:
        """Attach injection hooks to every stream and memory tile.

        Idempotent; only sites named in the schedule matter, but arming all
        streams enables end-to-end checksum verification everywhere.
        """
        for stream in graph.streams:
            stream.monitor = self
        for tile in graph.tiles:
            if hasattr(tile, "fault_injector"):
                tile.fault_injector = self

    def disarm(self, graph) -> None:
        """Detach all hooks, restoring the zero-overhead fault-free path."""
        for stream in graph.streams:
            if stream.monitor is self:
                stream.monitor = None
                stream.reset_checksums()
        for tile in graph.tiles:
            if getattr(tile, "fault_injector", None) is self:
                tile.fault_injector = None

    def begin_run(self, graph) -> None:
        """Called by the engine at the top of ``run``: arm + fresh sums."""
        self.arm(graph)
        self.runs += 1
        self.now = 0
        for stream in graph.streams:
            stream.reset_checksums()

    def reset(self) -> None:
        """Forget all firing state so the same schedule replays from
        scratch (used to prove seed-reproducibility)."""
        for ev in self.events:
            ev.fired = 0
            ev.consumed = False
        self.log.clear()
        self.runs = 0
        self.now = 0

    def _fire(self, ev: FaultEvent, cycle: int) -> None:
        ev.fired += 1
        self.log.append((self.runs, cycle, ev.kind.value, ev.site))

    # -- stream hook (called from Stream.push) -----------------------------

    def on_push(self, stream, vector):
        """Possibly corrupt or drop ``vector`` in transit; None = dropped."""
        events = self._stream_events.get(stream.name)
        if not events:
            return vector
        for ev in events:
            if ev.consumed or self.now < ev.cycle:
                continue
            if ev.once:
                ev.consumed = True
            self._fire(ev, self.now)
            if ev.kind is FaultKind.DROP_VECTOR:
                return None
            lane = min(ev.lane, len(vector) - 1)
            record = vector[lane]
            if not record:
                return vector
            idx = min(ev.field_idx, len(record) - 1)
            garbage = as_u32(hash(record[idx]) ^ _CORRUPT_MASK)
            if garbage == record[idx]:
                garbage = as_u32(garbage + 1)
            corrupted = record[:idx] + (garbage,) + record[idx + 1:]
            vector = list(vector)
            vector[lane] = corrupted
            return vector
        return vector

    # -- engine hooks ------------------------------------------------------

    def stalled(self, tile_name: str, cycle: int) -> bool:
        """True if an injected stall freezes ``tile_name`` this cycle."""
        events = self._stall_events.get(tile_name)
        if not events:
            return False
        active = False
        for ev in events:
            if ev.consumed or cycle < ev.cycle:
                continue
            if ev.duration is not None and cycle >= ev.cycle + ev.duration:
                if ev.once:
                    ev.consumed = True     # transient stall has elapsed
                continue
            if ev.fired == 0:
                self._fire(ev, cycle)
            else:
                ev.fired += 1
            active = True
        return active

    def stall_starts(self) -> List[Tuple[str, int]]:
        """``(site, first_cycle)`` for every scheduled tile stall.

        The event-driven engine pre-arms a wake timer at each start cycle so
        a tile that happens to be asleep when its stall window opens still
        suspends at exactly the cycle the exhaustive engine would start
        skipping it (first firing is logged at the same cycle either way).
        """
        return [(site, ev.cycle)
                for site, events in self._stall_events.items()
                for ev in events]

    def stall_clear_cycle(self, tile_name: str, cycle: int) -> Optional[int]:
        """First cycle at which no stall active on ``tile_name`` at
        ``cycle`` is still in its window, or None for an indefinite stall.

        Only meaningful right after :meth:`stalled` returned True; the
        event-driven engine uses it to suspend the tile until the window
        closes instead of re-checking every cycle.
        """
        events = self._stall_events.get(tile_name, ())
        latest = cycle
        for ev in events:
            if ev.consumed or cycle < ev.cycle:
                continue
            if ev.duration is None:
                return None
            end = ev.cycle + ev.duration
            if end > latest:
                latest = end
        return latest if latest > cycle else cycle + 1

    def active_stall_site(self, cycle: int) -> Optional[str]:
        """The stalled tile blamed when the watchdog trips, if any."""
        for site, events in sorted(self._stall_events.items()):
            for ev in events:
                if ev.consumed or cycle < ev.cycle:
                    continue
                if ev.duration is None or cycle < ev.cycle + ev.duration:
                    return site
        return None

    def verify_streams(self, graph, cycle: int) -> None:
        """End-of-run detection: sent-vs-received checksum per stream."""
        for stream in graph.streams:
            if stream.monitor is not self or stream.checksums_match():
                continue
            kind = FaultKind.CORRUPT_RECORD
            for ev in self._stream_events.get(stream.name, ()):
                if ev.fired:
                    kind = ev.kind
                    break
            raise ChecksumError(
                f"stream {stream.name!r} checksum mismatch after drain "
                f"(sent={stream.sent_sum:#010x} "
                f"recv={stream.recv_sum:#010x})",
                kind=kind.value, site=stream.name, cycle=cycle,
                detail=f"{stream.pushed_records} records pushed",
            )

    # -- memory hooks ------------------------------------------------------

    def check_bank(self, tile_name: str, bank: int, cycle: int) -> None:
        """Raise :class:`BankFailureError` if ``bank`` is failed right now."""
        events = self._bank_events.get(tile_name)
        if not events:
            return
        for ev in events:
            if ev.consumed or cycle < ev.cycle or ev.bank != bank:
                continue
            if ev.duration is not None and cycle >= ev.cycle + ev.duration:
                if ev.once:
                    ev.consumed = True
                continue
            if ev.once:
                ev.consumed = True         # transient: heals after detection
            self._fire(ev, cycle)
            raise BankFailureError(
                f"bank {bank} of {tile_name!r} failed at cycle {cycle}",
                kind=ev.kind.value, site=tile_name, cycle=cycle,
                detail=f"bank={bank}",
            )

    def extra_latency(self, tile_name: str, cycle: int) -> int:
        """Added DRAM latency from any active spike window."""
        events = self._dram_events.get(tile_name)
        if not events:
            return 0
        penalty = 0
        for ev in events:
            if ev.consumed or cycle < ev.cycle:
                continue
            if ev.duration is not None and cycle >= ev.cycle + ev.duration:
                if ev.once:
                    ev.consumed = True
                continue
            if ev.fired == 0:
                self._fire(ev, cycle)
            else:
                ev.fired += 1
            penalty += ev.penalty
        return penalty

    # -- introspection -----------------------------------------------------

    def describe(self) -> List[Tuple]:
        """Stable schedule summary (for reproducibility assertions)."""
        return [ev.key() for ev in self.events]

    def fired_events(self) -> List[FaultEvent]:
        return [ev for ev in self.events if ev.fired]

    def __repr__(self) -> str:
        return (f"FaultInjector(seed={self.seed}, events={len(self.events)}, "
                f"fired={len(self.fired_events())}, runs={self.runs})")
