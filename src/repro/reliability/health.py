"""Graceful degradation: health accounting for long-running pipelines.

The continuous-analytics deployment (§IV-B) must not die on one bad batch.
:class:`DegradePolicy` tells a pipeline *how* to degrade — skip-and-log
poisoned rows, re-accept late rows within a bounded staleness window, serve
a stale standing-query result when an evaluation fails — and
:class:`HealthMonitor` keeps the structured account a supervisor reads
instead of a stack trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class DegradePolicy:
    """Degradation knobs for a streaming pipeline.

    * ``max_staleness`` — a late (out-of-order) event is still accepted,
      re-stamped to the current watermark, if it is at most this many time
      units old; older events are dropped (and logged).  ``0`` drops all
      late events.
    * ``serve_stale`` — a failing standing query returns its last good
      result (marked stale) instead of raising.
    * ``max_consecutive_failures`` — after this many back-to-back failures
      of one query, degradation stops masking and the error propagates
      (a permanently-broken query must surface).
    * ``serve_partial`` — a sharded scatter/gather query that lost shard
      fault domains for good may return a typed
      :class:`~repro.serving.shard.PartialResult` (explicit coverage
      fraction, never a silently wrong answer) instead of failing whole.
    * ``min_coverage`` — the input-row coverage fraction below which a
      partial result is refused and the query fails typed instead (a
      3%-coverage "answer" is worse than an honest failure).
    """

    max_staleness: int = 0
    serve_stale: bool = True
    max_consecutive_failures: int = 5
    serve_partial: bool = False
    min_coverage: float = 0.5


@dataclass
class Incident:
    """One logged degradation event."""

    kind: str          # 'late_requeued' | 'late_dropped' | 'bad_row'
                       # | 'query_failure'
    site: str          # query name or ingest site
    time: int          # stream time (watermark) when it happened
    detail: str = ""


@dataclass
class QueryHealth:
    """Per-standing-query health counters."""

    name: str
    evaluations: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    stale_served: int = 0
    last_error: str = ""


class HealthMonitor:
    """Structured health account of one streaming pipeline.

    Optionally wired to a PR 3
    :class:`~repro.observability.metrics.MetricsRegistry`: every incident
    also increments a ``health.<kind>`` counter there, so degradation shows
    up in the same metrics surface as stalls and serving outcomes instead
    of only in the incident log.  Unwired (the default), recording costs
    one is-None test.
    """

    def __init__(self, metrics=None):
        self.incidents: List[Incident] = []
        self.rows_ok = 0
        self.rows_requeued = 0
        self.rows_dropped = 0
        self.rows_bad = 0
        self.queries: Dict[str, QueryHealth] = {}
        self.metrics: Optional[object] = metrics

    # -- recording ---------------------------------------------------------

    def record_ok(self, n: int = 1) -> None:
        self.rows_ok += n

    def record_incident(self, kind: str, site: str, time: int,
                        detail: str = "") -> Incident:
        inc = Incident(kind, site, time, detail)
        self.incidents.append(inc)
        if kind == "late_requeued":
            self.rows_requeued += 1
        elif kind == "late_dropped":
            self.rows_dropped += 1
        elif kind == "bad_row":
            self.rows_bad += 1
        if self.metrics is not None:
            self.metrics.counter(f"health.{kind}").inc()
        return inc

    def query(self, name: str) -> QueryHealth:
        if name not in self.queries:
            self.queries[name] = QueryHealth(name)
        return self.queries[name]

    # -- reading -----------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return bool(self.incidents)

    def status(self) -> str:
        return "degraded" if self.degraded else "healthy"

    def report(self) -> Dict[str, object]:
        """A plain-dict health report, stable enough to assert on."""
        return {
            "status": self.status(),
            "rows_ok": self.rows_ok,
            "rows_requeued": self.rows_requeued,
            "rows_dropped": self.rows_dropped,
            "rows_bad": self.rows_bad,
            "incidents": len(self.incidents),
            "queries": {
                name: {
                    "evaluations": q.evaluations,
                    "failures": q.failures,
                    "stale_served": q.stale_served,
                    "last_error": q.last_error,
                }
                for name, q in sorted(self.queries.items())
            },
        }

    def summary(self) -> str:
        r = self.report()
        lines = [f"pipeline {r['status']}: {r['rows_ok']} rows ok, "
                 f"{r['rows_requeued']} requeued, {r['rows_dropped']} "
                 f"dropped, {r['rows_bad']} bad"]
        for name, q in r["queries"].items():          # type: ignore[union-attr]
            lines.append(f"  query {name}: {q['evaluations']} evals, "
                         f"{q['failures']} failures, "
                         f"{q['stale_served']} stale")
        return "\n".join(lines)
