"""Reliability layer: fault injection, detection, and recovery.

Aurochs' motivating deployment is a long-running streaming-analytics fabric
(§I, §IV-B); this package makes the reproduction survivable rather than
fail-stop, in three tiers:

* **inject** — :class:`FaultInjector` replays a deterministic, seeded
  schedule of :class:`FaultEvent` (record corruption, dropped vectors,
  tile stalls, scratchpad bank failures, DRAM latency spikes) through
  narrow hooks in the engine, streams, and memory tiles that cost one
  is-None test when disabled;
* **detect** — end-to-end stream checksums, the engine watchdog, and bank
  checks surface faults as the typed
  :class:`~repro.errors.FaultError` hierarchy (kind, site, cycle);
* **recover** — :func:`checkpoint`/restore at stream-end boundaries plus
  :func:`run_with_recovery` at the engine level,
  :class:`RetryPolicy`-driven backoff at the query level
  (``ExecutionContext.run_with_retry``), and
  :class:`DegradePolicy`-driven graceful degradation in
  ``workloads.streaming``.

Determinism contract: same seed -> same fault schedule -> same firing log
and pass/fail outcome, which is what lets every future perf PR prove it
does not regress under faults.
"""

from repro.errors import (
    BankFailureError,
    ChecksumError,
    FaultError,
    StallError,
)
from repro.reliability.faults import FaultEvent, FaultKind, random_schedule
from repro.reliability.injector import FaultInjector
from repro.reliability.checkpoint import GraphCheckpoint, checkpoint, restore
from repro.reliability.retry import RetryAttempt, RetryPolicy, retry_call
from repro.reliability.recovery import RecoveryResult, run_with_recovery
from repro.reliability.health import (
    DegradePolicy,
    HealthMonitor,
    Incident,
    QueryHealth,
)

__all__ = [
    "FaultError", "ChecksumError", "StallError", "BankFailureError",
    "FaultEvent", "FaultKind", "random_schedule",
    "FaultInjector",
    "GraphCheckpoint", "checkpoint", "restore",
    "RetryAttempt", "RetryPolicy", "retry_call",
    "RecoveryResult", "run_with_recovery",
    "DegradePolicy", "HealthMonitor", "Incident", "QueryHealth",
]
