"""Graph checkpoint/restore at stream-end boundaries.

The engine's stream-end condition (§III-A's drain protocol) is a natural
consistency point: every stream is empty and every tile's in-flight buffers
have drained, so the graph's durable state is just source positions, sink
contents, scratchpad/DRAM region data, and accumulated statistics.
:func:`checkpoint` snapshots that state; :func:`restore` writes it back *in
place* — tile, stream, memory, and region object identities are preserved,
so closures and external handles into the graph stay valid.  That is what
lets recovery re-run a graph after a transient fault: restore the pre-run
checkpoint, retry, and the fault (already consumed from the injector's
schedule) does not recur.

The snapshot is generic: each stateful object's attribute dict (``__dict__``
and/or ``__slots__``) is deep-copied with a memo that pins the graph's own
tiles, streams, memories, and regions, so wiring references survive as
references while mutable payloads (FIFOs, issue queues, region data,
packers) are copied by value.  Restores may be repeated: the checkpoint is
never consumed.

Limitation: state captured *outside* the graph — e.g. a Python list a
closure appends to — is not part of the snapshot.  Route side effects
through sinks or scratchpad regions if they must roll back.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Tuple


def _stateful_objects(graph) -> List:
    """The graph's durable objects, deduplicated, in deterministic order."""
    objects: List = []
    seen: set = set()

    def add(obj) -> None:
        if obj is not None and id(obj) not in seen:
            seen.add(id(obj))
            objects.append(obj)

    for tile in graph.tiles:
        add(tile)
        memory = getattr(tile, "memory", None)
        if memory is not None:
            add(memory)
            for region in getattr(memory, "regions", {}).values():
                add(region)
    for stream in graph.streams:
        add(stream)
    return objects


#: Runtime hooks are owned by their runtimes, not the graph: fault
#: consumption (``monitor``/``fault_injector``) must survive a restore, and
#: the event scheduler (``sched``) and tracer (``tracer``) re-arm per run —
#: snapshotting them would resurrect a stale engine's hooks (and deep-copy
#: the scheduler's heap) into the next run.
_EXCLUDED_ATTRS = frozenset({"monitor", "fault_injector", "sched", "tracer",
                             # Stream stores monitor/tracer in private slots
                             # behind arm/disarm properties, plus the derived
                             # "hooked" flag; all three are runtime-owned.
                             "_monitor", "_tracer", "_mt"})


def _get_state(obj) -> Dict[str, object]:
    """Attribute snapshot covering both ``__dict__`` and ``__slots__``."""
    state: Dict[str, object] = {}
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot not in state and hasattr(obj, slot):
                state[slot] = getattr(obj, slot)
    if hasattr(obj, "__dict__"):
        state.update(obj.__dict__)
    for attr in _EXCLUDED_ATTRS:
        state.pop(attr, None)
    return state


class GraphCheckpoint:
    """A reusable snapshot of one graph's durable state."""

    def __init__(self, graph):
        self.graph = graph
        self._objects = _stateful_objects(graph)
        # One shared memo pins every graph-owned object, so cross-references
        # (stream.producer, port.config.region, ...) are stored as-is while
        # their mutable contents are copied by value.
        memo = {id(obj): obj for obj in self._objects}
        self._states: List[Dict[str, object]] = [
            copy.deepcopy(_get_state(obj), memo) for obj in self._objects
        ]

    def restore(self) -> None:
        """Write the snapshot back into the live objects, in place."""
        memo = {id(obj): obj for obj in self._objects}
        for obj, saved in zip(self._objects, self._states):
            fresh = copy.deepcopy(saved, memo)
            for key, value in fresh.items():
                setattr(obj, key, value)

    def stats(self) -> Tuple[int, int]:
        """(objects, attributes) covered — for tests and debugging."""
        return len(self._objects), sum(len(s) for s in self._states)


def checkpoint(graph) -> GraphCheckpoint:
    """Snapshot ``graph`` (conventionally at a stream-end boundary)."""
    return GraphCheckpoint(graph)


def restore(cp: GraphCheckpoint) -> None:
    """Convenience alias for :meth:`GraphCheckpoint.restore`."""
    cp.restore()
