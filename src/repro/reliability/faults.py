"""Fault model: the kinds of hardware faults the injector can schedule.

The motivating Aurochs deployment is continuous streaming analytics (§I,
§IV-B): a long-running fabric that must survive transient faults.  This
module enumerates the fault classes the reproduction models and the
deterministic schedule format the injector consumes.  A schedule is a list
of :class:`FaultEvent` — everything about when and where a fault fires is
decided up front (optionally from a seeded RNG), so the same seed always
produces the same fault schedule and therefore the same pass/fail outcome.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple


class FaultKind(str, Enum):
    """The fault classes the reliability layer can inject and detect."""

    #: Flip one record field while a vector is in transit on a stream.
    CORRUPT_RECORD = "corrupt_record"
    #: Lose an entire vector in transit on a stream.
    DROP_VECTOR = "drop_vector"
    #: Freeze a tile (it does not tick) for ``duration`` cycles.
    TILE_STALL = "tile_stall"
    #: A scratchpad SRAM bank (or DRAM channel) fails; access raises.
    BANK_FAIL = "bank_fail"
    #: DRAM round-trip latency increases by ``penalty`` for a window.
    DRAM_SPIKE = "dram_spike"


#: Kinds that target a stream (injected at push time).
STREAM_KINDS = (FaultKind.CORRUPT_RECORD, FaultKind.DROP_VECTOR)


@dataclass(slots=True)
class FaultEvent:
    """One scheduled fault.

    ``site`` names the stream or tile the fault targets; ``cycle`` is the
    first cycle (within a run) at which it is eligible to fire.  ``once``
    events model *transient* faults: they are consumed when they fire (or
    when their window elapses), so a retried run proceeds cleanly.
    ``once=False`` models a *permanent* fault that re-fires on every run
    and must surface to the caller as a typed :class:`~repro.errors.FaultError`.
    """

    kind: FaultKind
    site: str
    cycle: int = 0
    duration: Optional[int] = 1     # stall/bank/spike window; None = forever
    lane: int = 0                   # CORRUPT_RECORD: which lane of the vector
    field_idx: int = 0              # CORRUPT_RECORD: which record field
    bank: int = 0                   # BANK_FAIL: which bank/channel
    penalty: int = 0                # DRAM_SPIKE: extra latency cycles
    once: bool = True
    # runtime state (reset by FaultInjector.reset)
    fired: int = field(default=0, compare=False)
    consumed: bool = field(default=False, compare=False)

    def key(self) -> Tuple:
        """Schedule identity, used to compare schedules across seeds."""
        return (self.kind.value, self.site, self.cycle, self.duration,
                self.lane, self.field_idx, self.bank, self.penalty,
                self.once)


def random_schedule(seed: int, *,
                    streams: Sequence[str] = (),
                    tiles: Sequence[str] = (),
                    spads: Sequence[str] = (),
                    drams: Sequence[str] = (),
                    n_faults: int = 4,
                    horizon: int = 2_000,
                    banks: int = 16,
                    transient: bool = True) -> List[FaultEvent]:
    """Draw a deterministic schedule of ``n_faults`` events from ``seed``.

    Each named site category enables its fault kinds; at least one category
    must be non-empty.  The same ``(seed, sites)`` always yields an
    identical schedule.
    """
    pool: List[Tuple[FaultKind, str]] = []
    for name in streams:
        pool.append((FaultKind.CORRUPT_RECORD, name))
        pool.append((FaultKind.DROP_VECTOR, name))
    for name in tiles:
        pool.append((FaultKind.TILE_STALL, name))
    for name in spads:
        pool.append((FaultKind.BANK_FAIL, name))
    for name in drams:
        pool.append((FaultKind.DRAM_SPIKE, name))
    if not pool:
        raise ValueError("random_schedule needs at least one fault site")
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    for __ in range(n_faults):
        kind, site = pool[rng.randrange(len(pool))]
        ev = FaultEvent(kind, site, cycle=rng.randrange(horizon),
                        once=transient)
        if kind is FaultKind.CORRUPT_RECORD:
            ev.lane = rng.randrange(16)
            ev.field_idx = rng.randrange(4)
        elif kind is FaultKind.TILE_STALL:
            ev.duration = rng.randrange(10, 200)
        elif kind is FaultKind.BANK_FAIL:
            ev.bank = rng.randrange(banks)
            ev.duration = rng.randrange(50, 500)
        elif kind is FaultKind.DRAM_SPIKE:
            ev.duration = rng.randrange(100, 1_000)
            ev.penalty = rng.randrange(50, 400)
        events.append(ev)
    events.sort(key=lambda e: (e.cycle, e.site, e.kind.value))
    return events
