"""Engine-level recovery: checkpoint, run, restore-on-fault, retry.

:func:`run_with_recovery` is the harness every perf PR can use to prove a
change survives faults: take a stream-end checkpoint of the graph, run it
under a (possibly fault-injecting) engine, and on a typed
:class:`~repro.errors.FaultError` restore the checkpoint and retry.
Transient faults are consumed from the injector's schedule on their first
firing, so the retried run is clean and produces exactly the fault-free
result; permanent faults exhaust the retry budget and re-raise, typed.
Untyped errors (a genuine bug) propagate immediately — recovery never
masks a crash that is not a modeled fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import FaultError
from repro.dataflow.engine import Engine
from repro.dataflow.stats import SimStats
from repro.reliability.checkpoint import GraphCheckpoint, checkpoint
from repro.reliability.injector import FaultInjector
from repro.reliability.retry import RetryAttempt, RetryPolicy


@dataclass
class RecoveryResult:
    """Outcome of a recovered run."""

    stats: SimStats                       # stats of the successful attempt
    attempts: int                         # total runs (1 = no fault hit)
    recovered: bool                       # True if any retry was needed
    failures: List[RetryAttempt] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def run_with_recovery(graph, *,
                      injector: Optional[FaultInjector] = None,
                      retries: int = 2,
                      max_cycles: int = 50_000_000,
                      deadlock_window: int = 50_000) -> RecoveryResult:
    """Run ``graph`` to quiescence, recovering from transient faults.

    The graph is checkpointed once, before the first attempt (a stream-end
    boundary by construction: nothing is in flight yet).  Each
    :class:`FaultError` rolls the graph back to that checkpoint and retries,
    up to ``retries`` times; the last failure is re-raised.
    """
    cp: GraphCheckpoint = checkpoint(graph)
    failures: List[RetryAttempt] = []
    attempt = 0
    while True:
        engine = Engine(graph, max_cycles=max_cycles,
                        deadlock_window=deadlock_window, injector=injector)
        try:
            stats = engine.run()
            return RecoveryResult(stats=stats, attempts=attempt + 1,
                                  recovered=attempt > 0, failures=failures)
        except FaultError as err:
            failures.append(RetryAttempt(
                attempt=attempt, error=repr(err),
                kind=err.kind, site=err.site,
            ))
            if attempt >= retries:
                raise
            cp.restore()
            attempt += 1
