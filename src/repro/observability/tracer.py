"""The cycle-level tracer: bounded event ring + exact stall attribution.

Zero-cost-when-disabled contract (the reliability-injector pattern): with
no tracer attached every hook site pays one ``is None`` test — the engine
hot loops are unchanged, and ``SimStats`` are bit-identical tracer-on vs
tracer-off.

Two data products, deliberately separated:

* the **event ring** — a bounded ``deque`` of structured event tuples (see
  :mod:`repro.observability.events` for the schema) used for the Chrome/
  Perfetto export and the timeline dump; old events fall off the back, so
  exports are bounded no matter how long the run;
* the **attribution accumulators** — per-tile cycle buckets maintained
  from fire/stall *transitions*, exact for the whole run regardless of
  ring capacity.  Because transitions only happen on real ticks, and a
  tile the event scheduler skips is provably frozen, attribution (and the
  event sequence itself) is bit-identical across both engine schedulers.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.observability.events import (
    ATTRIBUTION_KEYS,
    BANK_ROUND,
    COMPUTE,
    MEM_ISSUE,
    MEM_RETIRE,
    STREAM_CLOSE,
    STREAM_POP,
    STREAM_PUSH,
    TILE_FIRE,
    TILE_STALL,
    StallReason,
)
from repro.observability.metrics import MetricsRegistry

#: Default event-ring capacity (events, not cycles).
DEFAULT_CAPACITY = 65_536


class Tracer:
    """Collects structured events and stall attribution for one run.

    Attach via ``Engine(graph, tracer=Tracer())``.  After the run:

    * :meth:`attribution` — per-tile cycle decomposition, each row summing
      exactly to the simulated cycle count;
    * :attr:`metrics` — a :class:`MetricsRegistry` of per-tile stall
      counters, occupancy gauges, stream-depth and DRAM-MLP histograms;
    * :meth:`chrome_trace` / :meth:`export_chrome` — ``trace.json`` for
      chrome://tracing or ui.perfetto.dev;
    * :meth:`timeline` — a compact per-tile transition dump.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.emitted = 0              # total events, including dropped
        self.now = 0                  # current cycle, maintained by the engine
        self.runs = 0
        self.total_cycles: Optional[int] = None   # set by finalize()
        self.metrics = MetricsRegistry()
        # name -> [interval_start_cycle, current_bucket_key]
        self._state: Dict[str, List] = {}
        # name -> {bucket_key: cycles}; exact, independent of the ring.
        self._buckets: Dict[str, Dict[str, int]] = {}
        # name -> cycles in which >=1 allocator bid lost a bank conflict.
        self.conflict_cycles: Dict[str, int] = {}

    # -- lifecycle (engine-driven) ----------------------------------------

    def arm(self, graph) -> None:
        """Attach this tracer to every stream and tile of ``graph``."""
        for stream in graph.streams:
            stream.tracer = self
        for tile in graph.tiles:
            tile.tracer = self

    def disarm(self, graph) -> None:
        for stream in graph.streams:
            if stream.tracer is self:
                stream.tracer = None
        for tile in graph.tiles:
            if getattr(tile, "tracer", None) is self:
                tile.tracer = None

    def begin_run(self, graph) -> None:
        """Arm on ``graph`` and reset per-run state (fresh trace per run)."""
        self.arm(graph)
        self.runs += 1
        self.now = 0
        self.total_cycles = None
        self.emitted = 0
        self.events.clear()
        self.metrics = MetricsRegistry()
        self._state.clear()
        self._buckets.clear()
        self.conflict_cycles.clear()

    def finalize(self, total_cycles: int) -> None:
        """Close every open attribution interval and bake the metrics."""
        self.total_cycles = total_cycles
        for name, cur in self._state.items():
            since, key = cur
            if total_cycles > since:
                bucket = self._buckets[name]
                bucket[key] = bucket.get(key, 0) + total_cycles - since
                cur[0] = total_cycles
        m = self.metrics
        m.counter("trace.events.emitted").inc(self.emitted)
        m.counter("trace.events.dropped").inc(self.dropped)
        for name, row in self.attribution().items():
            for key in ATTRIBUTION_KEYS:
                if row[key]:
                    m.counter(f"tile.{name}.cycles.{key}").inc(row[key])
            if total_cycles:
                m.gauge(f"tile.{name}.occupancy").set(
                    row[COMPUTE] / total_cycles)

    @property
    def dropped(self) -> int:
        """Events that fell off the back of the ring."""
        return self.emitted - len(self.events)

    def _emit(self, event: Tuple) -> None:
        self.emitted += 1
        self.events.append(event)

    # -- tile hook (called by the engine after every real tick) ------------

    def tile_state(self, tile, cycle: int, moved: bool) -> None:
        name = tile.name
        cur = self._state.get(name)
        key = COMPUTE if moved else tile.stall_reason().value
        if cur is None:
            self._state[name] = [cycle, key]
            self._buckets[name] = {}
        elif cur[1] != key:
            bucket = self._buckets[name]
            bucket[cur[1]] = bucket.get(cur[1], 0) + cycle - cur[0]
            cur[0] = cycle
            cur[1] = key
        else:
            return                      # no transition, nothing to record
        if key == COMPUTE:
            self._emit((cycle, TILE_FIRE, name))
        else:
            self._emit((cycle, TILE_STALL, name, key))

    # -- stream hooks (called by Stream; cycle comes from self.now) --------

    def stream_push(self, stream, depth: int, n_records: int) -> None:
        self._emit((self.now, STREAM_PUSH, stream.name, depth, n_records))
        self.metrics.histogram(f"stream.{stream.name}.depth").observe(depth)

    def stream_pop(self, stream, depth: int) -> None:
        self._emit((self.now, STREAM_POP, stream.name, depth))

    def stream_close(self, stream) -> None:
        self._emit((self.now, STREAM_CLOSE, stream.name))

    # -- memory hooks ------------------------------------------------------

    def bank_round(self, name: str, cycle: int, grants: int,
                   conflicts: int) -> None:
        """One scratchpad allocator round that granted or deferred bids."""
        self._emit((cycle, BANK_ROUND, name, grants, conflicts))
        if conflicts:
            self.conflict_cycles[name] = (
                self.conflict_cycles.get(name, 0) + 1)
            self.metrics.counter(f"tile.{name}.conflict_bids").inc(conflicts)

    def mem_issue(self, name: str, in_flight: int) -> None:
        """A DRAM request was granted; ``in_flight`` responses outstanding."""
        self._emit((self.now, MEM_ISSUE, name, in_flight))
        self.metrics.histogram(f"dram.{name}.mlp").observe(in_flight)

    def mem_retire(self, name: str, n: int, in_flight: int) -> None:
        """``n`` memory responses matured; ``in_flight`` remain."""
        self._emit((self.now, MEM_RETIRE, name, n, in_flight))

    # -- analysis ----------------------------------------------------------

    def attribution(self) -> Dict[str, Dict[str, int]]:
        """Per-tile cycle decomposition over :data:`ATTRIBUTION_KEYS`.

        Bank-conflict cycles are carved out of compute: a cycle in which
        the reorder pipeline granted requests but at least one bid lost
        its bank is progress *degraded by conflicts*, which is what the
        paper's reordering pipeline exists to minimise (§III-B).  Every
        row sums to the run's total simulated cycles.
        """
        out: Dict[str, Dict[str, int]] = {}
        conflict_key = StallReason.BANK_CONFLICT.value
        for name, buckets in self._buckets.items():
            row = {key: 0 for key in ATTRIBUTION_KEYS}
            for key, cycles in buckets.items():
                row[key] = row.get(key, 0) + cycles
            carve = min(self.conflict_cycles.get(name, 0), row[COMPUTE])
            row[COMPUTE] -= carve
            row[conflict_key] += carve
            row["total"] = sum(row[key] for key in ATTRIBUTION_KEYS)
            out[name] = row
        return out

    def occupancy(self, name: str) -> float:
        """Active-cycle fraction of one tile (compute / total cycles)."""
        if not self.total_cycles:
            return 0.0
        row = self.attribution().get(name)
        return row[COMPUTE] / self.total_cycles if row else 0.0

    # -- exports -----------------------------------------------------------

    def chrome_trace(self) -> dict:
        """Chrome/Perfetto ``trace.json`` object.

        Tile fire/stall transitions become duration (``"X"``) slices, one
        track per tile; stream and memory events become instants on their
        own tracks.  One simulated cycle maps to one microsecond of trace
        time.  Built from the bounded ring, so the export is bounded too.
        """
        end = self.total_cycles if self.total_cycles is not None else self.now
        trace_events: List[dict] = []
        tids: Dict[str, int] = {}

        def tid(site: str) -> int:
            t = tids.get(site)
            if t is None:
                t = tids[site] = len(tids)
                trace_events.append({
                    "ph": "M", "name": "thread_name", "pid": 0, "tid": t,
                    "args": {"name": site},
                })
            return t

        open_slice: Dict[str, Tuple[int, str]] = {}
        for event in self.events:
            cycle, kind, site = event[0], event[1], event[2]
            t = tid(site)
            if kind in (TILE_FIRE, TILE_STALL):
                started = open_slice.pop(site, None)
                if started is not None and cycle > started[0]:
                    trace_events.append({
                        "ph": "X", "name": started[1], "cat": "tile",
                        "ts": started[0], "dur": cycle - started[0],
                        "pid": 0, "tid": t,
                    })
                label = COMPUTE if kind == TILE_FIRE else event[3]
                open_slice[site] = (cycle, label)
            else:
                trace_events.append({
                    "ph": "i", "s": "t", "name": kind, "cat": "event",
                    "ts": cycle, "pid": 0, "tid": t,
                    "args": {"payload": list(event[3:])},
                })
        for site, (start, label) in open_slice.items():
            if end > start:
                trace_events.append({
                    "ph": "X", "name": label, "cat": "tile",
                    "ts": start, "dur": end - start,
                    "pid": 0, "tid": tids[site],
                })
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.observability",
                "cycles": end,
                "events_emitted": self.emitted,
                "events_dropped": self.dropped,
            },
        }

    def export_chrome(self, path) -> None:
        import json
        from pathlib import Path
        Path(path).write_text(json.dumps(self.chrome_trace()) + "\n")

    def timeline(self, max_transitions: int = 24) -> str:
        """Compact per-tile transition timeline from the event ring."""
        per_site: Dict[str, List[str]] = {}
        truncated: Dict[str, int] = {}
        for event in self.events:
            cycle, kind, site = event[0], event[1], event[2]
            if kind == TILE_FIRE:
                label = f"@{cycle} {COMPUTE}"
            elif kind == TILE_STALL:
                label = f"@{cycle} {event[3]}"
            else:
                continue
            marks = per_site.setdefault(site, [])
            if len(marks) >= max_transitions:
                truncated[site] = truncated.get(site, 0) + 1
            else:
                marks.append(label)
        if not per_site:
            return "(no tile transitions recorded)"
        width = max(len(site) for site in per_site)
        lines = []
        for site in sorted(per_site):
            tail = (f" ... +{truncated[site]} more"
                    if site in truncated else "")
            lines.append(f"{site:<{width}}  "
                         + " -> ".join(per_site[site]) + tail)
        if self.dropped:
            lines.append(f"(ring dropped {self.dropped} oldest events)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Tracer(events={len(self.events)}/{self.capacity}, "
                f"emitted={self.emitted}, runs={self.runs})")
