"""Event schema and stall taxonomy for the observability layer.

Trace events are plain tuples ``(cycle, kind, site, *payload)`` — cheap to
emit, cheap to compare, and trivially serialisable.  The golden-trace suite
relies on tuple equality, so the schema below is a compatibility contract:

====================  =====================================================
event                 tuple shape
====================  =====================================================
tile fire             ``(cycle, "fire", tile)``
tile stall            ``(cycle, "stall", tile, reason)``
stream push           ``(cycle, "push", stream, depth_after, n_records)``
stream pop            ``(cycle, "pop", stream, depth_after)``
stream close          ``(cycle, "close", stream)``
bank round            ``(cycle, "bank", tile, grants, conflicts)``
DRAM issue            ``(cycle, "mem_issue", tile, in_flight)``
DRAM complete         ``(cycle, "mem_retire", tile, n, in_flight)``
====================  =====================================================

Fire/stall events are emitted only on *transitions* — the first cycle a
tile starts moving data, or the first cycle it stops (with the reason it
stopped).  A tile that the event scheduler has put to sleep is provably
inert (its classification cannot change without a stream event that would
wake it), so transition sequences are bit-identical across the exhaustive
and event-driven schedulers even though the latter skips inert ticks.
"""

from __future__ import annotations

from enum import Enum

#: Event kind strings (field two of every event tuple).
TILE_FIRE = "fire"
TILE_STALL = "stall"
STREAM_PUSH = "push"
STREAM_POP = "pop"
STREAM_CLOSE = "close"
BANK_ROUND = "bank"
MEM_ISSUE = "mem_issue"
MEM_RETIRE = "mem_retire"


class StallReason(Enum):
    """Why a tile made no progress this cycle (the paper's Fig. 11-12
    narratives reduce to which of these dominates).

    * ``STARVED`` — no input available: upstream has nothing for us;
    * ``BACKPRESSURE`` — input (or internal output buffering) is waiting,
      but a full downstream stream blocks draining it;
    * ``BANK_CONFLICT`` — the scratchpad reorder pipeline is backed up:
      lane issue queues cannot drain fast enough past bank conflicts;
    * ``LATENCY`` — in-flight responses in a pipeline/SRAM delay line,
      nothing else to do until they mature;
    * ``DRAM_WAIT`` — same, but the round trip is DRAM: the latency only
      thread-level parallelism can hide (§III-A).
    """

    STARVED = "starved"
    BACKPRESSURE = "backpressure"
    BANK_CONFLICT = "bank_conflict"
    LATENCY = "latency"
    DRAM_WAIT = "dram_wait"


#: Attribution bucket for cycles in which a tile moved data.
COMPUTE = "compute"

#: All per-tile attribution buckets, report column order.
ATTRIBUTION_KEYS = (
    COMPUTE,
    StallReason.BANK_CONFLICT.value,
    StallReason.STARVED.value,
    StallReason.BACKPRESSURE.value,
    StallReason.LATENCY.value,
    StallReason.DRAM_WAIT.value,
)
