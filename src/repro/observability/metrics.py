"""Counters, histograms, and the per-run metrics registry.

A :class:`MetricsRegistry` is a flat namespace of named instruments —
deliberately small: the simulator needs exact integer counters and
small-domain histograms (queue depths, DRAM MLP), not a full telemetry
stack.  Registries merge, so per-run metrics from a
:class:`~repro.observability.tracer.Tracer` fold into a query-level
:class:`~repro.db.context.ExecutionContext`.
"""

from __future__ import annotations

from typing import Dict, Optional


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-write-wins float (occupancy fractions, ratios)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Exact small-domain histogram: one bucket per observed value.

    Stream depths and memory-level parallelism are small integers, so
    exact buckets are cheaper and more faithful than percentile sketches.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        self.buckets[value] = self.buckets.get(value, 0) + 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[int]:
        """Exact q-quantile (0 < q <= 1) from the value buckets.

        Returns the smallest observed value whose cumulative count reaches
        ``ceil(q * count)`` — exact, not interpolated, which is the right
        reading for latency-style integer distributions (p50/p99 of the
        serving layer's virtual-cycle latencies).
        """
        if self.count == 0:
            return None
        if not 0.0 < q <= 1.0:
            raise ValueError(f"percentile q must be in (0, 1], got {q}")
        rank = -(-q * self.count // 1)   # ceil without importing math
        seen = 0
        for value in sorted(self.buckets):
            seen += self.buckets[value]
            if seen >= rank:
                return value
        return self.max

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for value, n in other.buckets.items():
            self.buckets[value] = self.buckets.get(value, 0) + n
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, n={self.count}, "
                f"mean={self.mean:.2f})")


class MetricsRegistry:
    """Get-or-create registry of counters, gauges, and histograms."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (counters add, histograms
        merge, gauges take the incoming value)."""
        for name, c in other.counters.items():
            self.counter(name).inc(c.value)
        for name, g in other.gauges.items():
            self.gauge(name).set(g.value)
        for name, h in other.histograms.items():
            self.histogram(name).merge(h)

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view for JSON export and assertions."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {"count": h.count, "mean": h.mean, "min": h.min,
                    "max": h.max,
                    "buckets": {str(k): v
                                for k, v in sorted(h.buckets.items())}}
                for n, h in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """One-line-per-instrument human dump."""
        lines = []
        for name, c in sorted(self.counters.items()):
            lines.append(f"{name} = {c.value}")
        for name, g in sorted(self.gauges.items()):
            lines.append(f"{name} = {g.value:.4f}")
        for name, h in sorted(self.histograms.items()):
            lines.append(f"{name}: n={h.count} mean={h.mean:.2f} "
                         f"min={h.min} max={h.max}")
        return "\n".join(lines)
