"""Cycle-level observability: tracing, metrics, and stall attribution.

Three pieces, all zero-cost when disabled (one ``is None`` test per hook,
the reliability-injector pattern):

* :class:`Tracer` — structured events (tile fire/stall with a
  :class:`StallReason`, stream push/pop/close with depth, bank
  grant/conflict rounds, DRAM issue/complete) into a bounded ring, with
  Chrome/Perfetto ``trace.json`` export and a per-tile timeline dump;
* :class:`MetricsRegistry` — counters / gauges / histograms (stall cycles
  by reason, occupancy, stream-depth distribution, DRAM MLP), mergeable
  into a query's :class:`~repro.db.context.ExecutionContext`;
* :func:`attribution_report` — decomposes each tile's simulated cycles
  into compute / bank-conflict / starved / backpressured / latency /
  DRAM-wait, summing exactly to the run's cycle count
  (``python -m repro trace --report``).
"""

from repro.observability.events import (
    ATTRIBUTION_KEYS,
    COMPUTE,
    StallReason,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.report import attribution_dict, attribution_report
from repro.observability.tracer import DEFAULT_CAPACITY, Tracer

__all__ = [
    "ATTRIBUTION_KEYS", "COMPUTE", "StallReason",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "attribution_dict", "attribution_report",
    "DEFAULT_CAPACITY", "Tracer",
]
