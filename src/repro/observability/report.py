"""Stall-attribution reporting: where did the cycles go?

The paper's evaluation argues *why* pipelines stay full — occupancy under
divergence (§III-A), bank-conflict absorption (§III-B), DRAM latency
tolerance (Fig. 11-12).  :func:`attribution_report` renders the same
narrative for one run: per tile, total simulated cycles decomposed into
compute / bank-conflict / starved / backpressured / latency / DRAM-wait,
each row summing exactly to the simulated cycle count.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.observability.events import ATTRIBUTION_KEYS, COMPUTE
from repro.observability.tracer import Tracer

#: Report column headers, aligned with ATTRIBUTION_KEYS.
_HEADERS = {
    COMPUTE: "compute",
    "bank_conflict": "bankconf",
    "starved": "starved",
    "backpressure": "backpr",
    "latency": "latency",
    "dram_wait": "dramwait",
}


def attribution_report(stats, tracer: Tracer,
                       scheduler: Optional[str] = None) -> str:
    """Render the per-tile cycle decomposition against ``stats``.

    ``stats`` is the run's :class:`~repro.dataflow.stats.SimStats`; it
    supplies the authoritative cycle count (each row is checked against
    it) and the lane-occupancy column.
    """
    rows = tracer.attribution()
    cycles = stats.cycles
    name_w = max([len(n) for n in rows] + [4])
    header = (f"{'tile':<{name_w}} {'total':>9} "
              + " ".join(f"{_HEADERS[k]:>9}" for k in ATTRIBUTION_KEYS)
              + f" {'occup':>6} {'lanes':>6}")
    title = f"stall attribution — {cycles} simulated cycles"
    if scheduler:
        title += f" ({scheduler} scheduler)"
    lines = [title, header]
    mismatched = []
    for name in sorted(rows):
        row = rows[name]
        if row["total"] != cycles:
            mismatched.append(name)
        tile_stats = stats.tiles.get(name)
        lanes = f"{tile_stats.lane_occupancy:.2f}" if tile_stats else "-"
        occupancy = row[COMPUTE] / cycles if cycles else 0.0
        lines.append(
            f"{name:<{name_w}} {row['total']:>9} "
            + " ".join(f"{row[k]:>9}" for k in ATTRIBUTION_KEYS)
            + f" {occupancy:>6.2f} {lanes:>6}")
    if mismatched:
        lines.append(f"WARNING: decomposition does not sum to {cycles} "
                     f"cycles for: {', '.join(mismatched)}")
    else:
        lines.append(f"(every row sums to the {cycles} simulated cycles)")
    mlp = {name.split(".")[1]: h
           for name, h in tracer.metrics.histograms.items()
           if name.startswith("dram.") and name.endswith(".mlp")}
    for site in sorted(mlp):
        h = mlp[site]
        lines.append(f"dram {site}: MLP mean={h.mean:.1f} "
                     f"peak={h.max} ({h.count} issues)")
    return "\n".join(lines)


def attribution_dict(tracer: Tracer) -> Dict[str, Dict[str, int]]:
    """The raw decomposition (convenience re-export for tests/tools)."""
    return tracer.attribution()
