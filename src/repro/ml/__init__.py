"""Shallow in-database ML models used by the benchmark queries (§V-B):
linear regression (SYN.PREDICT), logistic regression (LOG.REG.PREDICT),
and k-means inference (KMEANS_INFER)."""

from repro.ml.linreg import LinearRegression
from repro.ml.logreg import LogisticRegression
from repro.ml.kmeans import KMeans

__all__ = ["LinearRegression", "LogisticRegression", "KMeans"]
