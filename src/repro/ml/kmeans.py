"""K-means: ``KMEANS_INFER`` in the benchmark queries (Q8).

Inference assigns a feature vector to its nearest centroid — a dense
distance computation that maps to Gorgon's vector tiles.  Lloyd's
algorithm trains centroids for the examples.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class KMeans:
    """Nearest-centroid model with Lloyd's-algorithm training."""

    def __init__(self, centroids: Sequence[Sequence[float]]):
        self.centroids = np.asarray(centroids, dtype=float)
        if self.centroids.ndim != 2:
            raise ValueError("centroids must be a 2-D array")

    @classmethod
    def fit(cls, X: Sequence[Sequence[float]], k: int,
            iters: int = 50, seed: int = 0) -> "KMeans":
        Xa = np.asarray(X, dtype=float)
        rng = np.random.default_rng(seed)
        centroids = Xa[rng.choice(len(Xa), size=k, replace=False)].copy()
        for __ in range(iters):
            assign = cls(centroids).predict_batch(Xa)
            new = np.array([
                Xa[assign == c].mean(axis=0) if np.any(assign == c)
                else centroids[c]
                for c in range(k)
            ])
            if np.allclose(new, centroids):
                break
            centroids = new
        return cls(centroids)

    @property
    def k(self) -> int:
        return len(self.centroids)

    def predict(self, x: Sequence[float]) -> int:
        """Index of the nearest centroid."""
        d = np.linalg.norm(self.centroids - np.asarray(x, dtype=float),
                           axis=1)
        return int(np.argmin(d))

    def predict_batch(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        Xa = np.asarray(X, dtype=float)
        d = np.linalg.norm(Xa[:, None, :] - self.centroids[None, :, :],
                           axis=2)
        return np.argmin(d, axis=1)
