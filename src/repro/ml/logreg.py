"""Logistic regression: ``LOG.REG.PREDICT`` in the benchmark queries (Q7)."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


class LogisticRegression:
    """P(y=1|x) = sigmoid(w·x + b), trained by batch gradient descent."""

    def __init__(self, weights: Sequence[float], bias: float = 0.0):
        self.weights = np.asarray(weights, dtype=float)
        self.bias = float(bias)

    @classmethod
    def fit(cls, X: Sequence[Sequence[float]], y: Sequence[int],
            lr: float = 0.1, epochs: int = 200) -> "LogisticRegression":
        Xa = np.asarray(X, dtype=float)
        ya = np.asarray(y, dtype=float)
        w = np.zeros(Xa.shape[1])
        b = 0.0
        n = len(Xa)
        for __ in range(epochs):
            p = _sigmoid(Xa @ w + b)
            grad_w = Xa.T @ (p - ya) / n
            grad_b = float(np.mean(p - ya))
            w -= lr * grad_w
            b -= lr * grad_b
        return cls(w, b)

    def predict_proba(self, x: Sequence[float]) -> float:
        return float(_sigmoid(np.atleast_1d(
            np.dot(self.weights, np.asarray(x, dtype=float)) + self.bias))[0])

    def predict(self, x: Sequence[float]) -> int:
        return int(self.predict_proba(x) >= 0.5)

    def predict_batch(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        return _sigmoid(np.asarray(X, dtype=float) @ self.weights + self.bias)
