"""Linear regression: the shallow predictive model behind ``SYN.PREDICT``.

The benchmark queries feed windowed aggregate features into shallow models
(§V-B: "analytics ... often uses shallow ML models to identify latent
variables with low latency").  Gorgon executes these as dense vector
pipelines; here the model is a NumPy dot product with a least-squares
trainer for the examples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class LinearRegression:
    """y = w·x + b, trained by ordinary least squares."""

    def __init__(self, weights: Sequence[float], bias: float = 0.0):
        self.weights = np.asarray(weights, dtype=float)
        self.bias = float(bias)

    @classmethod
    def fit(cls, X: Sequence[Sequence[float]], y: Sequence[float]
            ) -> "LinearRegression":
        """Least-squares fit with an intercept column."""
        Xa = np.asarray(X, dtype=float)
        ya = np.asarray(y, dtype=float)
        A = np.hstack([Xa, np.ones((len(Xa), 1))])
        coef, *__ = np.linalg.lstsq(A, ya, rcond=None)
        return cls(coef[:-1], coef[-1])

    def predict(self, x: Sequence[float]) -> float:
        """Predict one feature vector."""
        return float(np.dot(self.weights, np.asarray(x, dtype=float))
                     + self.bias)

    def predict_batch(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict a feature matrix (vectorized tile pipeline analogue)."""
        return np.asarray(X, dtype=float) @ self.weights + self.bias

    @property
    def n_features(self) -> int:
        return len(self.weights)
