"""Aurochs: An Architecture for Dataflow Threads — ISCA 2021 reproduction.

A full-system Python reproduction of Vilim, Rucker & Olukotun's Aurochs: a
reconfigurable dataflow accelerator extension that runs irregular,
pointer-chasing database kernels at line rate by moving per-thread state
out of register files and into record streams.

Package map (see DESIGN.md for the experiment index):

* :mod:`repro.dataflow` — the dataflow-thread model: records, streams,
  filter/merge/map/fork tiles, lane compaction, cycle-level engine;
* :mod:`repro.memory` — banked scratchpads with the Capstan-derived sparse
  reordering pipeline, RMW atomics, DRAM model;
* :mod:`repro.structures` — §IV's hash tables, radix partitioning,
  immutable B-trees, LSM trees, Z-order R-trees;
* :mod:`repro.db` — relational tables, physical operators, planner;
* :mod:`repro.ml` — the shallow models the benchmark queries call;
* :mod:`repro.baselines` — CPU/GPU/Gorgon comparison models, incl. a SIMT
  divergence simulator;
* :mod:`repro.perf` — analytical cost model, area/energy accounting,
  cycle-sim calibration;
* :mod:`repro.workloads` — the Table 2 rideshare generator and queries
  Q1-Q9;
* :mod:`repro.reliability` — deterministic fault injection, typed fault
  detection, checkpoint/restore + retry recovery, graceful degradation;
* :mod:`repro.observability` — zero-cost-when-disabled cycle tracing,
  metrics registry, and per-tile stall attribution (``repro trace``).
"""

from repro import (
    baselines,
    dataflow,
    db,
    memory,
    ml,
    observability,
    perf,
    reliability,
    structures,
    workloads,
)
from repro.dataflow import Graph, Schema, run_graph
from repro.db import ExecutionContext, Table
from repro.observability import MetricsRegistry, Tracer
from repro.perf import CostModel
from repro.reliability import FaultInjector, run_with_recovery
from repro.workloads import QUERIES, RideshareConfig, generate, run_query

__version__ = "1.1.0"

__all__ = [
    "baselines", "dataflow", "db", "memory", "ml", "observability",
    "perf", "reliability", "structures", "workloads",
    "Graph", "Schema", "run_graph",
    "ExecutionContext", "Table",
    "MetricsRegistry", "Tracer",
    "CostModel",
    "FaultInjector", "run_with_recovery",
    "QUERIES", "RideshareConfig", "generate", "run_query",
    "__version__",
]
