"""Operator policies: the same queries on Aurochs vs Gorgon algorithms.

The paper's Gorgon baseline runs the *same* queries with asymptotically
weaker operators (§I): sort-merge joins, sort-based aggregation, and —
lacking spatial indices — nested-loop spatial joins and full scans.  An
:class:`OperatorPolicy` bundles the operator choices so each query's plan
is written once and executed under either algorithm set; the cost model
then prices both traces, which is how Gorgon columns are produced for
query-level comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.db.context import ExecutionContext
from repro.db.table import Table
from repro.db.operators import (
    containment_join,
    distance_join,
    hash_group_by,
    hash_join,
    nested_loop_join,
    scan_filter,
    sort_group_by,
    sort_merge_join,
    window_select,
)


@dataclass(frozen=True)
class OperatorPolicy:
    """The operator implementations a platform's plans use."""

    name: str
    join: Callable
    group_by: Callable
    distance_join: Callable
    containment_join: Callable
    window_select: Callable


def _gorgon_distance_join(left: Table, right: Table,
                          left_xy: Tuple[str, str],
                          right_xy: Tuple[str, str], radius: int,
                          ctx: Optional[ExecutionContext] = None,
                          prefix: str = "r_",
                          name: Optional[str] = None) -> Table:
    """No spatial index: all-pairs distance test (fig. 11b's NLJ)."""
    lxi, lyi = left.col_index(left_xy[0]), left.col_index(left_xy[1])
    rxi, ryi = right.col_index(right_xy[0]), right.col_index(right_xy[1])

    def pred(lrow, rrow):
        return math.hypot(lrow[lxi] - rrow[rxi],
                          lrow[lyi] - rrow[ryi]) <= radius

    return nested_loop_join(left, right, pred, ctx, prefix,
                            name or f"{left.name}_nlj_{right.name}")


def _gorgon_containment_join(regions: Table,
                             bounds: Tuple[str, str, str, str],
                             points: Table, point_xy: Tuple[str, str],
                             ctx: Optional[ExecutionContext] = None,
                             prefix: str = "r_",
                             name: Optional[str] = None) -> Table:
    """No spatial index: all region x point containment tests."""
    bi = [regions.col_index(f) for f in bounds]
    pxi = points.col_index(point_xy[0])
    pyi = points.col_index(point_xy[1])

    def pred(region, point):
        return (region[bi[0]] <= point[pxi] <= region[bi[2]]
                and region[bi[1]] <= point[pyi] <= region[bi[3]])

    return nested_loop_join(regions, points, pred, ctx, prefix,
                            name or f"{regions.name}_nlj_{points.name}")


def _gorgon_window_select(table: Table, x_field: str, y_field: str,
                          query_rect, index=None,
                          ctx: Optional[ExecutionContext] = None,
                          name: Optional[str] = None) -> Table:
    """No spatial index: scan and filter the whole table."""
    xi, yi = table.col_index(x_field), table.col_index(y_field)
    x0, y0, x1, y1 = query_rect
    return scan_filter(
        table, lambda r: x0 <= r[xi] <= x1 and y0 <= r[yi] <= y1,
        ctx, name or f"{table.name}_scan_window")


AUROCHS_POLICY = OperatorPolicy(
    name="aurochs",
    join=hash_join,
    group_by=hash_group_by,
    distance_join=distance_join,
    containment_join=containment_join,
    window_select=window_select,
)

GORGON_POLICY = OperatorPolicy(
    name="gorgon",
    join=sort_merge_join,
    group_by=sort_group_by,
    distance_join=_gorgon_distance_join,
    containment_join=_gorgon_containment_join,
    window_select=_gorgon_window_select,
)
