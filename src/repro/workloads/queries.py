"""The ridesharing benchmark queries Q1-Q9 (§V-B, fig. 13, Table 2).

Each query is a hand-planned operator tree over the synthetic rideshare
database — the paper likewise lowers "a manually-planned SQL operator
tree".  The SQL sketch in each docstring is fig. 13's query; where the
published listing is ambiguous (OCR artifacts in the source text), the
interpretation is documented inline and kept consistent across Aurochs and
baseline executions, so relative comparisons remain meaningful.

Every query takes the generated :class:`~repro.workloads.rideshare.RideshareData`
plus an optional :class:`~repro.db.ExecutionContext` for event tracing and
returns a result :class:`~repro.db.Table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.dataflow.expr import Field
from repro.db import ExecutionContext, Table
from repro.db.operators import (
    extend,
    interval_group_by,
    limit,
    order_by,
    scan_filter,
    window_aggregate,
)
from repro.workloads.policy import AUROCHS_POLICY, GORGON_POLICY, OperatorPolicy
from repro.ml import KMeans, LinearRegression, LogisticRegression
from repro.structures.rtree import euclidean, point_rect
from repro.workloads.rideshare import (
    DAY,
    KM,
    MINUTE,
    N_METRICS,
    NOW,
    RideshareData,
)


def default_models() -> Dict[str, object]:
    """Deterministic shallow models standing in for the paper's pre-trained
    ones (training is out of scope for the queries; inference is what the
    fabric executes)."""
    rng = np.random.default_rng(2021)
    return {
        "duration": LinearRegression(rng.uniform(0.1, 1.0, 2 * N_METRICS),
                                     bias=5.0),
        "surge": LinearRegression([0.8, -0.5, 0.05], bias=1.0),
        "churn": LogisticRegression(rng.uniform(-1.0, 1.0, N_METRICS + 1),
                                    bias=0.1),
        "segments": KMeans(rng.uniform(0.0, 1.0, (4, N_METRICS))),
    }


_MODELS = default_models()


def _loc0_rect(data: RideshareData):
    row = data["location"].rows[0]
    return (row[1], row[2], row[3], row[4])


def q1(data: RideshareData, ctx: Optional[ExecutionContext] = None,
       policy: OperatorPolicy = AUROCHS_POLICY) -> Table:
    """Rides available per driver near each request.

    SQL (fig. 13): rideReq JOIN driverStatus ON GEO.DIST(ds.pos,
    req.start, 1 km) JOIN driver ON driverId WHERE req.seats = d.seats
    AND s.time >= NOW - 5 days GROUP BY s.driverId -> COUNT(*).
    """
    ti = data["driverStatus"].col_index("time")
    # Scan predicates are Exprs: batch-compiled over the whole scan (and
    # fused in lowered windows); the ML model lambdas further down stay
    # legacy callables — the documented per-record escape hatch.
    ds = scan_filter(data["driverStatus"], Field(ti) >= NOW - 5 * DAY,
                     ctx, name="ds_recent")
    near = policy.distance_join(data["rideReq"], ds, ("start_x", "start_y"),
                         ("pos_x", "pos_y"), KM, ctx, prefix="ds_")
    with_driver = policy.join(near, data["driver"], "ds_driverId", "driverId",
                            ctx, prefix="d_")
    # req.seats (from rideReq) vs d.seats (driver) — rideReq's column is
    # named `seats`, driver's arrives prefixed `d_seats`.
    ri = with_driver.col_index("seats")
    di = with_driver.col_index("d_seats")
    fits = scan_filter(with_driver, Field(ri) <= Field(di), ctx,
                       name="seat_match")
    return policy.group_by(fits, ["ds_driverId"],
                         {"rideCount": ("count", None)}, ctx, name="q1")


def q2(data: RideshareData, ctx: Optional[ExecutionContext] = None,
       policy: OperatorPolicy = AUROCHS_POLICY) -> Table:
    """Ride demand near one location over time.

    SQL: location (locationId = 0) JOIN rideReq ON containment GROUP BY
    INTERVAL(time, '10 min') ORDER BY rideCount.
    """
    in_loc = policy.window_select(data["rideReq"], "start_x", "start_y",
                           _loc0_rect(data), ctx=ctx, name="req_loc0")
    counts = interval_group_by(in_loc, "time", 10 * MINUTE,
                               {"rideCount": ("count", None)}, ctx=ctx)
    return order_by(counts, "rideCount", reverse=True, ctx=ctx, name="q2")


def q3(data: RideshareData, ctx: Optional[ExecutionContext] = None,
       policy: OperatorPolicy = AUROCHS_POLICY) -> Table:
    """Instantaneous demand per location.

    SQL: location JOIN rideReq ON containment WHERE r.time > NOW - 1 min
    GROUP BY locationId ORDER BY rideCount.
    """
    ti = data["rideReq"].col_index("time")
    recent = scan_filter(data["rideReq"], Field(ti) > NOW - MINUTE,
                         ctx, name="req_recent")
    joined = policy.containment_join(data["location"], ("x0", "y0", "x1", "y1"),
                              recent, ("start_x", "start_y"), ctx,
                              prefix="r_")
    counts = policy.group_by(joined, ["locationId"],
                           {"rideCount": ("count", None)}, ctx)
    return order_by(counts, "rideCount", reverse=True, ctx=ctx, name="q3")


def q4(data: RideshareData, ctx: Optional[ExecutionContext] = None,
       policy: OperatorPolicy = AUROCHS_POLICY) -> Table:
    """Feature extraction: recent rides originating in location 0.

    SQL (fig. 13's listing is partially garbled; interpreted as): ride
    JOIN location ON containment of ride.start WHERE locationId = 0 AND
    starttime > NOW - 5 days, projecting the rider id and metric columns
    as an ML feature block.
    """
    ti = data["ride"].col_index("starttime")
    recent = scan_filter(data["ride"], Field(ti) > NOW - 5 * DAY,
                         ctx, name="ride_recent")
    in_loc = policy.window_select(recent, "start_x", "start_y", _loc0_rect(data),
                           ctx=ctx, name="ride_loc0")
    fields = ["rideId", "riderId"] + [f"c{i}" for i in range(N_METRICS)]
    return in_loc.project(fields, "q4")


def q5(data: RideshareData, ctx: Optional[ExecutionContext] = None,
       policy: OperatorPolicy = AUROCHS_POLICY) -> Table:
    """Windowed driver telemetry + trip-duration prediction.

    SQL: driverStatus JOIN driver ON driverId, AVG/MAX of status metrics
    OVER (PARTITION BY driverId ORDER BY time), SYN.PREDICT(model,
    features).
    """
    joined = policy.join(data["driverStatus"], data["driver"], "driverId",
                       "driverId", ctx, prefix="d_")
    aggs = {}
    for i in range(N_METRICS):
        aggs[f"avg_s{i}"] = ("avg", f"s{i}")
        aggs[f"max_s{i}"] = ("max", f"s{i}")
    windowed = window_aggregate(joined, "driverId", "time", aggs,
                                preceding=7, ctx=ctx)
    model: LinearRegression = _MODELS["duration"]
    idx = [windowed.col_index(f) for f in aggs]
    out = extend(windowed, "predicted",
                 lambda r: model.predict([r[i] for i in idx]), ctx,
                 name="q5")
    return out


def q6(data: RideshareData, ctx: Optional[ExecutionContext] = None,
       policy: OperatorPolicy = AUROCHS_POLICY) -> Table:
    """Surge pricing: demand/supply imbalance per location + prediction.

    SQL: (location JOIN rideReq -> demand count) JOIN (location JOIN
    driverStatus -> supply count) ON locationId JOIN location,
    SYN.PREDICT(model, [demand, supply, ...]).
    """
    bounds = ("x0", "y0", "x1", "y1")
    demand = policy.group_by(
        policy.containment_join(data["location"], bounds, data["rideReq"],
                         ("start_x", "start_y"), ctx, prefix="r_"),
        ["locationId"], {"demand": ("count", None)}, ctx)
    supply = policy.group_by(
        policy.containment_join(data["location"], bounds, data["driverStatus"],
                         ("pos_x", "pos_y"), ctx, prefix="d_"),
        ["locationId"], {"supply": ("count", None)}, ctx)
    both = policy.join(demand, supply, "locationId", "locationId", ctx,
                     prefix="s_")
    model: LinearRegression = _MODELS["surge"]
    di, si = both.col_index("demand"), both.col_index("s_supply")
    out = extend(both, "surge",
                 lambda r: model.predict(
                     [r[di] / 100.0, r[si] / 100.0,
                      (r[di] - r[si]) / 100.0]),
                 ctx, name="q6")
    return out


def q7(data: RideshareData, ctx: Optional[ExecutionContext] = None,
       policy: OperatorPolicy = AUROCHS_POLICY) -> Table:
    """Rider churn prediction over 30 days of ride history.

    SQL: ride JOIN rider JOIN driver WHERE starttime > NOW - 30 days
    GROUP BY riderId with AVG(driver rating) and AVG(metrics),
    LOG.REG.PREDICT(model, features).
    """
    ti = data["ride"].col_index("starttime")
    recent = scan_filter(data["ride"], Field(ti) > NOW - 30 * DAY,
                         ctx, name="ride_30d")
    with_rider = policy.join(recent, data["rider"], "riderId", "riderId",
                           ctx, prefix="ri_")
    with_driver = policy.join(with_rider, data["driver"], "driverId",
                            "driverId", ctx, prefix="d_")
    aggs = {"avg_rating": ("avg", "d_rating")}
    for i in range(N_METRICS):
        aggs[f"avg_c{i}"] = ("avg", f"c{i}")
    per_rider = policy.group_by(with_driver, ["riderId"], aggs, ctx)
    model: LogisticRegression = _MODELS["churn"]
    idx = [per_rider.col_index(f) for f in aggs]
    return extend(per_rider, "churn_p",
                  lambda r: model.predict_proba([r[i] for i in idx]),
                  ctx, name="q7")


def q8(data: RideshareData, ctx: Optional[ExecutionContext] = None,
       policy: OperatorPolicy = AUROCHS_POLICY) -> Table:
    """Rider segmentation for riders active in location 0.

    SQL: ride JOIN rider JOIN location ON containment of ride.start WHERE
    locationId = 0 GROUP BY riderId AVG(metrics), KMEANS_INFER(model,
    features).
    """
    in_loc = policy.window_select(data["ride"], "start_x", "start_y",
                           _loc0_rect(data), ctx=ctx, name="ride_loc0")
    with_rider = policy.join(in_loc, data["rider"], "riderId", "riderId",
                           ctx, prefix="ri_")
    aggs = {f"avg_c{i}": ("avg", f"c{i}") for i in range(N_METRICS)}
    per_rider = policy.group_by(with_rider, ["riderId"], aggs, ctx)
    model: KMeans = _MODELS["segments"]
    idx = [per_rider.col_index(f) for f in aggs]
    return extend(per_rider, "segment",
                  lambda r: model.predict([r[i] for i in idx]),
                  ctx, name="q8")


def q9(data: RideshareData, ctx: Optional[ExecutionContext] = None,
       policy: OperatorPolicy = AUROCHS_POLICY) -> Table:
    """Nearest available drivers for one request.

    SQL: driverStatus JOIN rideReq ON GEO.DIST(req.start, ds.pos, 1 km)
    WHERE req.riderId = 0 ORDER BY dist LIMIT 100.
    """
    req = data["rideReq"]
    ri = req.col_index("riderId")
    one = scan_filter(req, Field(ri).eq(0), ctx, name="one_req")
    if len(one) == 0:
        one = one.with_rows([req.rows[0]])
    near = policy.distance_join(one, data["driverStatus"], ("start_x", "start_y"),
                         ("pos_x", "pos_y"), KM, ctx, prefix="ds_")
    xi, yi = near.col_index("start_x"), near.col_index("start_y")
    pxi, pyi = near.col_index("ds_pos_x"), near.col_index("ds_pos_y")
    with_dist = extend(near, "dist",
                       lambda r: euclidean(point_rect(r[xi], r[yi]),
                                           point_rect(r[pxi], r[pyi])),
                       ctx)
    ranked = order_by(with_dist, "dist", ctx=ctx)
    return limit(ranked, 100, ctx, name="q9")


@dataclass
class QueryDef:
    """Registry entry: the query callable plus Table 2-style metadata."""

    fn: Callable[..., Table]
    description: str
    tables: tuple
    streams: tuple


QUERIES: Dict[str, QueryDef] = {
    "q1": QueryDef(q1, "rides available per driver near each request",
                   ("driver",), ("rideReq", "driverStatus")),
    "q2": QueryDef(q2, "demand near one location per 10-minute interval",
                   ("location",), ("rideReq",)),
    "q3": QueryDef(q3, "instantaneous demand per location",
                   ("location",), ("rideReq",)),
    "q4": QueryDef(q4, "feature extraction for recent rides in a region",
                   ("ride", "location"), ()),
    "q5": QueryDef(q5, "windowed driver telemetry + duration prediction",
                   ("driver",), ("driverStatus",)),
    "q6": QueryDef(q6, "surge pricing from demand/supply per location",
                   ("location",), ("rideReq", "driverStatus")),
    "q7": QueryDef(q7, "rider churn prediction over 30-day history",
                   ("ride", "rider", "driver"), ()),
    "q8": QueryDef(q8, "rider segmentation in a region (k-means)",
                   ("ride", "rider", "location"), ()),
    "q9": QueryDef(q9, "nearest 100 drivers for one request",
                   (), ("rideReq", "driverStatus")),
}


def run_query(name: str, data: RideshareData,
              ctx: Optional[ExecutionContext] = None,
              policy: OperatorPolicy = AUROCHS_POLICY) -> Table:
    """Execute a registered query by name under an operator policy.

    ``policy=GORGON_POLICY`` runs the same plan with Gorgon's weaker
    operators (sort-based joins/aggregation, no spatial indices).
    """
    return QUERIES[name].fn(data, ctx, policy)
