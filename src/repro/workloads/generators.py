"""Live stream generators for the rideshare feeds.

Table 2's ``rideReq`` and ``driverStatus`` are *streams*; the batch
generator materializes a window of them, but the continuous-analytics
path (``repro.workloads.streaming``) wants an unbounded, time-ordered
event feed.  These generators produce exactly the same row shapes as the
batch tables, deterministic under a seed, with events spaced by an
exponential inter-arrival time (Poisson arrivals — the standard model
for request streams).
"""

from __future__ import annotations

import random
from typing import Iterator, Tuple

from repro.workloads.rideshare import (
    GRID,
    N_METRICS,
    _city_hotspots,
    _hotspot_point,
)


def ride_request_stream(start_time: int, mean_interarrival: float = 2.0,
                        n_riders: int = 10_000,
                        seed: int = 7) -> Iterator[Tuple]:
    """Unbounded ``rideReq`` events: (reqId, riderId, x, y, seats, time)."""
    rng = random.Random(seed)
    hotspots = _city_hotspots(rng)
    t = float(start_time)
    req_id = 0
    while True:
        t += rng.expovariate(1.0 / mean_interarrival)
        x, y = _hotspot_point(rng, hotspots)
        yield (req_id, rng.randrange(n_riders), x, y,
               rng.choice((1, 1, 2, 2, 4)), int(t))
        req_id += 1


def driver_status_stream(start_time: int, mean_interarrival: float = 2.0,
                         n_drivers: int = 1_000,
                         seed: int = 8) -> Iterator[Tuple]:
    """Unbounded ``driverStatus`` events:
    (statusId, driverId, x, y, time, s0..s{N_METRICS-1})."""
    rng = random.Random(seed)
    hotspots = _city_hotspots(rng)
    t = float(start_time)
    status_id = 0
    while True:
        t += rng.expovariate(1.0 / mean_interarrival)
        x, y = _hotspot_point(rng, hotspots)
        metrics = tuple(round(rng.uniform(0, 1), 3)
                        for __ in range(N_METRICS))
        yield (status_id, rng.randrange(n_drivers), x, y, int(t)) + metrics
        status_id += 1


def take(stream: Iterator[Tuple], n: int) -> list:
    """Materialize the next ``n`` events of a stream."""
    return [next(stream) for __ in range(n)]
