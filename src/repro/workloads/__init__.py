"""Evaluation workloads: the synthetic rideshare database (Table 2) and the
Q1-Q9 benchmark query set (fig. 13)."""

from repro.workloads.rideshare import (
    DAY,
    GRID,
    KM,
    MINUTE,
    N_METRICS,
    NOW,
    RideshareConfig,
    RideshareData,
    generate,
)
from repro.workloads.queries import QUERIES, QueryDef, default_models, run_query

__all__ = [
    "DAY", "GRID", "KM", "MINUTE", "N_METRICS", "NOW",
    "RideshareConfig", "RideshareData", "generate",
    "QUERIES", "QueryDef", "default_models", "run_query",
]
