"""Skewed key distributions (§IV-A's load-balancing claim).

"Radix partitioning on the hash load-balances parallel hashing pipelines
regardless of skew because hash functions naturally generate uniform
distributions."  Real analytics keys are Zipfian (popular riders, hot
locations); this module generates such keys so tests and the skew bench
can verify the claim: partition sizes stay balanced under heavy skew when
partitioning on the *hash*, and collapse when partitioning on raw key
bits.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List

from repro.structures.hashing import hash32


def zipf_keys(n: int, key_space: int, s: float = 1.2,
              seed: int = 0) -> List[int]:
    """``n`` keys drawn Zipf(s) over ``[0, key_space)`` (rank-ordered).

    ``s`` around 1 is mild skew; 1.5+ is heavy (a few keys dominate).
    Uses inverse-CDF sampling over precomputed cumulative weights.
    """
    if key_space < 1 or n < 0:
        raise ValueError("key_space >= 1 and n >= 0 required")
    if s <= 0:
        raise ValueError("s must be positive")
    rng = random.Random(seed)
    weights = [1.0 / (rank ** s) for rank in range(1, key_space + 1)]
    cumulative = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)
    return [
        bisect.bisect_left(cumulative, rng.random() * total)
        for __ in range(n)
    ]


def strided_keys(n: int, stride: int, base: int = 0) -> List[int]:
    """Distinct keys at a fixed stride — e.g. ids that are all multiples
    of 16, the worst case for raw low-bit partitioning (every key lands
    in one partition) and a non-event for hash partitioning."""
    return [base + i * stride for i in range(n)]


def clustered_keys(n: int, centers: List[int], spread: int,
                   seed: int = 0) -> List[int]:
    """Distinct-ish keys gaussian-clustered around hotspots (timestamps
    around events, ids in allocation bursts)."""
    rng = random.Random(seed)
    return [max(0, int(rng.gauss(rng.choice(centers), spread)))
            for __ in range(n)]


def partition_sizes_on_raw_bits(keys: List[int],
                                n_partitions: int) -> List[int]:
    """Partition on low key bits directly — the strawman radix split."""
    sizes = [0] * n_partitions
    for k in keys:
        sizes[k & (n_partitions - 1)] += 1
    return sizes


def partition_sizes_on_hash(keys: List[int],
                            n_partitions: int) -> List[int]:
    """Partition on the hash's low bits — what Aurochs does (§IV-A)."""
    sizes = [0] * n_partitions
    for k in keys:
        sizes[hash32(k) & (n_partitions - 1)] += 1
    return sizes


def balance(sizes: List[int]) -> float:
    """max/mean partition size; 1.0 = perfect balance."""
    total = sum(sizes)
    if total == 0:
        return 1.0
    return max(sizes) / (total / len(sizes))
