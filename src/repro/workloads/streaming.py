"""Continuous streaming analytics (§I, §II-A, §IV-B).

The paper's motivating deployment is real-time stream analytics: streams
ingest continuously, indices rebuild incrementally, and standing queries
re-evaluate over sliding windows.  :class:`StreamingAnalytics` wires the
pieces this repository already has into that loop:

* events append to the stream table AND its LSM time index
  (:class:`~repro.db.operators.indexscan.TimeSeriesIndex`), batching index
  updates exactly as §IV-B prescribes;
* standing queries run against the *indexed window* (an index range scan
  for the window, then the query body) so per-evaluation cost tracks the
  window size, not the table size — the asymptotic point of fig. 11.

A long-running deployment must also survive bad input and flaky queries.
When constructed with a :class:`~repro.reliability.DegradePolicy` the
pipeline degrades gracefully instead of crashing: malformed rows are
skipped and logged, late (out-of-order) rows are re-stamped to the
watermark if within the policy's bounded staleness (else dropped and
logged), and a failing standing query serves its last good result, marked
stale, until it exceeds the policy's consecutive-failure budget.  The
:class:`~repro.reliability.HealthMonitor` account is available via
:meth:`health_report`.  With no policy (the default) behaviour is the
original fail-stop contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.db.context import ExecutionContext
from repro.db.operators.indexscan import TimeSeriesIndex, index_range_scan
from repro.db.table import Table
from repro.reliability.health import DegradePolicy, HealthMonitor


@dataclass
class StandingQuery:
    """A continuous query re-evaluated over a sliding time window."""

    name: str
    window: int                                 # time units of history
    body: Callable[[Table, ExecutionContext], Table]
    evaluations: int = 0
    last_result: Optional[Table] = None
    stale: bool = False                         # last_result is a stale serve


class StreamingAnalytics:
    """Ingest loop + standing queries over one time-ordered stream."""

    def __init__(self, table: Table, time_field: str,
                 index_batch: int = 1024,
                 policy: Optional[DegradePolicy] = None,
                 metrics=None):
        self.table = table
        self.time_field = time_field
        self._ti = table.col_index(time_field)
        self.index = TimeSeriesIndex(table, time_field,
                                     batch_size=index_batch)
        self.queries: Dict[str, StandingQuery] = {}
        self.now = max(table.column(time_field), default=0)
        self.events_ingested = 0
        self.policy = policy
        # ``metrics`` (a MetricsRegistry) additionally surfaces every
        # degradation incident as a health.<kind> counter.
        self.health = HealthMonitor(metrics=metrics)

    # -- registration -----------------------------------------------------

    def register(self, name: str, window: int,
                 body: Callable[[Table, ExecutionContext], Table]) -> None:
        """Install a standing query over the trailing ``window``."""
        self.queries[name] = StandingQuery(name, window, body)

    # -- ingest -------------------------------------------------------------

    def ingest(self, rows: List[Tuple]) -> None:
        """Append time-ordered events to the stream and its index.

        Fail-stop without a policy (out-of-order raises); with a policy the
        batch is never poisoned by individual rows — each row is validated,
        late rows are re-stamped within the staleness bound, and bad rows
        are skipped and logged.
        """
        if self.policy is None:
            for row in rows:
                t = row[self._ti]
                if t < self.now:
                    raise ValueError(
                        f"out-of-order event at t={t} (now={self.now})")
                self.index.append(row)
                self.now = t
                self.events_ingested += 1
            return
        for row in rows:
            self._ingest_degraded(row)

    def _ingest_degraded(self, row: Tuple) -> None:
        policy = self.policy
        try:
            t = row[self._ti]
            valid = len(row) == len(self.table.schema) and isinstance(
                t, (int, float)) and not isinstance(t, bool)
        except (IndexError, TypeError):
            valid = False
        if not valid:
            self.health.record_incident(
                "bad_row", self.table.name, self.now, detail=repr(row)[:64])
            return
        if t < self.now:
            lateness = self.now - t
            if lateness <= policy.max_staleness:
                # Bounded staleness: accept the late event re-stamped to
                # the watermark so index order is preserved.
                row = row[:self._ti] + (self.now,) + row[self._ti + 1:]
                t = self.now
                self.health.record_incident(
                    "late_requeued", self.table.name, self.now,
                    detail=f"late by {lateness}")
            else:
                self.health.record_incident(
                    "late_dropped", self.table.name, self.now,
                    detail=f"t={t} older than staleness bound "
                           f"{policy.max_staleness}")
                return
        self.index.append(row)
        self.now = t
        self.events_ingested += 1
        self.health.record_ok()

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, name: str,
                 ctx: Optional[ExecutionContext] = None) -> Table:
        """Run one standing query over its current window.

        With a degradation policy, a failing query body serves its last
        good result (marked stale) instead of raising — until it fails
        ``policy.max_consecutive_failures`` times in a row, at which point
        the error propagates: permanently-broken queries must surface.
        """
        q = self.queries[name]
        ctx = ctx if ctx is not None else ExecutionContext()
        window = index_range_scan(self.index, self.now - q.window,
                                  self.now, ctx,
                                  name=f"{self.table.name}_window")
        if self.policy is None:
            result = q.body(window, ctx)
        else:
            qh = self.health.query(name)
            qh.evaluations += 1
            try:
                result = q.body(window, ctx)
                qh.consecutive_failures = 0
            except Exception as err:      # noqa: BLE001 — degrade, then cap
                qh.failures += 1
                qh.consecutive_failures += 1
                qh.last_error = repr(err)
                self.health.record_incident(
                    "query_failure", name, self.now, detail=repr(err)[:64])
                if (qh.consecutive_failures
                        > self.policy.max_consecutive_failures
                        or not self.policy.serve_stale):
                    raise
                qh.stale_served += 1
                q.evaluations += 1
                q.stale = True
                # Serve the last good result; an empty window-shaped table
                # if the query has never succeeded.
                if q.last_result is None:
                    q.last_result = window.with_rows([])
                return q.last_result
        q.evaluations += 1
        q.stale = False
        q.last_result = result
        return result

    def evaluate_all(self) -> Dict[str, Table]:
        return {name: self.evaluate(name) for name in self.queries}

    # -- introspection -----------------------------------------------------------

    def health_report(self) -> Dict[str, object]:
        """Structured health account (see :class:`HealthMonitor`)."""
        return self.health.report()

    def index_tiers(self) -> List[int]:
        """The LSM's current tree sizes (§IV-B's exponential ladder)."""
        return self.index.lsm.tree_sizes()

    def window_rows(self, window: int) -> int:
        """How many rows the trailing ``window`` currently holds."""
        return len(self.index.row_ids(self.now - window, self.now))
