"""Continuous streaming analytics (§I, §II-A, §IV-B).

The paper's motivating deployment is real-time stream analytics: streams
ingest continuously, indices rebuild incrementally, and standing queries
re-evaluate over sliding windows.  :class:`StreamingAnalytics` wires the
pieces this repository already has into that loop:

* events append to the stream table AND its LSM time index
  (:class:`~repro.db.operators.indexscan.TimeSeriesIndex`), batching index
  updates exactly as §IV-B prescribes;
* standing queries run against the *indexed window* (an index range scan
  for the window, then the query body) so per-evaluation cost tracks the
  window size, not the table size — the asymptotic point of fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.db.context import ExecutionContext
from repro.db.operators.indexscan import TimeSeriesIndex, index_range_scan
from repro.db.table import Table


@dataclass
class StandingQuery:
    """A continuous query re-evaluated over a sliding time window."""

    name: str
    window: int                                 # time units of history
    body: Callable[[Table, ExecutionContext], Table]
    evaluations: int = 0
    last_result: Optional[Table] = None


class StreamingAnalytics:
    """Ingest loop + standing queries over one time-ordered stream."""

    def __init__(self, table: Table, time_field: str,
                 index_batch: int = 1024):
        self.table = table
        self.time_field = time_field
        self._ti = table.col_index(time_field)
        self.index = TimeSeriesIndex(table, time_field,
                                     batch_size=index_batch)
        self.queries: Dict[str, StandingQuery] = {}
        self.now = max(table.column(time_field), default=0)
        self.events_ingested = 0

    # -- registration -----------------------------------------------------

    def register(self, name: str, window: int,
                 body: Callable[[Table, ExecutionContext], Table]) -> None:
        """Install a standing query over the trailing ``window``."""
        self.queries[name] = StandingQuery(name, window, body)

    # -- ingest -------------------------------------------------------------

    def ingest(self, rows: List[Tuple]) -> None:
        """Append time-ordered events to the stream and its index."""
        for row in rows:
            t = row[self._ti]
            if t < self.now:
                raise ValueError(
                    f"out-of-order event at t={t} (now={self.now})")
            self.index.append(row)
            self.now = t
            self.events_ingested += 1

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, name: str,
                 ctx: Optional[ExecutionContext] = None) -> Table:
        """Run one standing query over its current window."""
        q = self.queries[name]
        ctx = ctx if ctx is not None else ExecutionContext()
        window = index_range_scan(self.index, self.now - q.window,
                                  self.now, ctx,
                                  name=f"{self.table.name}_window")
        result = q.body(window, ctx)
        q.evaluations += 1
        q.last_result = result
        return result

    def evaluate_all(self) -> Dict[str, Table]:
        return {name: self.evaluate(name) for name in self.queries}

    # -- introspection -----------------------------------------------------------

    def index_tiers(self) -> List[int]:
        """The LSM's current tree sizes (§IV-B's exponential ladder)."""
        return self.index.lsm.tree_sizes()

    def window_rows(self, window: int) -> int:
        """How many rows the trailing ``window`` currently holds."""
        return len(self.index.row_ids(self.now - window, self.now))
