"""Baseline platform inventory (Table 1).

The paper compares Aurochs' simulated performance against a multi-socket
CPU server running a time-series database with geospatial and ML
extensions, and a V100-class GPU running CUDA database/geospatial/ML
libraries over a single in-memory table format (§V-B).  This module
renders that inventory from the parameter dataclasses so the Table 1
bench target has a single source of truth.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.perf.params import AUROCHS, CPU, GPU


def table1_rows() -> List[Tuple[str, str]]:
    """(platform, description) rows in Table 1's layout."""
    return [
        (CPU.name,
         f"{CPU.cores} cores @ {CPU.clock_hz / 1e9:.1f} GHz, "
         f"{CPU.dram_bw_bytes / 1e9:.0f} GB/s DRAM, "
         f"{CPU.llc_bytes // (1024 * 1024)} MiB LLC, {CPU.power_w:.0f} W; "
         "software time-series DB + geospatial + ML extensions"),
        (GPU.name,
         f"{GPU.sms} SMs @ {GPU.clock_hz / 1e9:.2f} GHz, "
         f"{GPU.dram_bw_bytes / 1e9:.0f} GB/s HBM2, "
         f"{GPU.mem_bytes // 1024 ** 3} GiB capacity, {GPU.power_w:.0f} W; "
         "CUDA DB/geospatial/ML libraries, tables pre-loaded, "
         "kernel time only"),
        (AUROCHS.name,
         f"{AUROCHS.grid}x{AUROCHS.grid} tile grid @ "
         f"{AUROCHS.clock_hz / 1e9:.0f} GHz, {AUROCHS.lanes}-lane tiles, "
         f"{AUROCHS.spad_bytes // 1024} KiB scratchpads, "
         f"{AUROCHS.dram_bw_bytes / 1e12:.0f} TB/s HBM, "
         f"{AUROCHS.power_w:.0f} W design power"),
    ]


def report() -> str:
    lines = ["Table 1 — evaluation platforms:"]
    for platform, desc in table1_rows():
        lines.append(f"  {platform}")
        lines.append(f"      {desc}")
    return "\n".join(lines)
