"""CPU baseline model.

The paper's CPU baseline is a multi-socket server running a software
time-series database with geospatial and ML extensions (Table 1).  The
CPU runs the *same asymptotically-optimal algorithms* as Aurochs — that is
the paper's framing: "Aurochs ... matches a CPU asymptotically but
outperforms it by over 100x on constant factors."  We therefore price the
same operator traces a query produced, using per-operator-class software
throughput rates (rows/s/core aggregated over the socket pair).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.db.context import ExecutionContext, OpTrace
from repro.perf.params import CPU, CpuParams


class CpuModel:
    """Prices operator traces at software-database rates."""

    def __init__(self, params: CpuParams = CPU):
        self.params = params

    def _rate(self, op: str) -> float:
        """Aggregate rows/s for one operator class."""
        p = self.params
        streaming = ("filter", "project", "map", "limit")
        hashing = ("hash_join", "hash_group_by")
        sorting = ("sort", "sort_merge_join", "sort_group_by",
                   "window_aggregate")
        indexed = ("distance_join", "containment_join", "window_select",
                   "index_range_scan")
        if op in streaming:
            return p.cores * p.scan_rows_per_s
        if op in hashing:
            return p.cores * p.hash_join_rows_per_s
        if op in sorting:
            return p.cores * p.sort_rows_per_s
        if op in indexed:
            return p.cores * p.index_probe_per_s
        if op == "nested_loop_join":
            return p.cores * p.spatial_pair_per_s
        return p.cores * p.scan_rows_per_s

    def trace_seconds(self, trace: OpTrace) -> float:
        """Seconds for one operator."""
        work = max(1, trace.rows_in)
        if trace.op == "nested_loop_join":
            # All-pairs work recorded in the event counter.
            work = max(work, trace.events.records_processed)
        elif trace.op in ("sort", "sort_merge_join", "sort_group_by"):
            work = work * max(1.0, math.log2(max(2, work)) / 8.0)
        compute = work / self._rate(trace.op)
        # Memory-bound floor: a software DB still has to move the bytes.
        nbytes = (trace.events.dram_read_bytes
                  + trace.events.dram_write_bytes)
        bandwidth = nbytes / self.params.dram_bw_bytes
        return max(compute, bandwidth)

    def query_runtime(self, ctx: ExecutionContext) -> float:
        """Seconds for a traced query."""
        return sum(self.trace_seconds(t) for t in ctx.traces)

    def runtime(self, traces: Iterable[OpTrace]) -> float:
        return sum(self.trace_seconds(t) for t in traces)
