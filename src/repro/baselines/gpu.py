"""GPU baseline model.

Two pieces, matching how the paper uses its GPU:

* :class:`GpuModel` prices operator traces at CUDA-library rates
  (Table 1 / §V-B: tables pre-loaded to device memory, kernel time only,
  4.5 GB/s hash join at 100M-row scale, no stream processing, and no
  dynamic data structures — index scans degrade to full scans, spatial
  joins to brute-force pair kernels).
* :class:`SimtHashJoin` (in ``gpu_simt``) actually *simulates* warp-level
  SIMT execution to reproduce the §III-A profile: 62%/46% warp execution
  efficiency on hash build/probe.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.db.context import ExecutionContext, OpTrace
from repro.perf.params import GPU, GpuParams


class GpuModel:
    """Prices operator traces at CUDA-library throughput."""

    def __init__(self, params: GpuParams = GPU, row_bytes: int = 8):
        self.params = params
        self.row_bytes = row_bytes

    def trace_seconds(self, trace: OpTrace) -> float:
        p = self.params
        rows = max(1, trace.rows_in)
        nbytes = rows * self.row_bytes
        op = trace.op
        if op in ("hash_join", "hash_group_by"):
            # The paper's measured end-to-end join rate already folds in
            # the warp-divergence stalls of build/probe.
            return nbytes / p.join_bytes_per_s
        if op in ("sort", "sort_merge_join", "sort_group_by",
                  "window_aggregate"):
            passes = max(1.0, math.log2(max(2, rows)) / 8.0)
            return rows * passes / p.sort_rows_per_s
        if op in ("distance_join", "containment_join", "window_select"):
            # §V-B: materialized stream tables come with PRE-BUILT indices,
            # so the GPU probes a spatial index — but the divergent tree
            # walk runs at warp-efficiency-limited rate (§III-A).
            return rows / p.spatial_probe_per_s
        if op == "index_range_scan":
            # Pre-built sorted index: binary search (a fixed small kernel)
            # plus a dense gather of the qualifying rows.
            out_bytes = max(1, trace.rows_out) * self.row_bytes
            return 2e-6 + out_bytes / p.scan_bytes_per_s
        if op == "nested_loop_join":
            pairs = max(rows, trace.events.records_processed)
            return pairs / p.spatial_pair_per_s
        # Streaming ops run near memory bandwidth.
        return nbytes / p.scan_bytes_per_s

    def query_runtime(self, ctx: ExecutionContext) -> float:
        # Kernel-launch floor per operator (~5 us) plus kernel times.
        launch_overhead = 5e-6 * len(ctx.traces)
        return launch_overhead + sum(self.trace_seconds(t)
                                     for t in ctx.traces)

    def runtime(self, traces: Iterable[OpTrace]) -> float:
        return sum(self.trace_seconds(t) for t in traces)
