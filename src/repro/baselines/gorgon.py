"""Gorgon baseline: the same fabric, algorithmically weaker operators.

Gorgon (the substrate Aurochs extends) copes with irregularity by using
"simpler algorithms that are asymptotically sub-optimal but easier to
accelerate" (§I): sort-merge joins and sort-based aggregations instead of
hash-based ones, full table scans instead of index probes, and presorted
merge scans or all-to-all nested loops instead of spatial indices.

This module provides (a) kernel-level event generators priced by the same
fabric cost model (fig. 11's Gorgon curves) and (b) a query executor that
re-plans Q1-Q9 with sort-based operators, so the Gorgon-vs-Aurochs gap is
observable end-to-end as well.
"""

from __future__ import annotations

from typing import Optional

from repro.db import ExecutionContext, Table
from repro.db.operators import (
    nested_loop_join,
    scan_filter,
    sort_group_by,
    sort_merge_join,
)
from repro.perf.cost_model import CostModel
from repro.perf.kernels import (
    gorgon_nlj_spatial_events,
    gorgon_spatial_events,
    sort_merge_join_events,
    table_scan_events,
)
from repro.perf.params import GORGON


class GorgonModel:
    """Kernel-level Gorgon runtime estimates on the shared fabric model."""

    def __init__(self, parallel_streams: int = 4):
        self.cost = CostModel(GORGON, parallel_streams)

    def join_seconds(self, n_left: int, n_right: int) -> float:
        """Sort-merge join runtime (fig. 11a's Gorgon curve)."""
        return self.cost.runtime_seconds(
            sort_merge_join_events(n_left, n_right))

    def spatial_join_seconds(self, n_fixed: int, n_scaled: int,
                             nested_loop: bool = False) -> float:
        """Spatial join runtime (fig. 11b's Gorgon curve)."""
        if nested_loop:
            return self.cost.runtime_seconds(
                gorgon_nlj_spatial_events(n_fixed, n_scaled))
        return self.cost.runtime_seconds(
            gorgon_spatial_events(n_fixed, n_scaled))

    def range_query_seconds(self, n_rows: int) -> float:
        """Index-less range query: full scan (§I)."""
        return self.cost.runtime_seconds(table_scan_events(n_rows))


def gorgon_equijoin(left: Table, right: Table, left_key: str,
                    right_key: str, ctx: Optional[ExecutionContext] = None,
                    prefix: str = "r_") -> Table:
    """Gorgon's join: always sort-merge."""
    return sort_merge_join(left, right, left_key, right_key, ctx, prefix)


def gorgon_spatial_join(left: Table, right: Table, pred,
                        ctx: Optional[ExecutionContext] = None,
                        prefix: str = "r_") -> Table:
    """Gorgon's spatial join: all-to-all nested loop (no spatial index)."""
    return nested_loop_join(left, right, pred, ctx, prefix)


def gorgon_range_scan(table: Table, field: str, lo: int, hi: int,
                      ctx: Optional[ExecutionContext] = None) -> Table:
    """Gorgon's range query: scan and filter the whole table."""
    i = table.col_index(field)
    return scan_filter(table, lambda r: lo <= r[i] <= hi, ctx,
                       name=f"{table.name}_scan_range")
