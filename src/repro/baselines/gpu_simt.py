"""SIMT execution simulator: why GPUs underperform on pointer chasing.

§III-A profiles a CUDA hash join on a V100 and finds warp execution
efficiency of 62% (build) and 46% (probe) — "most lanes are idle and the
GPU is not memory-bound."  This module simulates the mechanism:

* threads are enumerated upfront and locked to a lane in a warp;
* within a warp, divergent control flow serializes — a warp steps until
  its *slowest* thread finishes its chain walk, with finished lanes idle;
* warps in a thread block reconverge at a barrier — early-finishing warps
  wait for the block's stragglers before taking new work.

Warp execution efficiency = active-lane steps / (lanes × issued steps),
the same metric ``nvprof`` reports.  The contrast with Aurochs — which
kills finished threads and refills lanes from upstream — is the paper's
core argument, quantified by ``benchmarks/bench_warp_efficiency.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.structures.hashing import bucket_of
from repro.perf.params import GPU


@dataclass
class SimtStats:
    """One kernel's lane-activity accounting."""

    active_lane_steps: int = 0
    issued_lane_steps: int = 0
    warp_steps: int = 0

    @property
    def warp_efficiency(self) -> float:
        if self.issued_lane_steps == 0:
            return 0.0
        return self.active_lane_steps / self.issued_lane_steps


class SimtHashJoin:
    """Warp-level simulation of a chained-hash-table build and probe."""

    def __init__(self, warp_size: int = GPU.warp_size,
                 warps_per_block: int = 8, block_barrier: bool = False,
                 resident_threads: int = 1024):
        """``block_barrier=False`` matches nvprof's warp-execution-efficiency
        metric, which counts active lanes per *issued* warp instruction —
        a warp parked at a barrier issues nothing, so barrier wait hurts
        latency but not this metric.  Set it True to see the (worse)
        whole-block lane occupancy Aurochs' refill avoids.

        ``resident_threads`` is the concurrent wavefront the build kernel's
        CAS contention is computed over (thousands of threads are kept in
        flight to hide memory latency, and all of them contend)."""
        self.warp_size = warp_size
        self.warps_per_block = warps_per_block
        self.block_barrier = block_barrier
        self.resident_threads = resident_threads

    # -- per-thread work generation ------------------------------------------

    def _chain_lengths_probe(self, keys: Sequence[int],
                             table_keys: Sequence[int],
                             n_buckets: int, find_all: bool = False,
                             seed: int = 3) -> List[int]:
        """Steps each probe thread runs.

        A miss walks its bucket's whole chain (min 1 step for the head
        load); with first-match semantics (the CUDA library kernel the
        paper profiles) a hit stops at its match — uniformly positioned in
        the chain because build order is random.
        """
        rng = random.Random(seed)
        chains = [0] * n_buckets
        present = set(table_keys)
        for k in table_keys:
            chains[bucket_of(k, n_buckets)] += 1
        steps = []
        for k in keys:
            chain = max(1, chains[bucket_of(k, n_buckets)])
            if not find_all and k in present and chain > 1:
                steps.append(rng.randint(1, chain))
            else:
                steps.append(chain)
        return steps

    def _chain_lengths_build(self, keys: Sequence[int], n_buckets: int,
                             seed: int = 7) -> List[int]:
        """Steps each build thread runs: one CAS plus retries.

        Concurrent inserts to the same bucket conflict: within a wavefront
        of `warp_size * warps_per_block` simultaneous threads, all but one
        CAS to a bucket fails and retries next round.
        """
        rng = random.Random(seed)
        wave = self.resident_threads
        steps = [0] * len(keys)
        for base in range(0, len(keys), wave):
            pending = list(range(base, min(base + wave, len(keys))))
            while pending:
                winners = {}
                for tid in pending:
                    steps[tid] += 1
                    b = bucket_of(keys[tid], n_buckets)
                    if b not in winners:
                        winners[b] = tid
                pending = [tid for tid in pending
                           if winners[bucket_of(keys[tid], n_buckets)] != tid]
                # Jitter retry order like hardware replay would.
                rng.shuffle(pending)
        return steps

    # -- lockstep execution ------------------------------------------------------

    def _execute(self, steps: List[int]) -> SimtStats:
        """Run threads in warps with lockstep divergence and block barriers."""
        stats = SimtStats()
        block_threads = self.warp_size * self.warps_per_block
        for bstart in range(0, len(steps), block_threads):
            block = steps[bstart:bstart + block_threads]
            warps = [block[w:w + self.warp_size]
                     for w in range(0, len(block), self.warp_size)]
            if self.block_barrier:
                # All warps stay resident until the block's slowest thread
                # finishes; issued slots cover the whole block duration.
                duration = max(max(w) for w in warps)
                for warp in warps:
                    stats.active_lane_steps += sum(warp)
                    stats.issued_lane_steps += self.warp_size * duration
                    stats.warp_steps += duration
            else:
                for warp in warps:
                    duration = max(warp)
                    stats.active_lane_steps += sum(warp)
                    stats.issued_lane_steps += self.warp_size * duration
                    stats.warp_steps += duration
        return stats

    # -- kernels -------------------------------------------------------------------

    def build(self, keys: Sequence[int], n_buckets: int) -> SimtStats:
        """Simulate the build kernel; returns lane-activity stats."""
        return self._execute(self._chain_lengths_build(keys, n_buckets))

    def probe(self, probe_keys: Sequence[int], table_keys: Sequence[int],
              n_buckets: int, find_all: bool = False) -> SimtStats:
        """Simulate the probe kernel; returns lane-activity stats."""
        return self._execute(
            self._chain_lengths_probe(probe_keys, table_keys, n_buckets,
                                      find_all))
