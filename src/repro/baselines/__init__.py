"""Baseline platforms: CPU cost model, GPU model + SIMT divergence
simulator, and the algorithmically-weaker Gorgon fabric (§V-B, Table 1)."""

from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GpuModel
from repro.baselines.gpu_simt import SimtHashJoin, SimtStats
from repro.baselines.gorgon import (
    GorgonModel,
    gorgon_equijoin,
    gorgon_range_scan,
    gorgon_spatial_join,
)
from repro.baselines.specs import report as table1_report
from repro.baselines.specs import table1_rows

__all__ = [
    "CpuModel", "GpuModel", "SimtHashJoin", "SimtStats",
    "GorgonModel", "gorgon_equijoin", "gorgon_range_scan",
    "gorgon_spatial_join",
    "table1_report", "table1_rows",
]
