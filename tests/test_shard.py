"""Sharded scatter/gather execution, partial-failure containment, and
the elastic replica fleet (`repro.serving.shard`).

The contract under test: a complete scatter/gather merges to a digest
bit-identical to the unsharded golden run; a shard lost mid-query is
retried on a fresh replica and only that partition moves; a permanently
lost shard either fails the request typed or — by explicit
``DegradePolicy`` consent — returns a typed ``PartialResult`` whose
coverage recomputes from the shard plan; and every trajectory, fleet
elasticity included, is bit-for-bit reproducible from its seed.
"""

from collections import Counter

import pytest

from repro.db import Table
from repro.errors import PlanError, ShardsLost
from repro.reliability import DegradePolicy
from repro.serving import (
    FleetPolicy,
    LoadTestConfig,
    Request,
    ServingPolicy,
    ServingRuntime,
    ShardPolicy,
    plan_shards,
    run_loadtest,
)
from repro.serving.chaos import check_invariants
from repro.serving.replica import ACTIVE, DEAD, QUARANTINED, RETIRED
from repro.serving.workload import JOIN_NAMES, ServingWorkload, ShardedJoinJob


@pytest.fixture(scope="module")
def workload():
    w = ServingWorkload()
    w.warm()
    return w


def _shard_policy(**kw):
    kw.setdefault("n_shards", 4)
    return ServingPolicy(shard=ShardPolicy(**kw))


def _join_request(rid=0, query="join_rd", arrival=0, deadline=None):
    return Request(id=rid, tenant="t", query=query, arrival=arrival,
                   deadline=deadline)


class _SingleKeyData:
    """Two tiny tables whose join key takes a single value, so every row
    radix-hashes into one bucket and the other K-1 shards are empty."""

    def __init__(self):
        self.tables = {
            "l": Table.from_columns("l", k=[7] * 6, v=list(range(6))),
            "r": Table.from_columns("r", k=[7] * 4, w=[10, 20, 30, 40]),
        }


def _single_key_job():
    data = _SingleKeyData()
    return ShardedJoinJob("tiny_join", lambda: data,
                          left="l", right="r", key="k")


class TestShardPlan:
    def test_non_power_of_two_fanout_is_a_plan_error(self):
        with pytest.raises(PlanError):
            plan_shards(_single_key_job(), 3)

    def test_plan_covers_every_partition_empties_included(self):
        plan = plan_shards(_single_key_job(), 4)
        assert plan.n_shards == 4 and len(plan.jobs) == 4
        assert sum(plan.rows) == plan.total_rows == 10
        # One key -> one radix bucket: three shards are genuinely empty,
        # yet each still exists as a valid shard job in the scatter set.
        assert sorted(plan.rows, reverse=True) == [10, 0, 0, 0]
        for shard_job, rows in zip(plan.jobs, plan.rows):
            assert shard_job.rows_in == rows

    def test_empty_shard_executes_to_an_empty_digest(self):
        plan = plan_shards(_single_key_job(), 4)
        for k, rows in enumerate(plan.rows):
            if rows == 0:
                __, digest = plan.jobs[k].execute()
                assert digest[1] == ()
                assert plan.ref_rows_out[k] == 0

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_merged_shard_digests_equal_the_unsharded_golden(
            self, workload, n_shards):
        job = workload.job("join_rd")
        plan = plan_shards(job, n_shards)
        merged = job.merge_digests(
            [shard_job.execute()[1] for shard_job in plan.jobs])
        assert merged == workload.golden("join_rd").digest

    def test_plan_prices_scatter_and_references(self, workload):
        plan = plan_shards(workload.job("join_rr"), 4)
        assert plan.scatter_cycles >= 1
        assert all(c >= 1 for c in plan.ref_cycles)
        # Scatter/gather coordination is per-shard metadata, not row work.
        assert plan.dispatch_cost() == 1 + 4 * plan.n_shards
        assert plan.merge_cost(2) < plan.merge_cost(4) == plan.merge_estimate

    def test_hedge_cutoff_is_seeded_and_reference_relative(self, workload):
        plan = plan_shards(workload.job("join_rd"), 4)
        policy = ShardPolicy(n_shards=4, hedge_factor=2.0)
        a = plan.hedge_cutoff(0, policy, seed=1, request_id=9)
        assert a == plan.hedge_cutoff(0, policy, seed=1, request_id=9)
        assert a >= 2 * plan.ref_cycles[0]
        assert plan.hedge_cutoff(
            0, ShardPolicy(n_shards=4, hedge_factor=None), 1, 9) is None


class TestShardPolicy:
    def test_fanout_must_be_a_power_of_two(self):
        with pytest.raises(ValueError):
            ShardPolicy(n_shards=6)


class TestShardedServing:
    def test_sharded_join_is_golden_digest_equal(self, workload):
        runtime = ServingRuntime(workload, n_replicas=4, seed=11,
                                 policy=_shard_policy())
        runtime.submit(_join_request())
        [outcome] = runtime.run()
        # 'ok' means the runtime's per-serve tripwire already compared
        # the merged digest against the golden and found it identical.
        assert outcome.ok and outcome.shards == 4
        assert outcome.replica == "shards[4]"
        assert runtime.check() == []

    def test_warmed_four_shard_join_beats_the_unsharded_golden(
            self, workload):
        runtime = ServingRuntime(workload, n_replicas=4, seed=11,
                                 policy=_shard_policy())
        runtime.coordinator.warm(workload.job("join_rd"), 4)
        runtime.submit(_join_request())
        [outcome] = runtime.run()
        assert outcome.ok
        assert outcome.cycles < workload.golden("join_rd").cycles

    def test_mid_shard_kill_retries_only_the_lost_partition(self, workload):
        runtime = ServingRuntime(workload, n_replicas=4, seed=3,
                                 policy=_shard_policy(),
                                 kill_schedule={0: 300})
        runtime.submit(_join_request())
        [outcome] = runtime.run()
        # The dying replica's shard re-dispatches; the query still merges
        # complete and golden-equal.
        assert outcome.ok and outcome.shards == 4
        assert runtime.report()["shards"]["retries"] >= 1
        assert runtime.check() == []

    def test_full_fleet_loss_with_degrade_consent_serves_partial(
            self, workload):
        degrade = DegradePolicy(serve_partial=True, min_coverage=0.2)
        runtime = ServingRuntime(
            workload, n_replicas=4, seed=7,
            policy=_shard_policy(degrade=degrade),
            kill_schedule={0: 300, 1: 300, 2: 1200, 3: 1200})
        runtime.submit(_join_request())
        [outcome] = runtime.run()
        assert outcome.status == "partial"
        partial = outcome.partial
        plan = runtime.coordinator.plan_for(workload.job("join_rd"), 4)
        # Coverage is the accurate input-row fraction, recomputable from
        # the shard plan — never a guess.
        assert partial.rows_expected == plan.total_rows
        assert partial.rows_present == sum(
            plan.rows[k] for k in partial.complete_shards)
        assert partial.coverage == pytest.approx(
            partial.rows_present / partial.rows_expected)
        assert 0.0 < partial.coverage < 1.0
        assert (set(partial.complete_shards) | set(partial.lost_shards)
                == set(range(4)))
        # The partial digest is a strict sub-multiset of the golden rows:
        # degraded, but never fabricated.
        golden = workload.golden("join_rd")
        extra = Counter(partial.digest[1]) - Counter(golden.digest[1])
        assert not extra
        assert len(partial.digest[1]) < len(golden.digest[1])
        assert isinstance(outcome.error, ShardsLost)
        assert outcome.error.lost == partial.lost_shards
        assert runtime.check() == []

    def test_full_fleet_loss_without_consent_fails_typed(self, workload):
        runtime = ServingRuntime(
            workload, n_replicas=4, seed=7, policy=_shard_policy(),
            kill_schedule={0: 300, 1: 300, 2: 1200, 3: 1200})
        runtime.submit(_join_request())
        [outcome] = runtime.run()
        # Same chaos, no DegradePolicy consent: no silent third path —
        # the request fails whole, typed with exactly what was lost.
        assert outcome.status == "failed"
        assert outcome.partial is None
        assert isinstance(outcome.error, ShardsLost)
        assert outcome.error.lost and outcome.error.n_shards == 4
        assert 0.0 < outcome.error.coverage < 1.0
        assert runtime.check() == []

    def test_straggler_cutoff_launches_hedge_legs(self, workload):
        # hedge_factor < 1 puts the cutoff below the reference service
        # time, so every primary leg hedges — and the first-response-wins
        # resolution still merges golden-equal.
        runtime = ServingRuntime(workload, n_replicas=4, seed=5,
                                 policy=_shard_policy(n_shards=2,
                                                      hedge_factor=0.5))
        runtime.submit(_join_request())
        [outcome] = runtime.run()
        assert outcome.ok
        assert runtime.report()["shards"]["hedges_launched"] >= 1
        assert runtime.check() == []

    def test_hedging_disabled_launches_none(self, workload):
        runtime = ServingRuntime(workload, n_replicas=4, seed=5,
                                 policy=_shard_policy(hedge_factor=None))
        runtime.submit(_join_request())
        [outcome] = runtime.run()
        assert outcome.ok
        assert runtime.report()["shards"]["hedges_launched"] == 0


class TestFleetManager:
    def test_kill_marking_is_unconditional(self, workload):
        runtime = ServingRuntime(workload, n_replicas=2,
                                 kill_schedule={1: 50})
        assert runtime.fleet.policy is None
        runtime.fleet.autoscale(60)
        assert runtime.replicas[1].state == DEAD
        assert (60, "killed", "fab1") in runtime.fleet.events

    def test_repeated_breaker_opens_quarantine_the_replica(self, workload):
        runtime = ServingRuntime(
            workload, n_replicas=3,
            policy=ServingPolicy(fleet=FleetPolicy(quarantine_opens=2)))
        sick = runtime.replicas[1]
        sick.breaker.transitions.extend([(10, "open"), (40, "open")])
        runtime.fleet.autoscale(100)
        assert sick.state == QUARANTINED
        assert runtime.replicas[0].state == ACTIVE
        assert (100, "quarantined", "fab1") in runtime.fleet.events

    def test_growth_revives_retired_replicas_first(self, workload):
        runtime = ServingRuntime(
            workload, n_replicas=3,
            policy=ServingPolicy(fleet=FleetPolicy(min_replicas=1,
                                                   max_replicas=4)))
        runtime.replicas[2].state = RETIRED
        assert runtime.fleet._grow(500)
        assert runtime.replicas[2].state == ACTIVE
        assert runtime.fleet.revivals == 1
        assert len(runtime.replicas) == 3      # no fresh spawn needed

    def test_queue_pressure_grows_then_idle_shrinks(self, workload):
        policy = ServingPolicy(
            fleet=FleetPolicy(min_replicas=2, max_replicas=6,
                              grow_at_depth=4, shrink_below_depth=0,
                              scale_cooldown=1))
        runtime = ServingRuntime(workload, n_replicas=2, seed=1,
                                 policy=policy)
        for i in range(20):
            runtime.submit(Request(id=i, tenant="t", query="q1", arrival=0))
        runtime.run()
        fleet = runtime.report()["fleet"]
        assert fleet["grown"] >= 1
        assert fleet["shrunk"] >= 1
        assert fleet["active"] >= 2            # never below the floor
        assert all(o.ok for o in runtime.outcomes)

    def test_fleet_trajectory_is_seed_reproducible(self, workload):
        def trajectory():
            policy = ServingPolicy(
                fleet=FleetPolicy(min_replicas=2, max_replicas=6,
                                  grow_at_depth=4, scale_cooldown=100))
            runtime = ServingRuntime(workload, n_replicas=2, seed=9,
                                     policy=policy)
            for i in range(16):
                runtime.submit(Request(id=i, tenant="t", query="q2",
                                       arrival=i * 40))
            runtime.run()
            return runtime.fleet.events

        assert trajectory() == trajectory()


class TestShardedChaos:
    CONFIG = dict(requests=120, seed=11, shards=4, kills=2,
                  faults=True, elastic=True)

    def test_chaos_with_kills_holds_every_invariant(self, workload):
        runtime = run_loadtest(LoadTestConfig(**self.CONFIG), workload)
        assert check_invariants(runtime) == []
        sharded = [o for o in runtime.outcomes if o.shards]
        assert sharded, "the sharded mix must offer shardable joins"
        assert not any(o.status == "wrong_result" for o in runtime.outcomes)

    def test_chaos_run_is_bit_reproducible(self, workload):
        def signatures():
            runtime = run_loadtest(LoadTestConfig(**self.CONFIG), workload)
            return [o.signature() for o in runtime.outcomes]

        assert signatures() == signatures()
