"""Performance models: cost model pricing, analytical kernels vs functional
implementations, area accounting, energy, calibration, planner."""

import pytest

from repro.db import ExecutionContext, Table
from repro.db.operators import hash_join
from repro.db.planner import OPERATOR_TILES, Placer, PlanNode
from repro.errors import PlanError
from repro.perf import (
    AUROCHS,
    CostModel,
    area_breakdown,
    calibrate_hash_build,
    calibrate_hash_probe,
    chip_overhead_pct,
    energy_joules,
    kernels,
    platform_power,
    scratchpad_overhead_pct,
)
from repro.structures import ChainedHashTable, RadixPartitioner
from repro.structures.common import StructureEvents


class TestCostModel:
    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            CostModel(parallel_streams=0)

    def test_more_events_cost_more(self):
        m = CostModel()
        small = kernels.hash_join_events(1000, 1000)
        large = kernels.hash_join_events(100_000, 100_000)
        assert (m.event_cycles(large).cycles
                > m.event_cycles(small).cycles)

    def test_parallelism_reduces_compute_cycles(self):
        ev = StructureEvents(records_processed=10 ** 6)
        c1 = CostModel(parallel_streams=1).event_cycles(ev)
        c8 = CostModel(parallel_streams=8).event_cycles(ev)
        assert c8.compute_cycles == pytest.approx(c1.compute_cycles / 8)

    def test_dram_not_reduced_by_parallelism(self):
        ev = StructureEvents(dram_read_bytes=10 ** 9)
        c1 = CostModel(parallel_streams=1).event_cycles(ev)
        c8 = CostModel(parallel_streams=8).event_cycles(ev)
        assert c8.dram_cycles == c1.dram_cycles

    def test_sparse_traffic_pays_burst(self):
        dense = StructureEvents(dram_read_bytes=64_000)
        sparse = StructureEvents(dram_read_bytes=8_000,
                                 dram_sparse_accesses=1000)
        m = CostModel()
        assert (m.event_cycles(sparse).dram_cycles
                == m.event_cycles(dense).dram_cycles)

    def test_bound_identifies_limiter(self):
        m = CostModel(parallel_streams=1)
        ev = StructureEvents(dram_read_bytes=10 ** 9)
        assert m.event_cycles(ev).bound == "dram"
        ev2 = StructureEvents(records_processed=10 ** 9)
        assert m.event_cycles(ev2).bound == "compute"

    def test_trace_pricing_includes_stage_overhead(self):
        ctx = ExecutionContext()
        ctx.trace("filter", 0, 0)
        m = CostModel(stage_overhead_cycles=1234)
        assert m.trace_cycles(ctx.traces) >= 1234

    def test_query_runtime_positive(self):
        ctx = ExecutionContext()
        left = Table.from_columns("l", k=list(range(100)))
        right = Table.from_columns("r", k=list(range(100)))
        hash_join(left, right, "k", "k", ctx)
        assert CostModel().query_runtime(ctx) > 0


class TestAnalyticalKernels:
    """The analytical composers must track the functional implementations'
    event counts — this is what licenses the fig. 11 projections."""

    def test_hash_build_rmw_matches_functional(self):
        n = 2000
        ht = ChainedHashTable(1 << 11)
        ht.build([(i, i) for i in range(n)])
        analytic = kernels.hash_build_events(n)
        assert analytic.rmw_ops == ht.events.rmw_ops

    def test_partition_rmw_and_bytes_match_functional(self):
        n = 3000
        rp = RadixPartitioner(16)
        rp.partition((k, (k,)) for k in range(n))
        analytic = kernels.partition_events(n, row_bytes=4)
        assert analytic.rmw_ops == rp.events.rmw_ops
        assert analytic.dram_sparse_accesses == rp.events.dram_sparse_accesses
        # Byte counts agree within the block-header overhead.
        assert analytic.dram_write_bytes == pytest.approx(
            rp.events.dram_write_bytes, rel=0.1)

    def test_probe_spad_reads_close_to_functional(self):
        n = 4000
        ht = ChainedHashTable(n)
        ht.build([(i, i) for i in range(n)])
        before = ht.events.spad_reads
        for q in range(n):
            ht.probe(q)
        functional = ht.events.spad_reads - before
        analytic = kernels.hash_probe_events(n).spad_reads
        assert analytic == pytest.approx(functional, rel=0.25)

    def test_hash_join_linear_scaling(self):
        e1 = kernels.hash_join_events(10 ** 5, 10 ** 5)
        e10 = kernels.hash_join_events(10 ** 6, 10 ** 6)
        total1 = e1.dram_read_bytes + e1.dram_write_bytes
        total10 = e10.dram_read_bytes + e10.dram_write_bytes
        assert total10 == pytest.approx(10 * total1, rel=0.01)

    def test_sort_merge_superlinear_scaling(self):
        m = CostModel()
        t1 = m.event_cycles(kernels.sort_merge_join_events(10 ** 5, 10 ** 5))
        t10 = m.event_cycles(kernels.sort_merge_join_events(10 ** 6, 10 ** 6))
        assert t10.cycles > 10 * t1.cycles

    def test_btree_probe_logarithmic(self):
        small = kernels.btree_probe_events(1000, 10 ** 4)
        large = kernels.btree_probe_events(1000, 10 ** 8)
        assert small.dram_sparse_accesses < large.dram_sparse_accesses
        assert large.dram_sparse_accesses < 4 * small.dram_sparse_accesses

    def test_scan_linear(self):
        s1 = kernels.table_scan_events(10 ** 5)
        s10 = kernels.table_scan_events(10 ** 6)
        assert s10.dram_read_bytes == 10 * s1.dram_read_bytes


class TestFigureShapes:
    """The qualitative claims of fig. 11 must hold in the models."""

    def test_fig11a_sort_wins_small_hash_wins_large(self):
        m = CostModel(parallel_streams=8)
        def hash_t(n):
            return m.event_cycles(kernels.hash_join_events(n, n)).cycles
        def sort_t(n):
            return m.event_cycles(
                kernels.sort_merge_join_events(n, n)).cycles
        assert sort_t(10 ** 4) < hash_t(10 ** 4)     # dense wins small
        assert hash_t(10 ** 8) < sort_t(10 ** 8)     # linear wins large

    def test_fig11b_index_beats_presort_at_scale(self):
        m = CostModel(parallel_streams=8)
        n_fixed = 10 ** 5
        def aurochs(n):
            return m.event_cycles(
                kernels.rtree_join_events(n_fixed, n)).cycles
        def gorgon(n):
            return m.event_cycles(
                kernels.gorgon_spatial_events(n_fixed, n)).cycles
        assert aurochs(10 ** 8) < gorgon(10 ** 8)

    def test_fig11b_nested_loop_infeasible(self):
        m = CostModel(parallel_streams=8)
        nlj = m.event_cycles(
            kernels.gorgon_nlj_spatial_events(10 ** 5, 10 ** 7)).cycles
        idx = m.event_cycles(
            kernels.rtree_join_events(10 ** 5, 10 ** 7)).cycles
        assert nlj > 100 * idx

    def test_fig12_throughput_saturates(self):
        ev = kernels.hash_join_events(10 ** 7, 10 ** 7)
        nbytes = 2 * 10 ** 7 * 8
        tp = [CostModel(parallel_streams=p).throughput_bytes_per_s(ev, nbytes)
              for p in (1, 2, 4, 8, 16, 32)]
        assert tp[1] > tp[0]                      # scales at first
        assert tp[-1] <= tp[-2] * 1.2             # saturates eventually
        assert tp[-1] < AUROCHS.dram_bw_bytes     # below DRAM bandwidth


class TestAreaModel:
    def test_totals_match_paper(self):
        assert scratchpad_overhead_pct() == pytest.approx(15.0)
        assert chip_overhead_pct() == pytest.approx(5.0)

    def test_allocator_is_small_portion(self):
        # §V-A: "the allocation logic ... occupies only a small portion".
        parts = {name: pct for name, __, pct in area_breakdown()}
        assert parts["allocator"] < 2.0

    def test_issue_queues_dominate(self):
        parts = {name: pct for name, __, pct in area_breakdown()}
        assert max(parts, key=parts.get).startswith("issue queue")

    def test_breakdown_components_positive(self):
        assert all(pct > 0 for __, __, pct in area_breakdown())


class TestEnergyAndCalibration:
    def test_energy_is_runtime_times_power(self):
        assert energy_joules(2.0, 100.0) == 200.0

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            energy_joules(-1.0, 10.0)

    def test_platform_powers(self):
        assert platform_power("gpu") > platform_power("aurochs")

    def test_calibration_converges(self):
        pts = calibrate_hash_build([256, 1024])
        # Ratio should shrink toward a constant as size grows (fixed
        # pipeline-fill overheads amortize).
        assert pts[-1].ratio < pts[0].ratio * 1.5
        assert 0.5 < pts[-1].ratio < 4.0

    def test_probe_calibration_band(self):
        pts = calibrate_hash_probe([512])
        assert 0.5 < pts[0].ratio < 6.0


class TestPlanner:
    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            PlanNode("teleport")

    def test_parallel_knob_multiplies_tiles(self):
        one = PlanNode("hash_join", 1).total_tiles()
        four = PlanNode("hash_join", 4).total_tiles()
        assert four == (one[0] * 4, one[1] * 4)

    def test_tree_totals_sum_children(self):
        plan = PlanNode("hash_join", 1, [PlanNode("filter", 2)])
        c, s = plan.total_tiles()
        assert c == OPERATOR_TILES["hash_join"][0] + 2
        assert s == OPERATOR_TILES["hash_join"][1]

    def test_placement_within_budget(self):
        usage = Placer().place(PlanNode("hash_join", 4))
        assert 0 < usage["compute_util"] < 1

    def test_placement_over_budget_raises(self):
        with pytest.raises(PlanError):
            Placer().place(PlanNode("hash_join", 1000))

    def test_max_parallel_consistent_with_fits(self):
        placer = Placer()
        plan = PlanNode("hash_join", 1, [PlanNode("filter", 1)])
        k = placer.max_parallel(plan)
        assert placer.fits(plan.scale(k))
        assert not placer.fits(plan.scale(k + 1))

    def test_scale_copies(self):
        plan = PlanNode("filter", 1)
        scaled = plan.scale(3)
        assert plan.parallel == 1 and scaled.parallel == 3
