"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Aurochs" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "15.00" in out and "5.00" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig. 11a" in out
        assert "fig. 12" in out
        assert "warp" in out

    def test_queries_small_scale(self, capsys):
        assert main(["queries", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "q1" in out and "geomean" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestMicrobenchCli:
    @pytest.mark.parametrize("scheduler", ["event", "exhaustive"])
    def test_profile_names_every_tile_class(self, capsys, scheduler):
        assert main(["microbench", "--case", "gather_throttled",
                     "--scheduler", scheduler, "--profile"]) == 0
        out = capsys.readouterr().out
        assert f"({scheduler} scheduler" in out
        assert "simulated cycles" in out
        # The profile table names every tile class in the graph.
        for tile_class in ("SourceTile", "DramTile", "SinkTile"):
            assert tile_class in out

    def test_schedulers_agree_on_cycles(self, capsys):
        cycles = {}
        for mode in (["--scheduler", "event"],
                     ["--scheduler", "event", "--no-burst"],
                     ["--scheduler", "exhaustive"]):
            assert main(["microbench", "--case", "gather_throttled"]
                        + mode) == 0
            out = capsys.readouterr().out
            cycles[" ".join(mode)] = int(out.split(":")[1].split()[0])
        assert len(set(cycles.values())) == 1

    def test_profile_reports_burst_window_histogram(self, capsys):
        assert main(["microbench", "--case", "gather_throttled",
                     "--scheduler", "event", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "burst on" in out
        assert "burst windows" in out
        # The throttled gather reaches steady state: at least the source
        # runs burst windows, and the histogram names its tile class.
        assert "SourceTile" in out.split("burst windows")[1]

    def test_no_burst_disables_windows(self, capsys):
        assert main(["microbench", "--case", "gather_throttled",
                     "--scheduler", "event", "--no-burst",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "burst off" in out
        assert "burst windows: none" in out

    def test_unknown_case_fails(self, capsys):
        assert main(["microbench", "--case", "nope"]) == 2
        assert "unknown case" in capsys.readouterr().err


class TestTraceCli:
    def test_bare_trace_prints_attribution_report(self, capsys):
        assert main(["trace", "--case", "gather_throttled"]) == 0
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "simulated cycles" in out
        assert "WARNING" not in out
        for column in ("compute", "bankconf", "dramwait", "occup"):
            assert column in out
        assert "MLP" in out               # the DRAM tile reports parallelism

    @pytest.mark.parametrize("scheduler", ["event", "exhaustive"])
    def test_report_both_schedulers(self, capsys, scheduler):
        assert main(["trace", "--case", "gather_throttled",
                     "--scheduler", scheduler, "--report"]) == 0
        assert f"({scheduler} scheduler)" in capsys.readouterr().out

    def test_timeline(self, capsys):
        assert main(["trace", "--case", "gather_throttled",
                     "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "dram_t" in out and "@0" in out
        assert "stall attribution" not in out   # timeline alone was asked for

    def test_out_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json
        path = tmp_path / "trace.json"
        assert main(["trace", "--case", "gather_throttled",
                     "--out", str(path)]) == 0
        assert str(path) in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["cycles"] > 0

    def test_capacity_bounds_the_ring(self, capsys, tmp_path):
        import json
        path = tmp_path / "trace.json"
        assert main(["trace", "--case", "gather_throttled",
                     "--capacity", "16", "--out", str(path),
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "wrote 16 events" in out
        # A tiny ring still yields an exact attribution report.
        assert "WARNING" not in out
        assert json.loads(path.read_text())["otherData"]["events_dropped"] > 0

    def test_no_burst_flag_accepted(self, capsys):
        assert main(["trace", "--case", "gather_throttled",
                     "--no-burst", "--report"]) == 0
        assert "stall attribution" in capsys.readouterr().out

    def test_unknown_case_fails(self, capsys):
        assert main(["trace", "--case", "nope"]) == 2
        assert "unknown case" in capsys.readouterr().err


class TestLoadtestCli:
    def test_loadtest_ok_exit_zero(self, capsys):
        assert main(["loadtest", "--requests", "40", "--seed", "0",
                     "--interarrival", "1500"]) == 0
        out = capsys.readouterr().out
        assert "invariants: ok" in out
        assert "40 requests" in out

    def test_loadtest_with_faults_and_repro_check(self, capsys):
        assert main(["loadtest", "--requests", "60", "--seed", "1",
                     "--faults", "--verify-repro"]) == 0
        out = capsys.readouterr().out
        assert "faults on" in out
        assert "wrong" in out

    def test_loadtest_writes_json_report(self, capsys, tmp_path):
        import json
        out_path = tmp_path / "report.json"
        assert main(["loadtest", "--requests", "40", "--seed", "2",
                     "--out", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert report["invariants"]["ok"] is True
        assert report["config"]["requests"] == 40
        assert set(report["outcomes"]) == {
            "ok", "shed", "deadline", "failed", "partial", "wrong_result"}
