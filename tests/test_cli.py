"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Aurochs" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "15.00" in out and "5.00" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig. 11a" in out
        assert "fig. 12" in out
        assert "warp" in out

    def test_queries_small_scale(self, capsys):
        assert main(["queries", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "q1" in out and "geomean" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
