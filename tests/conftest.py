"""Shared fixtures for the Aurochs reproduction test suite."""

import random

import pytest

from repro.workloads import RideshareConfig, generate


@pytest.fixture
def rng():
    """A deterministic RNG per test."""
    return random.Random(0xA12C)


@pytest.fixture(scope="session")
def tiny_rideshare():
    """A small rideshare database shared across query tests."""
    cfg = RideshareConfig(n_drivers=100, n_riders=200, n_locations=16,
                          n_rides=1500, n_ride_reqs=250, n_driver_status=250)
    return generate(cfg)
