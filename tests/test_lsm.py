"""LSM tree: exponential tier invariant, merges, concurrency snapshot, and
query correctness."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures import LsmSnapshot, LsmTree, merge_trees


class TestIngest:
    def test_buffer_flushes_at_batch_size(self):
        lsm = LsmTree(batch_size=4)
        for i in range(4):
            lsm.insert(i, i)
        assert lsm.tree_sizes() == [4]

    def test_manual_flush(self):
        lsm = LsmTree(batch_size=100)
        lsm.insert(1, 1)
        lsm.flush()
        assert lsm.tree_sizes() == [1]

    def test_flush_empty_is_noop(self):
        lsm = LsmTree(batch_size=4)
        lsm.flush()
        assert lsm.tree_sizes() == []

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            LsmTree(batch_size=0)

    def test_len_includes_buffer(self):
        lsm = LsmTree(batch_size=10)
        for i in range(15):
            lsm.insert(i, i)
        assert len(lsm) == 15

    def test_exponential_ladder_invariant(self):
        lsm = LsmTree(batch_size=32)
        for i in range(1024):
            lsm.insert(i, i)
        sizes = lsm.tree_sizes()
        assert all(sizes[i] < sizes[i + 1] for i in range(len(sizes) - 1))

    def test_equal_sizes_merge(self):
        lsm = LsmTree(batch_size=8)
        lsm.insert_many((i, i) for i in range(16))
        # Two 8-batches must have merged into one 16-leaf tree.
        assert lsm.tree_sizes() == [16]
        assert lsm.merges >= 1

    def test_write_amplification_reported(self):
        lsm = LsmTree(batch_size=16)
        lsm.insert_many((i, i) for i in range(256))
        assert lsm.write_amplification() > 0


class TestQueries:
    def _loaded(self, n=800, key_space=3000, batch=64, seed=10):
        rng = random.Random(seed)
        pairs = [(rng.randrange(key_space), i) for i in range(n)]
        lsm = LsmTree(batch_size=batch, fanout=8)
        lsm.insert_many(pairs)
        return pairs, lsm

    def test_search_across_trees_and_buffer(self):
        pairs, lsm = self._loaded(n=100, batch=16)
        lsm.insert(99999, "buffered")
        assert lsm.search(99999) == ["buffered"]
        key = pairs[0][0]
        assert sorted(map(str, lsm.search(key))) == sorted(
            str(v) for k, v in pairs if k == key)

    def test_range_query_matches_brute_force(self):
        pairs, lsm = self._loaded()
        rng = random.Random(11)
        for __ in range(30):
            lo = rng.randrange(3200)
            hi = lo + rng.randrange(500)
            expect = sorted((k, v) for k, v in pairs if lo <= k <= hi)
            assert sorted(lsm.range_query(lo, hi)) == expect

    def test_range_query_sorted_by_key(self):
        __, lsm = self._loaded()
        out = lsm.range_query(0, 3000)
        assert [k for k, __ in out] == sorted(k for k, __ in out)

    def test_tree_pruning_by_key_range(self):
        # Time-ordered inserts give trees disjoint-ish ranges; a narrow
        # query must not read every tree (§IV-B's secondary time index).
        lsm = LsmTree(batch_size=64, fanout=8)
        lsm.insert_many((i, i) for i in range(1024))
        before = lsm.events.dram_read_bytes
        lsm.range_query(0, 10)
        first = lsm.events.dram_read_bytes - before
        before = lsm.events.dram_read_bytes
        lsm.range_query(0, 1023)
        full = lsm.events.dram_read_bytes - before
        assert first < full

    def test_snapshot_isolated_from_writes(self):
        pairs, lsm = self._loaded(n=128, batch=32)
        snap = lsm.snapshot()
        n_before = sum(len(t) for t in snap)
        lsm.insert_many((i, "new") for i in range(64))
        # The snapshot's trees are immutable: same contents after writes.
        assert sum(len(t) for t in snap) == n_before

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers()),
                    max_size=300),
           st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_property_no_records_lost(self, pairs, batch):
        lsm = LsmTree(batch_size=batch, fanout=4)
        lsm.insert_many(pairs)
        got = lsm.range_query(0, 200)
        assert sorted(map(repr, got)) == sorted(map(repr, pairs))


class TestSnapshots:
    """Versioned publication: reads go through explicit snapshot handles."""

    def test_version_bumps_on_every_publication(self):
        lsm = LsmTree(batch_size=4)
        assert lsm.version == 0
        for i in range(4):
            lsm.insert(i, i)
        v_flush = lsm.version
        assert v_flush >= 1
        for i in range(4, 8):
            lsm.insert(i, i)
        # Second flush publishes the tree AND the equal-size merge.
        assert lsm.version > v_flush
        assert lsm.snapshot().version == lsm.version

    def test_no_torn_reads_when_mutated_mid_iteration(self):
        # Regression (satellite 2): a flush/merge landing between two tree
        # visits of one range query must not make rows appear or vanish.
        lsm = LsmTree(batch_size=32)
        lsm.insert_many((i, i) for i in range(96))
        snap = lsm.snapshot()
        expect = snap.range_query(0, 10_000)
        seen = []
        for tree in snap:
            seen.extend(tree.range_query(0, 10_000))
            # Mutate the live LSM mid-iteration: buffer + flush + cascade.
            lsm.insert_many((1000 + len(seen) + j, "mid") for j in range(32))
        assert sorted(seen) == [kv for kv in expect]
        # And the handle still answers identically after the dust settles.
        assert snap.range_query(0, 10_000) == expect

    def test_published_snapshot_excludes_buffer(self):
        lsm = LsmTree(batch_size=100)
        lsm.insert(1, "flushed")
        lsm.flush()
        lsm.append(2, "buffered")
        pub = lsm.published_snapshot()
        assert pub.search(2) == []
        assert lsm.snapshot().search(2) == ["buffered"]
        assert lsm.search(2) == ["buffered"]

    def test_snapshot_search_covers_captured_buffer(self):
        lsm = LsmTree(batch_size=100)
        lsm.append(7, "a")
        snap = lsm.snapshot()
        lsm.append(7, "b")
        assert snap.search(7) == ["a"]

    def test_snapshot_len_and_iter_back_compat(self):
        lsm = LsmTree(batch_size=8)
        lsm.insert_many((i, i) for i in range(20))
        snap = lsm.snapshot()
        assert len(snap) == 20
        assert sum(len(t) for t in snap) + len(snap.buffer) == 20


class TestBackgroundMaintenance:
    """The functional flush/merge API the live-ingestion path drives."""

    def test_claim_build_publish_round_trip(self):
        lsm = LsmTree(batch_size=4)
        for i in range(3):
            lsm.append(i, i)
        batch = lsm.claim_buffer()
        assert lsm.buffered() == 0
        tree, delta = lsm.build_batch_tree(batch)
        assert lsm.version == 0          # nothing published yet
        assert lsm.range_query(0, 10) == []
        v = lsm.publish_tree(tree, delta)
        assert v == lsm.version == 1
        assert [k for k, __ in lsm.range_query(0, 10)] == [0, 1, 2]
        # The builder's isolated delta merged into the shared counters and
        # the tree rebound, so future reads charge the shared object.
        assert tree.events is lsm.events
        assert lsm.events.records_processed >= 3

    def test_publish_merge_cas_refuses_stale_inputs(self):
        lsm = LsmTree(batch_size=4)
        lsm.insert_many((i, i) for i in range(8))
        lsm2 = LsmTree(batch_size=4)
        lsm2.insert_many((i, i) for i in range(4))
        stranger = lsm2._trees[0]        # never adjacent in ``lsm``
        merged, delta = merge_trees(stranger, stranger, lsm.fanout)
        v_before = lsm.version
        assert not lsm.publish_merge(stranger, stranger, merged, delta)
        assert lsm.version == v_before   # refused: nothing published

    def test_merge_log_emits_per_level_events(self):
        # Satellite 3: the flush merge cascade must emit one MergeRecord
        # per published merge level, each with isolated StructureEvents,
        # so stall attribution sees compaction cost level by level.
        lsm = LsmTree(batch_size=16)
        lsm.insert_many((i, i) for i in range(256))
        assert lsm.merges == len(lsm.merge_log) >= 2
        levels = {rec.level for rec in lsm.merge_log}
        assert levels, "cascade published no levels"
        for rec in lsm.merge_log:
            assert rec.records > 0
            assert rec.events.dram_read_bytes > 0
            assert rec.events.dram_write_bytes > 0
            assert rec.version >= 1
        # Per-level deltas are disjoint slices of the shared counters.
        merged_bytes = sum(r.events.dram_write_bytes for r in lsm.merge_log)
        assert merged_bytes <= lsm.events.dram_write_bytes

    def test_merge_trees_is_functional(self):
        lsm = LsmTree(batch_size=4)
        lsm.insert_many((i, i) for i in range(4))
        lsm.append(100, "x")
        a_rows = [(100, "x"), (101, "y")]
        tree_a, __ = lsm.build_batch_tree(a_rows)
        b = lsm._trees[0]
        before = lsm.events.asdict()
        merged, delta = merge_trees(tree_a, b, lsm.fanout)
        assert lsm.events.asdict() == before     # no shared-counter bleed
        assert len(merged) == len(tree_a) + len(b)
        assert delta.dram_read_bytes > 0
