"""LSM tree: exponential tier invariant, merges, concurrency snapshot, and
query correctness."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures import LsmTree


class TestIngest:
    def test_buffer_flushes_at_batch_size(self):
        lsm = LsmTree(batch_size=4)
        for i in range(4):
            lsm.insert(i, i)
        assert lsm.tree_sizes() == [4]

    def test_manual_flush(self):
        lsm = LsmTree(batch_size=100)
        lsm.insert(1, 1)
        lsm.flush()
        assert lsm.tree_sizes() == [1]

    def test_flush_empty_is_noop(self):
        lsm = LsmTree(batch_size=4)
        lsm.flush()
        assert lsm.tree_sizes() == []

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            LsmTree(batch_size=0)

    def test_len_includes_buffer(self):
        lsm = LsmTree(batch_size=10)
        for i in range(15):
            lsm.insert(i, i)
        assert len(lsm) == 15

    def test_exponential_ladder_invariant(self):
        lsm = LsmTree(batch_size=32)
        for i in range(1024):
            lsm.insert(i, i)
        sizes = lsm.tree_sizes()
        assert all(sizes[i] < sizes[i + 1] for i in range(len(sizes) - 1))

    def test_equal_sizes_merge(self):
        lsm = LsmTree(batch_size=8)
        lsm.insert_many((i, i) for i in range(16))
        # Two 8-batches must have merged into one 16-leaf tree.
        assert lsm.tree_sizes() == [16]
        assert lsm.merges >= 1

    def test_write_amplification_reported(self):
        lsm = LsmTree(batch_size=16)
        lsm.insert_many((i, i) for i in range(256))
        assert lsm.write_amplification() > 0


class TestQueries:
    def _loaded(self, n=800, key_space=3000, batch=64, seed=10):
        rng = random.Random(seed)
        pairs = [(rng.randrange(key_space), i) for i in range(n)]
        lsm = LsmTree(batch_size=batch, fanout=8)
        lsm.insert_many(pairs)
        return pairs, lsm

    def test_search_across_trees_and_buffer(self):
        pairs, lsm = self._loaded(n=100, batch=16)
        lsm.insert(99999, "buffered")
        assert lsm.search(99999) == ["buffered"]
        key = pairs[0][0]
        assert sorted(map(str, lsm.search(key))) == sorted(
            str(v) for k, v in pairs if k == key)

    def test_range_query_matches_brute_force(self):
        pairs, lsm = self._loaded()
        rng = random.Random(11)
        for __ in range(30):
            lo = rng.randrange(3200)
            hi = lo + rng.randrange(500)
            expect = sorted((k, v) for k, v in pairs if lo <= k <= hi)
            assert sorted(lsm.range_query(lo, hi)) == expect

    def test_range_query_sorted_by_key(self):
        __, lsm = self._loaded()
        out = lsm.range_query(0, 3000)
        assert [k for k, __ in out] == sorted(k for k, __ in out)

    def test_tree_pruning_by_key_range(self):
        # Time-ordered inserts give trees disjoint-ish ranges; a narrow
        # query must not read every tree (§IV-B's secondary time index).
        lsm = LsmTree(batch_size=64, fanout=8)
        lsm.insert_many((i, i) for i in range(1024))
        before = lsm.events.dram_read_bytes
        lsm.range_query(0, 10)
        first = lsm.events.dram_read_bytes - before
        before = lsm.events.dram_read_bytes
        lsm.range_query(0, 1023)
        full = lsm.events.dram_read_bytes - before
        assert first < full

    def test_snapshot_isolated_from_writes(self):
        pairs, lsm = self._loaded(n=128, batch=32)
        snap = lsm.snapshot()
        n_before = sum(len(t) for t in snap)
        lsm.insert_many((i, "new") for i in range(64))
        # The snapshot's trees are immutable: same contents after writes.
        assert sum(len(t) for t in snap) == n_before

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers()),
                    max_size=300),
           st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_property_no_records_lost(self, pairs, batch):
        lsm = LsmTree(batch_size=batch, fanout=4)
        lsm.insert_many(pairs)
        got = lsm.range_query(0, 200)
        assert sorted(map(repr, got)) == sorted(map(repr, pairs))
