"""Physical operators: filters, joins, aggregations, windows, spatial,
index scans — all validated against brute-force references."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import ExecutionContext, Table
from repro.db.operators import (
    TimeSeriesIndex,
    containment_join,
    distance_join,
    extend,
    hash_group_by,
    hash_join,
    index_range_scan,
    interval_group_by,
    limit,
    nested_loop_join,
    order_by,
    project,
    scan_filter,
    sort_group_by,
    sort_merge_join,
    sort_passes,
    window_aggregate,
    window_select,
)
from repro.errors import PlanError


def _tables(seed=30, n_left=120, n_right=60, key_space=25):
    rng = random.Random(seed)
    left = Table.from_columns(
        "l", id=list(range(n_left)),
        k=[rng.randrange(key_space) for __ in range(n_left)])
    right = Table.from_columns(
        "r", k=[rng.randrange(key_space) for __ in range(n_right)],
        v=[i * 3 for i in range(n_right)])
    return left, right


class TestBasicOps:
    def test_scan_filter(self):
        t = Table.from_columns("t", a=list(range(20)))
        out = scan_filter(t, lambda r: r[0] >= 15)
        assert out.column("a") == list(range(15, 20))

    def test_project_traces(self):
        ctx = ExecutionContext()
        t = Table.from_columns("t", a=[1], b=[2])
        out = project(t, ["b"], ctx)
        assert out.rows == [(2,)]
        assert ctx.traces[0].op == "project"

    def test_extend(self):
        t = Table.from_columns("t", a=[2, 3])
        out = extend(t, "sq", lambda r: r[0] ** 2)
        assert out.column("sq") == [4, 9]

    def test_order_by_and_limit(self):
        t = Table.from_columns("t", a=[3, 1, 2])
        out = limit(order_by(t, "a"), 2)
        assert out.column("a") == [1, 2]

    def test_sort_passes_monotone(self):
        assert sort_passes(100) == 1
        assert sort_passes(10 ** 6) > 1
        assert sort_passes(10 ** 8) >= sort_passes(10 ** 6)


class TestJoins:
    def _brute(self, left, right):
        return sorted(l + r for l in left.rows for r in right.rows
                      if l[1] == r[0])

    def test_hash_join_matches_brute_force(self):
        left, right = _tables()
        out = hash_join(left, right, "k", "k")
        assert sorted(out.rows) == self._brute(left, right)

    def test_sort_merge_join_matches_hash_join(self):
        left, right = _tables(seed=31)
        hj = hash_join(left, right, "k", "k")
        smj = sort_merge_join(left, right, "k", "k")
        assert sorted(hj.rows) == sorted(smj.rows)

    def test_join_schema_prefixing(self):
        left, right = _tables()
        out = hash_join(left, right, "k", "k", prefix="r_")
        assert out.schema.fields == ("id", "k", "r_k", "r_v")

    def test_join_empty_sides(self):
        left, right = _tables()
        empty = right.with_rows([])
        assert len(hash_join(left, empty, "k", "k")) == 0
        assert len(hash_join(empty.with_rows([]), right, "k", "k")) == 0

    def test_multi_partition_join(self):
        left, right = _tables(n_left=500, n_right=500, key_space=50)
        out = hash_join(left, right, "k", "k", n_partitions=8)
        assert sorted(out.rows) == self._brute(left, right)

    def test_nested_loop_join(self):
        left, right = _tables(n_left=30, n_right=30)
        out = nested_loop_join(left, right,
                               lambda l, r: l[1] == r[0])
        assert sorted(out.rows) == self._brute(left, right)

    def test_hash_join_events_traced(self):
        ctx = ExecutionContext()
        left, right = _tables()
        hash_join(left, right, "k", "k", ctx)
        t = ctx.traces[-1]
        assert t.op == "hash_join"
        assert t.events.rmw_ops > 0      # FAA partitioning + CAS build

    @given(st.lists(st.integers(0, 10), max_size=80),
           st.lists(st.integers(0, 10), max_size=80))
    @settings(max_examples=20, deadline=None)
    def test_property_join_equivalence(self, lk, rk):
        left = Table.from_columns("l", k=lk)
        right = Table.from_columns("r", k=rk)
        hj = sorted(hash_join(left, right, "k", "k").rows)
        smj = sorted(sort_merge_join(left, right, "k", "k").rows)
        brute = sorted((a, b) for a in lk for b in rk if a == b)
        assert hj == smj == brute


class TestAggregation:
    def _t(self, seed=32, n=200):
        rng = random.Random(seed)
        return Table.from_columns(
            "t", g=[rng.randrange(7) for __ in range(n)],
            x=[rng.uniform(0, 10) for __ in range(n)])

    def test_hash_equals_sort_group_by(self):
        t = self._t()
        aggs = {"n": ("count", None), "s": ("sum", "x"),
                "mn": ("min", "x"), "mx": ("max", "x"),
                "avg": ("avg", "x")}
        h = sorted(hash_group_by(t, ["g"], aggs).rows)
        s = sorted(sort_group_by(t, ["g"], aggs).rows)
        assert len(h) == len(s)
        for hr, sr in zip(h, s):
            assert hr[0] == sr[0]
            for a, b in zip(hr[1:], sr[1:]):
                assert a == pytest.approx(b)

    def test_counts_match_reference(self):
        t = self._t()
        out = hash_group_by(t, ["g"], {"n": ("count", None)})
        from collections import Counter
        ref = Counter(t.column("g"))
        assert {r[0]: r[1] for r in out.rows} == dict(ref)

    def test_avg_correct(self):
        t = Table.from_columns("t", g=[1, 1, 2], x=[2.0, 4.0, 10.0])
        out = hash_group_by(t, ["g"], {"m": ("avg", "x")})
        got = {r[0]: r[1] for r in out.rows}
        assert got == {1: 3.0, 2: 10.0}

    def test_unknown_op_rejected(self):
        t = self._t()
        with pytest.raises(PlanError):
            hash_group_by(t, ["g"], {"bad": ("median", "x")})

    def test_multi_key_grouping(self):
        t = Table.from_columns("t", a=[1, 1, 2], b=[1, 1, 1], x=[1, 2, 3])
        out = hash_group_by(t, ["a", "b"], {"n": ("count", None)})
        assert sorted(out.rows) == [(1, 1, 2), (2, 1, 1)]

    def test_interval_group_by(self):
        t = Table.from_columns("t", time=[0, 5, 10, 15, 20])
        out = interval_group_by(t, "time", 10, {"n": ("count", None)})
        got = {r[0]: r[1] for r in out.rows}
        assert got == {0: 2, 1: 2, 2: 1}

    def test_interval_validation(self):
        t = Table.from_columns("t", time=[1])
        with pytest.raises(PlanError):
            interval_group_by(t, "time", 0, {"n": ("count", None)})

    def test_empty_input(self):
        t = Table.from_columns("t", g=[], x=[])
        assert len(hash_group_by(t, ["g"], {"n": ("count", None)})) == 0


class TestWindow:
    def test_sliding_average(self):
        t = Table.from_columns("t", d=[0] * 5, time=list(range(5)),
                               v=[1.0, 2.0, 3.0, 4.0, 5.0])
        out = window_aggregate(t, "d", "time", {"m": ("avg", "v")},
                               preceding=1)
        ms = out.column("m")
        assert ms == [1.0, 1.5, 2.5, 3.5, 4.5]

    def test_partitions_isolated(self):
        t = Table.from_columns("t", d=[0, 1, 0, 1], time=[0, 0, 1, 1],
                               v=[1.0, 100.0, 3.0, 300.0])
        out = window_aggregate(t, "d", "time", {"m": ("max", "v")},
                               preceding=5)
        got = {(r[0], r[1]): r[3] for r in out.rows}
        assert got[(0, 1)] == 3.0
        assert got[(1, 1)] == 300.0

    def test_count_window(self):
        t = Table.from_columns("t", d=[0] * 4, time=list(range(4)),
                               v=[1.0] * 4)
        out = window_aggregate(t, "d", "time", {"n": ("count", "v")},
                               preceding=2)
        assert out.column("n") == [1, 2, 3, 3]

    def test_negative_frame_rejected(self):
        t = Table.from_columns("t", d=[0], time=[0], v=[0.0])
        with pytest.raises(PlanError):
            window_aggregate(t, "d", "time", {"m": ("avg", "v")},
                             preceding=-1)

    def test_row_count_preserved(self):
        rng = random.Random(33)
        t = Table.from_columns(
            "t", d=[rng.randrange(5) for __ in range(100)],
            time=[rng.randrange(50) for __ in range(100)],
            v=[rng.random() for __ in range(100)])
        out = window_aggregate(t, "d", "time", {"m": ("avg", "v")},
                               preceding=3)
        assert len(out) == 100


class TestSpatialOps:
    def _pts(self, name, n, seed):
        rng = random.Random(seed)
        return Table.from_columns(
            name, pid=list(range(n)),
            x=[rng.randrange(1000) for __ in range(n)],
            y=[rng.randrange(1000) for __ in range(n)])

    def test_distance_join_matches_brute_force(self):
        a = self._pts("a", 60, 34)
        b = self._pts("b", 60, 35)
        out = distance_join(a, b, ("x", "y"), ("x", "y"), 80)
        expect = sum(1 for p in a.rows for q in b.rows
                     if math.hypot(p[1] - q[1], p[2] - q[2]) <= 80)
        assert len(out) == expect

    def test_containment_join_matches_brute_force(self):
        regions = Table.from_columns(
            "reg", locationId=[0, 1],
            x0=[0, 500], y0=[0, 0], x1=[499, 999], y1=[999, 999])
        pts = self._pts("p", 100, 36)
        out = containment_join(regions, ("x0", "y0", "x1", "y1"),
                               pts, ("x", "y"))
        expect = sum(1 for p in pts.rows for g in regions.rows
                     if g[1] <= p[1] <= g[3] and g[2] <= p[2] <= g[4])
        assert len(out) == expect

    def test_window_select(self):
        pts = self._pts("p", 80, 37)
        out = window_select(pts, "x", "y", (100, 100, 400, 400))
        expect = [r for r in pts.rows
                  if 100 <= r[1] <= 400 and 100 <= r[2] <= 400]
        assert sorted(out.rows) == sorted(expect)

    def test_spatial_meta_recorded_for_baselines(self):
        ctx = ExecutionContext()
        a = self._pts("a", 20, 38)
        b = self._pts("b", 30, 39)
        distance_join(a, b, ("x", "y"), ("x", "y"), 50, ctx)
        assert ctx.traces[-1].meta == {"left": 20, "right": 30}


class TestIndexScan:
    def test_range_scan_matches_filter(self):
        rng = random.Random(40)
        t = Table.from_columns(
            "t", time=[rng.randrange(10_000) for __ in range(1500)],
            v=list(range(1500)))
        idx = TimeSeriesIndex(t, "time", batch_size=128)
        out = index_range_scan(idx, 3000, 4000)
        expect = sorted(r for r in t.rows if 3000 <= r[0] <= 4000)
        assert sorted(out.rows) == expect

    def test_append_visible_to_scan(self):
        t = Table.from_columns("t", time=[1, 2], v=[10, 20])
        idx = TimeSeriesIndex(t, "time", batch_size=4)
        idx.append((3, 30))
        out = index_range_scan(idx, 3, 3)
        assert out.rows == [(3, 30)]

    def test_events_isolated_per_scan(self):
        t = Table.from_columns("t", time=list(range(500)),
                               v=list(range(500)))
        idx = TimeSeriesIndex(t, "time", batch_size=64)
        ctx = ExecutionContext()
        index_range_scan(idx, 0, 10, ctx)
        narrow = ctx.traces[-1].events.dram_read_bytes
        index_range_scan(idx, 0, 499, ctx)
        wide = ctx.traces[-1].events.dram_read_bytes
        assert 0 < narrow < wide


class TestCountDistinct:
    def test_count_distinct(self):
        t = Table.from_columns("t", g=[1, 1, 1, 2], x=[5, 5, 7, 9])
        out = hash_group_by(t, ["g"], {"d": ("count_distinct", "x")})
        assert sorted(out.rows) == [(1, 2), (2, 1)]

    def test_count_distinct_matches_sort_variant(self):
        rng = random.Random(150)
        t = Table.from_columns(
            "t", g=[rng.randrange(4) for __ in range(200)],
            x=[rng.randrange(12) for __ in range(200)])
        h = hash_group_by(t, ["g"], {"d": ("count_distinct", "x")})
        s = sort_group_by(t, ["g"], {"d": ("count_distinct", "x")})
        assert sorted(h.rows) == sorted(s.rows)
